"""E5 (extension) — weighted-random patterns vs test point insertion.

Expected shape: weighted random rescues excitation-limited circuits (wide
AND/OR cones) but cannot manufacture input correlations (equality
comparator) — where TPI still reaches full coverage.
"""

from repro.analysis import run_e5_weighted_random

E5_NAMES = ["wand16", "wor16", "eqcmp12", "rprmix"]


def bench_e5_weighted_random(benchmark, record_result):
    result = benchmark.pedantic(
        run_e5_weighted_random,
        kwargs={"names": E5_NAMES, "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = {row[0]: row for row in result.rows}
    # Excitation-limited: weighting wins big.
    assert rows["wand16"][2] > rows["wand16"][1] + 0.3
    # Correlation-limited: weighting is stuck, TPI is not.
    assert rows["eqcmp12"][2] < rows["eqcmp12"][4] - 0.1
    # TPI reaches (near-)complete coverage everywhere.
    assert all(row[4] > 0.97 for row in result.rows)
