"""E2 (extension) — DP planning margin ablation.

Expected shape: tiny margins risk continuous-model rejection of the
quantized plan; margins ≥ ~1.5 are continuously valid at modest extra
cost, locating the recommended default.
"""

from repro.analysis import run_e2_margin_ablation

MARGINS = (1.0, 1.25, 1.5, 2.0, 3.0)


def bench_e2_margin_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        run_e2_margin_ablation,
        kwargs={"margins": MARGINS, "tree_gates": 60, "seed": 9},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Generous margins must be continuously feasible.
    by_margin = {row[0]: row for row in result.rows}
    assert by_margin[2.0][3] and by_margin[3.0][3]
    # Cost is monotone (weakly) in the margin: stricter planning targets
    # can only cost more.
    costs = [row[1] for row in result.rows]
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))
