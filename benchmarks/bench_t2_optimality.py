"""T2 — DP optimality against exhaustive search (the core claim).

Both solvers score feasibility in the identical quantized probability
algebra; the table must show "match = yes" on every row.  The timed kernel
is the DP half of the comparison (the exhaustive half is the slow oracle).
"""

from repro.analysis import run_t2_dp_optimality


def bench_t2_dp_optimality(benchmark, record_result):
    result = benchmark.pedantic(
        run_t2_dp_optimality,
        kwargs={"n_trees": 8, "tree_gates": 6, "thresholds": (0.02, 0.05, 0.10)},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert all(row[-1] for row in result.rows), "DP returned a suboptimal cost"
