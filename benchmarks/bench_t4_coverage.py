"""T4 — measured stuck-at coverage before/after insertion (headline table).

For each random-pattern-resistant benchmark, the DP heuristic and the
greedy baseline each plan a placement; both are physically inserted and
fault simulated at 4096 patterns.  Expected shape: baseline coverage well
below target, both methods reaching ≈99-100% with a handful of points.
"""

from repro.analysis import run_t4_coverage_improvement

T4_NAMES = ["eqcmp12", "wand16", "wor16", "corridor12", "rprmix", "rprmix_big"]


def bench_t4_coverage_improvement(benchmark, record_result):
    result, reports = benchmark.pedantic(
        run_t4_coverage_improvement,
        kwargs={"names": T4_NAMES, "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for name, report in reports.items():
        assert report.modified_coverage >= report.baseline_coverage - 1e-9, name
        assert report.modified_coverage > 0.97, name
