"""E1 (extension) — MISR signature aliasing rate vs register width.

Expected shape: the measured aliasing rate tracks the theoretical ``2^-k``
and becomes negligible by 12–16 bits, validating the compaction substrate
used by the BIST architecture model.
"""

from repro.analysis import run_e1_misr_aliasing

WIDTHS = (2, 3, 4, 6, 8, 12, 16)


def bench_e1_misr_aliasing(benchmark, record_result):
    result = benchmark.pedantic(
        run_e1_misr_aliasing,
        kwargs={"widths": WIDTHS, "n_patterns": 128},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rates = [row[4] for row in result.rows]
    # Wide registers must alias (much) less than 2-bit ones.
    assert rates[-1] <= rates[0]
    assert rates[-1] < 0.01
