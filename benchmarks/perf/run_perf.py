"""Microbenchmarks for the two hot paths, emitting ``BENCH_PERF.json``.

Two families, mirroring the performance layer:

* **Incremental placement evaluation** — ``solve_greedy`` with the
  dirty-cone :class:`~repro.core.incremental.IncrementalEvaluator` versus
  the from-scratch ``evaluate_placement`` loop, on the T3 fanout-free
  tree workload and on the ``rprmix_big`` benchmark circuit.  Both modes
  must return identical solutions — the speedup is pure bookkeeping.
* **Fault simulation** — serial exact simulation versus coverage-only
  fault dropping versus the process-parallel fan-out (``--jobs``), on a
  post-TPI rprmix_big-class circuit where every fault is detectable (the
  regime sweeps live in).  All three report identical coverage and
  first-detect indices.
* **Compiled kernels** — per-circuit codegen (``kernel="compiled"``)
  versus the interpreted gate walk (``kernel="interp"``), for the
  good-machine logic simulation and for end-to-end fault-dropping
  coverage on the rprmix_big workload.  Both modes are asserted
  bit-identical; the compiled timings are steady-state (kernels warmed
  before measuring, the regime every sweep runs in after its first
  simulation).
* **Word-parallel numpy backend** — the batched full-circuit fault sweep
  (``kernel="numpy"``) versus compiled cones and the interpreter on a
  gray-code decoder, the adversarial workload for event-driven scalar
  simulation (XOR chains never skip); plus the shadow-guard overhead on
  that backend at its production sampling fraction.  Two solver-loop
  companions gate the batch where the solver actually spends time: a
  wide-budget dropping coverage run (the word-tiled batch against
  compiled cones) and a greedy solve driven by the vectorized
  incremental delta engine against the interpreted dirty-cone walk.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        [--quick] [--jobs N] [--out FILE] [--history FILE] \
        [--min-t3-speedup X] [--min-greedy-speedup X] [--min-sim-speedup X] \
        [--min-kernel-sim-speedup X] [--min-kernel-cov-speedup X] \
        [--min-numpy-sim-speedup X] [--min-numpy-wide-speedup X] \
        [--min-numpy-incremental-speedup X] [--max-guard-overhead-pct X]

``--history`` additionally appends one schema-versioned record per
benchmark to the JSONL history consumed by ``repro-tpi bench-compare``
(see :mod:`repro.obs.history`).

``--quick`` shrinks the workloads to CI-smoke size (tens of seconds).
Each ``--min-*-speedup`` guard makes the run exit 1 when the measured
speedup falls below ``X`` — the CI perf-smoke job guards the T3
incremental speedup at 2x.  Results land in ``BENCH_PERF.json`` next to
this file unless ``--out`` says otherwise, including the ``gate_evals``
and ``fault_sim.dropped`` observability counters recorded during the
fault-simulation benchmarks.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro import obs  # noqa: E402
from repro.obs import history as perf_history  # noqa: E402
from repro.circuit.generators import (  # noqa: E402
    gray_to_binary,
    random_dag,
    random_tree,
    rpr_mixed,
)
from repro.circuit.library import benchmark  # noqa: E402
from repro.core import (  # noqa: E402
    TPIProblem,
    apply_test_points,
    prepare_for_tpi,
    solve_greedy,
)
from repro.ioutil import atomic_write_text  # noqa: E402
from repro.sim import (  # noqa: E402
    FaultSimulator,
    LogicSimulator,
    run_parallel,
    testable_stuck_at_faults,
)
from repro.sim.patterns import UniformRandomSource  # noqa: E402
from repro.verify import GuardedSession  # noqa: E402

T3_TREE_SPECS = [(20, 0), (20, 1), (40, 2), (40, 3), (60, 4), (80, 5)]

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_PERF.json"


def _best_of(repeats: int, fn: Callable[[], object]) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _solution_key(solution) -> Tuple:
    return (
        tuple(sorted((p.node, p.kind.value, p.branch) for p in solution.points)),
        solution.cost,
        solution.feasible,
    )


# ---------------------------------------------------------------------------
# Incremental placement evaluation
# ---------------------------------------------------------------------------


def _t3_planning_problems() -> List[TPIProblem]:
    problems = []
    for gates, seed in T3_TREE_SPECS:
        circuit = random_tree(gates, seed=seed)
        base = TPIProblem.from_test_length(
            circuit, n_patterns=4096, escape_budget=0.001
        )
        problems.append(
            TPIProblem(
                circuit=circuit,
                threshold=min(base.threshold * 2.0, 1.0),
                costs=base.costs,
                allowed_types=base.allowed_types,
                input_probabilities=base.input_probabilities,
            )
        )
    return problems


def bench_incremental_t3(repeats: int) -> Dict[str, object]:
    """Greedy over the T3 tree workload, incremental vs from-scratch.

    Both sides are pinned to the interpreted COP kernel so the measured
    ratio isolates the incremental *algorithm* (dirty-cone deltas vs full
    passes); the compiled-codegen win is gated separately by the kernel
    benches below.
    """
    problems = _t3_planning_problems()

    def run(use_incremental: bool) -> List[Tuple]:
        return [
            _solution_key(
                solve_greedy(
                    p, use_incremental=use_incremental, kernel="interp"
                )
            )
            for p in problems
        ]

    t_scratch, ref = _best_of(repeats, lambda: run(False))
    t_inc, got = _best_of(repeats, lambda: run(True))
    assert got == ref, "incremental greedy diverged from from-scratch on T3"
    return {
        "workload": f"T3 trees {T3_TREE_SPECS}, greedy candidate loop",
        "seconds_from_scratch": round(t_scratch, 4),
        "seconds_incremental": round(t_inc, 4),
        "speedup": round(t_scratch / t_inc, 2),
        "solves_per_sec_incremental": round(len(problems) / t_inc, 2),
        "identical_solutions": True,
    }


def bench_incremental_greedy(repeats: int, quick: bool) -> Dict[str, object]:
    """Greedy on a single resistant benchmark circuit."""
    name = "rprmix" if quick else "rprmix_big"
    circuit = prepare_for_tpi(benchmark(name))
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=4096, escape_budget=0.001
    )

    t_scratch, ref = _best_of(
        repeats, lambda: _solution_key(solve_greedy(problem, use_incremental=False))
    )
    t_inc, got = _best_of(
        repeats, lambda: _solution_key(solve_greedy(problem, use_incremental=True))
    )
    assert got == ref, f"incremental greedy diverged from from-scratch on {name}"
    return {
        "workload": f"{name}, greedy candidate loop",
        "seconds_from_scratch": round(t_scratch, 4),
        "seconds_incremental": round(t_inc, 4),
        "speedup": round(t_scratch / t_inc, 2),
        "identical_solutions": True,
    }


# ---------------------------------------------------------------------------
# Fault simulation: dropping + process parallelism
# ---------------------------------------------------------------------------


def _post_tpi_workload(quick: bool) -> Tuple[object, Dict[str, int], int]:
    """A post-TPI rprmix_big-class circuit with (near-)full coverage.

    Points are planned at the simulation test length, so the inserted
    netlist is exactly the artifact a sweep would fault-simulate.
    """
    if quick:
        base = prepare_for_tpi(benchmark("rprmix_big"))
        n_patterns = 65536
    else:
        base = prepare_for_tpi(
            rpr_mixed(cone_width=12, corridor_length=8, n_blocks=24)
        )
        n_patterns = 1 << 20
    problem = TPIProblem.from_test_length(
        base, n_patterns=n_patterns, escape_budget=0.001
    )
    solution = solve_greedy(problem, max_iterations=1000)
    circuit = apply_test_points(base, solution.points).circuit
    stimulus = UniformRandomSource(seed=7).generate(circuit.inputs, n_patterns)
    return circuit, stimulus, n_patterns


def bench_fault_sim(jobs: int, quick: bool) -> Dict[str, object]:
    circuit, stimulus, n_patterns = _post_tpi_workload(quick)
    sim = FaultSimulator(circuit)
    faults = sim._resolve_faults(None, True)

    t_exact, exact = _best_of(
        1, lambda: sim.run(stimulus, n_patterns, faults=faults)
    )
    coverage = exact.coverage()
    first_detect = dict(exact.first_detect)
    exact_evals = sim.gate_evals
    del exact, sim  # keep the parent heap lean before the pool forks

    drop_sim = FaultSimulator(circuit)
    t_drop, dropped = _best_of(
        1, lambda: drop_sim.run_coverage(stimulus, n_patterns, faults=faults)
    )
    assert dropped.coverage() == coverage
    assert dropped.first_detect == first_detect
    drop_evals = drop_sim.gate_evals
    del dropped, drop_sim

    t_par, par = _best_of(
        1,
        lambda: run_parallel(
            circuit,
            stimulus,
            n_patterns,
            faults=faults,
            jobs=jobs,
            mode="coverage",
        ),
    )
    assert par.coverage() == coverage
    assert par.first_detect == first_detect

    pairs = len(faults) * n_patterns
    return {
        "workload": (
            f"{circuit.name} post-TPI, {len(faults)} faults, "
            f"{n_patterns} patterns"
        ),
        "coverage": round(coverage, 4),
        "seconds_serial_exact": round(t_exact, 4),
        "seconds_serial_drop": round(t_drop, 4),
        f"seconds_jobs{jobs}_drop": round(t_par, 4),
        "speedup_drop": round(t_exact / t_drop, 2),
        f"speedup_jobs{jobs}_drop": round(t_exact / t_par, 2),
        "fault_pattern_pairs_per_sec_exact": round(pairs / t_exact),
        f"fault_pattern_pairs_per_sec_jobs{jobs}": round(pairs / t_par),
        "gate_evals_exact": exact_evals,
        "gate_evals_drop": drop_evals,
        "identical_coverage_and_first_detect": True,
    }


# ---------------------------------------------------------------------------
# Compiled kernels vs the interpreted gate walk
# ---------------------------------------------------------------------------

#: Pattern width for the good-machine kernel bench: wide enough that the
#: bignum ops are real work but narrow enough that per-gate Python
#: overhead — what the kernels remove — is still the dominant cost (at
#: 1M-bit words both modes converge on the C bignum kernel and the ratio
#: tends to 1; at 4096 the measured gap is already down to ~3x).
KERNEL_SIM_PATTERNS = 1024


def bench_kernel_logic_sim(repeats: int) -> Dict[str, object]:
    """Good-machine simulation, compiled kernel vs interpreted walk."""
    circuit = prepare_for_tpi(benchmark("rprmix_big"))
    n = KERNEL_SIM_PATTERNS
    stimulus = UniformRandomSource(seed=7).generate(circuit.inputs, n)
    interp = LogicSimulator(circuit, kernel="interp")
    compiled = LogicSimulator(circuit, kernel="compiled")
    assert compiled.run(stimulus, n) == interp.run(stimulus, n), (
        "compiled good-machine values diverged from interpreted"
    )  # also warms the kernel cache: timings below are steady-state

    # A single sim is ~100 microseconds — below the timer's reliable
    # resolution — so each sample times a batch and divides.
    batch = 20

    def _run_batch(sim: LogicSimulator) -> None:
        for _ in range(batch):
            sim.run(stimulus, n)

    reps = max(repeats, 7)
    t_interp, _ = _best_of(reps, lambda: _run_batch(interp))
    t_compiled, _ = _best_of(reps, lambda: _run_batch(compiled))
    t_interp /= batch
    t_compiled /= batch
    return {
        "workload": f"{circuit.name}, good-machine sim, {n} patterns",
        "seconds_interp": round(t_interp, 6),
        "seconds_compiled": round(t_compiled, 6),
        "speedup": round(t_interp / t_compiled, 2),
        "sims_per_sec_compiled": round(1.0 / t_compiled, 1),
        "bit_identical": True,
    }


def bench_kernel_fault_sim(repeats: int) -> Dict[str, object]:
    """End-to-end ``run_coverage``, compiled kernels vs interpreted.

    The post-TPI rprmix_big workload at a 64K budget: the sweep regime
    (fault dropping, geometric blocks), sized so the per-gate dispatch
    the kernels eliminate is a visible share of the wall clock.
    """
    circuit, stimulus, n_patterns = _post_tpi_workload(quick=True)
    faults = FaultSimulator(circuit)._resolve_faults(None, True)

    def run(kernel: str):
        sim = FaultSimulator(circuit, kernel=kernel)
        return sim.run_coverage(stimulus, n_patterns, faults=faults)

    reference = run("compiled")  # warm the kernel cache
    reps = max(repeats, 3)
    t_interp, got_i = _best_of(reps, lambda: run("interp"))
    t_compiled, got_c = _best_of(reps, lambda: run("compiled"))
    for got in (got_i, got_c):
        assert got.detection_word == reference.detection_word
        assert got.first_detect == reference.first_detect
    return {
        "workload": (
            f"{circuit.name} post-TPI, {len(faults)} faults, "
            f"{n_patterns} patterns, run_coverage"
        ),
        "coverage": round(reference.coverage(), 4),
        "seconds_interp": round(t_interp, 4),
        "seconds_compiled": round(t_compiled, 4),
        "speedup": round(t_interp / t_compiled, 2),
        "bit_identical": True,
    }


# ---------------------------------------------------------------------------
# Word-parallel numpy backend vs both scalar backends
# ---------------------------------------------------------------------------

#: Pattern width for the numpy fault-sim bench: one machine word.  The
#: batched sweep's edge is dispatch amortization, which is largest at
#: narrow widths; at wide words every backend converges onto raw bit
#: work, where the bignum and ndarray kernels are within ~2.5x of each
#: other (DESIGN.md §14 has the regime analysis).
NUMPY_SIM_PATTERNS = 64


def _numpy_sim_workload(quick: bool):
    """Gray-to-binary decode chains: adversarial for both scalar backends.

    Every output bit is a cumulative XOR of the gray inputs, so (a) the
    interpreter's event-driven walk can never skip — an XOR re-evaluates
    on every fan-in toggle — and (b) mean fanout-cone size is about half
    the circuit, so the batched full-circuit sweep only inflates per-fault
    work ~2x while collapsing thousands of per-gate Python steps into a
    few hundred grouped ufunc calls.
    """
    size = 256 if quick else 512
    circuit = gray_to_binary(size)
    stimulus = UniformRandomSource(seed=7).generate(
        circuit.inputs, NUMPY_SIM_PATTERNS
    )
    faults = FaultSimulator(circuit)._resolve_faults(None, True)
    return circuit, stimulus, NUMPY_SIM_PATTERNS, faults


def bench_numpy_fault_sim(repeats: int, quick: bool) -> Dict[str, object]:
    """Exact fault sim: batched numpy sweep vs compiled cones vs interp."""
    circuit, stimulus, n_patterns, faults = _numpy_sim_workload(quick)

    def run(kernel: str):
        sim = FaultSimulator(circuit, kernel=kernel)
        return sim.run(stimulus, n_patterns, faults=faults)

    reference = run("interp")
    run("compiled")  # warm the kernel cache
    run("numpy")  # warm the plan registry
    reps = max(repeats, 3)
    t_numpy, got_n = _best_of(reps, lambda: run("numpy"))
    t_compiled, got_c = _best_of(reps, lambda: run("compiled"))
    t_interp, got_i = _best_of(reps, lambda: run("interp"))
    for got in (got_n, got_c, got_i):
        assert got.detection_word == reference.detection_word
        assert got.first_detect == reference.first_detect
    return {
        "workload": (
            f"{circuit.name}, {len(faults)} faults, "
            f"{n_patterns} patterns, exact run"
        ),
        "kernel": "numpy",
        "coverage": round(reference.coverage(), 4),
        "seconds_interp": round(t_interp, 4),
        "seconds_compiled": round(t_compiled, 4),
        "seconds_numpy": round(t_numpy, 4),
        "speedup": round(t_interp / t_numpy, 2),
        "speedup_vs_compiled": round(t_compiled / t_numpy, 2),
        "bit_identical": True,
    }


#: Pattern budget for the wide-coverage bench: far past the 16-word cap
#: earlier revisions hard-coded on the batched sweep.  With dropping the
#: bulk of the fault list dies in the narrow leading blocks — the regime
#: where the batch's dispatch amortization is largest — while the
#: geometric tail stays eligible at any width because the sweep tiles the
#: word axis instead of refusing (``BatchPolicy.max_words = None``).
NUMPY_WIDE_PATTERNS = 65536
NUMPY_WIDE_PATTERNS_QUICK = 16384


def bench_numpy_wide_coverage(repeats: int, quick: bool) -> Dict[str, object]:
    """Wide-budget ``run_coverage`` with dropping: numpy batch vs compiled.

    The gray-decoder workload at a pattern budget hundreds of words wide.
    Every dropping block goes through the batched sweep — the word-tiled
    layout keeps per-chunk capacity useful at any block width, so the
    eligibility policy no longer caps the pattern axis.  Both kernels are
    asserted identical down to first-detect indices against the interp
    arbiter's run.
    """
    circuit = gray_to_binary(512)
    n_patterns = NUMPY_WIDE_PATTERNS_QUICK if quick else NUMPY_WIDE_PATTERNS
    stimulus = UniformRandomSource(seed=7).generate(circuit.inputs, n_patterns)
    faults = FaultSimulator(circuit)._resolve_faults(None, True)

    def run(kernel: str):
        sim = FaultSimulator(circuit, kernel=kernel)
        return sim.run_coverage(stimulus, n_patterns, faults=faults)

    reference = run("interp")
    run("compiled")  # warm the kernel cache
    run("numpy")  # warm the plan registry
    reps = max(repeats, 3)
    t_numpy, got_n = _best_of(reps, lambda: run("numpy"))
    t_compiled, got_c = _best_of(reps, lambda: run("compiled"))
    for got in (got_n, got_c):
        assert got.first_detect == reference.first_detect
        assert list(got.detection_word) == list(reference.detection_word)
    return {
        "workload": (
            f"{circuit.name}, {len(faults)} faults, {n_patterns} patterns "
            f"({n_patterns // 64} words), run_coverage"
        ),
        "kernel": "numpy",
        "coverage": round(reference.coverage(), 4),
        "seconds_compiled": round(t_compiled, 4),
        "seconds_numpy": round(t_numpy, 4),
        "speedup": round(t_compiled / t_numpy, 2),
        "identical_coverage_and_first_detect": True,
    }


def _numpy_incremental_workload(quick: bool):
    """A wide-level DAG where the vectorized delta engine is live.

    ``random_dag`` at this fan-in span levelizes to ~150 rows per level —
    far past :data:`repro.sim.npsim.DELTA_MIN_MEAN_WIDTH` — so the numpy
    solve runs :class:`~repro.sim.npsim.PlacementDelta` with no override.
    The fault stride keeps the greedy candidate loop (the measured
    region) dominant over the one-off problem setup.
    """
    circuit = random_dag(128, 4000, seed=7, fanin_span=400)
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=1024, escape_budget=0.001
    )
    stride = 48 if quick else 32
    max_iterations = 4 if quick else 12
    faults = testable_stuck_at_faults(circuit)[::stride]
    return circuit, problem, faults, max_iterations


def bench_numpy_incremental(repeats: int, quick: bool) -> Dict[str, object]:
    """Greedy solve, numpy incremental deltas vs interp incremental.

    Both sides run the same :class:`IncrementalEvaluator` bookkeeping;
    the measured gap is purely the delta re-propagation engine — the
    level-granular vectorized recompute against the interpreted
    dirty-cone walk — so this gates tentpole piece (2) end to end on the
    solver loop it was built for.  Solutions must match exactly.
    """
    _circuit, problem, faults, max_iterations = _numpy_incremental_workload(
        quick
    )

    def run(kernel: str):
        return solve_greedy(
            problem,
            faults=faults,
            kernel=kernel,
            max_iterations=max_iterations,
        )

    # One timed pass per side: a greedy solve is seconds of work (the
    # speedup has seconds of margin over the gate), and like the fault
    # sim benches the solve itself is internally repetition-heavy.
    del repeats
    t_interp, got_i = _best_of(1, lambda: run("interp"))
    t_numpy, got_n = _best_of(1, lambda: run("numpy"))
    assert _solution_key(got_n) == _solution_key(got_i), (
        "numpy incremental greedy diverged from interp"
    )
    return {
        "workload": (
            f"{_circuit.name}, greedy, {len(faults)} faults, "
            f"{max_iterations} iterations, 1024 patterns"
        ),
        "kernel": "numpy",
        "seconds_interp": round(t_interp, 4),
        "seconds_numpy": round(t_numpy, 4),
        "speedup": round(t_interp / t_numpy, 2),
        "points_placed": len(got_n.points),
        "identical_solutions": True,
    }


# ---------------------------------------------------------------------------
# Shadow-verification overhead
# ---------------------------------------------------------------------------


def _paired_ratio(
    repeats: int,
    batch: int,
    run_plain: Callable[[], object],
    run_guarded: Callable[[], object],
) -> Tuple[float, float, object, object]:
    """Median guarded/plain wall ratio over alternating paired batches.

    The two variants are compared *within* each rep — a guarded batch
    timed back-to-back against a plain batch, alternating which goes
    first — and the overhead is the median of the per-rep ratios.
    A shared container's clock drifts on the seconds scale, so mins
    taken from different moments would compare different machines;
    a time-local ratio cancels the drift and the median sheds the
    occasional descheduled rep.  GC is paused in the timed region (as
    ``timeit`` does): after the heavier benches this process holds a
    large heap, and a gen-2 pass landing inside one variant's batch
    would swamp the percentage being measured.

    Returns ``(best plain seconds per run, median ratio, last plain
    result, last guarded result)``.
    """

    def _batch(fn: Callable[[], object]) -> object:
        last = None
        for _ in range(batch):
            last = fn()
        return last

    reps = max(repeats, 7)
    ratios: List[float] = []
    best_plain = float("inf")
    got_p = got_g = None
    gc.collect()
    gc.disable()
    try:
        for rep in range(reps):
            plain_first = rep % 2 == 0
            first, second = (
                (run_plain, run_guarded) if plain_first
                else (run_guarded, run_plain)
            )
            start = time.perf_counter()
            got_first = _batch(first)
            mid = time.perf_counter()
            got_second = _batch(second)
            end = time.perf_counter()
            if plain_first:
                got_p, got_g = got_first, got_second
                t_p, t_g = mid - start, end - mid
            else:
                got_g, got_p = got_first, got_second
                t_g, t_p = mid - start, end - mid
            ratios.append(t_g / t_p)
            best_plain = min(best_plain, t_p)
    finally:
        gc.enable()
    return best_plain / batch, statistics.median(ratios), got_p, got_g


def bench_guard_overhead(repeats: int) -> Dict[str, object]:
    """Fault-dropping coverage with and without the shadow guard.

    The guard (:class:`repro.verify.GuardedSession`) re-executes its
    sampled fraction of compiled-kernel propagations through the
    interpreted arbiter; at the default 1% sampling the wall-clock
    overhead must stay within the 10% budget DESIGN.md §11 commits to.

    Measured on the exact full run (no fault dropping): that is the
    fault-sim workload whose wall clock a sweep actually pays, and the
    dropped run finishes in milliseconds — too small a denominator for
    a stable percentage.
    """
    circuit, stimulus, n_patterns = _post_tpi_workload(quick=True)
    faults = FaultSimulator(circuit)._resolve_faults(None, True)

    def run_plain():
        sim = FaultSimulator(circuit, kernel="compiled")
        return sim.run(stimulus, n_patterns, faults=faults)

    checks = 0

    def run_guarded():
        nonlocal checks
        sim = FaultSimulator(circuit, kernel="compiled")
        with GuardedSession(fraction=0.01, seed=0) as guard:
            result = sim.run(stimulus, n_patterns, faults=faults)
        checks = guard.checks
        return result

    reference = run_plain()  # warm the kernel cache
    # One run is a few milliseconds — too small for a stable percentage —
    # so each sample times a batch and divides.
    t_plain, ratio, got_p, got_g = _paired_ratio(
        repeats, 30, run_plain, run_guarded
    )
    for got in (got_p, got_g):
        assert got.detection_word == reference.detection_word
        assert got.first_detect == reference.first_detect
    t_guarded = t_plain * ratio
    overhead_pct = (ratio - 1.0) * 100.0
    return {
        "workload": (
            f"{circuit.name} post-TPI, {len(faults)} faults, "
            f"{n_patterns} patterns, exact run, guard fraction 0.01"
        ),
        "seconds_unguarded": round(t_plain, 4),
        "seconds_guarded": round(t_guarded, 4),
        "overhead_pct": round(overhead_pct, 2),
        "shadow_checks": checks,
        "divergences": 0,
        "identical_results": True,
    }


#: Guard sampling fraction for the numpy backend's overhead bench.  A
#: shadow check costs one interpreted cone walk, so its relative price
#: scales with how much faster the guarded backend is: each check costs
#: roughly ``speedup``x the per-fault work it audits, so holding a 10%
#: budget needs ``fraction <= 0.1 / speedup``.  The batched sweep runs
#: ~20x over interp on its home workload — and gray-code cones span
#: about half the circuit, a few times the mean cone — so the numpy
#: production fraction drops an order of magnitude from compiled's 1%.
NUMPY_GUARD_FRACTION = 0.001


def bench_numpy_guard_overhead(repeats: int, quick: bool) -> Dict[str, object]:
    """Batched numpy fault sim with and without the shadow guard.

    Same paired-batch methodology as :func:`bench_guard_overhead`, on the
    numpy backend's home workload.  The sampled fraction is lower (see
    :data:`NUMPY_GUARD_FRACTION`): each shadow check replays an
    interpreted cone walk, which the batched sweep has made ~20x more
    expensive *relative to the run it guards*.

    Measured steady-state on one long-lived simulator, the shape of a
    real sweep: the arbiter's cone-order table is a one-time per-
    simulator build (the plain path never touches it), so charging it
    to every run would measure construction, not the guard.
    """
    circuit, stimulus, n_patterns, faults = _numpy_sim_workload(quick)
    sim = FaultSimulator(circuit, kernel="numpy")

    def run_plain():
        return sim.run(stimulus, n_patterns, faults=faults)

    checks = 0

    def run_guarded():
        nonlocal checks
        with GuardedSession(fraction=NUMPY_GUARD_FRACTION, seed=0) as guard:
            result = sim.run(stimulus, n_patterns, faults=faults)
        checks = guard.checks
        return result

    reference = run_plain()  # warm the plan registry
    run_guarded()  # warm the arbiter's cone-order table
    t_plain, ratio, got_p, got_g = _paired_ratio(
        repeats, 10, run_plain, run_guarded
    )
    for got in (got_p, got_g):
        assert got.detection_word == reference.detection_word
        assert got.first_detect == reference.first_detect
    t_guarded = t_plain * ratio
    overhead_pct = (ratio - 1.0) * 100.0
    return {
        "workload": (
            f"{circuit.name}, {len(faults)} faults, {n_patterns} patterns, "
            f"exact run, guard fraction {NUMPY_GUARD_FRACTION}"
        ),
        "kernel": "numpy",
        "seconds_unguarded": round(t_plain, 4),
        "seconds_guarded": round(t_guarded, 4),
        "overhead_pct": round(overhead_pct, 2),
        "shadow_checks": checks,
        "divergences": 0,
        "identical_results": True,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_all(
    quick: bool, jobs: int, repeats: int
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Run every benchmark; returns (results payload, obs counter values)."""
    recorder = obs.RunRecorder(None)
    previous = obs.set_recorder(recorder)
    try:
        benches = {
            "incremental_t3_trees": bench_incremental_t3(repeats),
            "incremental_greedy": bench_incremental_greedy(repeats, quick),
            "fault_sim_drop_parallel": bench_fault_sim(jobs, quick),
            "kernel_logic_sim": bench_kernel_logic_sim(repeats),
            "kernel_fault_sim": bench_kernel_fault_sim(repeats),
            "numpy_fault_sim": bench_numpy_fault_sim(repeats, quick),
            "numpy_wide_coverage": bench_numpy_wide_coverage(repeats, quick),
            "numpy_incremental": bench_numpy_incremental(repeats, quick),
            "guard_overhead": bench_guard_overhead(repeats),
            "numpy_guard_overhead": bench_numpy_guard_overhead(
                repeats, quick
            ),
        }
    finally:
        obs.set_recorder(previous)
        snapshot = recorder.metrics.snapshot()
        recorder.close()
    counters = {
        key: value
        for key, value in sorted(snapshot.get("counters", {}).items())
        if key in ("fault_sim.gate_evals", "fault_sim.dropped",
                   "fault_sim.runs", "fault_sim.parallel_runs",
                   "kernel.compiles", "kernel.cache_hits",
                   "kernel.source_gens")
    }
    return benches, counters


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke workload sizes")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel fault sim")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of) for the solver benches")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--min-t3-speedup", type=float, default=None,
                        help="fail unless T3 incremental speedup >= X")
    parser.add_argument("--min-greedy-speedup", type=float, default=None,
                        help="fail unless greedy incremental speedup >= X")
    parser.add_argument("--min-sim-speedup", type=float, default=None,
                        help="fail unless jobs+drop fault-sim speedup >= X")
    parser.add_argument("--min-kernel-sim-speedup", type=float, default=None,
                        help="fail unless compiled good-machine sim "
                        "speedup >= X")
    parser.add_argument("--min-kernel-cov-speedup", type=float, default=None,
                        help="fail unless compiled run_coverage speedup >= X")
    parser.add_argument("--min-numpy-sim-speedup", type=float, default=None,
                        help="fail unless batched numpy fault-sim speedup "
                        "over interp >= X")
    parser.add_argument("--min-numpy-wide-speedup", type=float, default=None,
                        help="fail unless the wide-budget numpy coverage "
                        "speedup over compiled >= X")
    parser.add_argument("--min-numpy-incremental-speedup", type=float,
                        default=None,
                        help="fail unless greedy with numpy incremental "
                        "deltas beats interp incremental by >= X")
    parser.add_argument("--max-guard-overhead-pct", type=float, default=None,
                        help="fail if the shadow-guard overhead exceeds X%%")
    parser.add_argument("--history", type=Path, default=None, metavar="FILE",
                        help="append this run to the JSONL benchmark history "
                        "(see repro.obs.history and repro-tpi bench-compare)")
    args = parser.parse_args(argv)

    benches, counters = run_all(args.quick, args.jobs, args.repeats)
    payload = {
        "schema": 1,
        "mode": "quick" if args.quick else "full",
        "jobs": args.jobs,
        "kernel": "compiled",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "benchmarks": benches,
        "obs_counters": counters,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwritten to {args.out}", file=sys.stderr)

    if args.history is not None:
        entries = perf_history.entries_from_bench_perf(
            payload, git_rev=obs.git_revision()
        )
        perf_history.append_history(args.history, entries)
        print(
            f"{len(entries)} history entries appended to {args.history}",
            file=sys.stderr,
        )

    failures = []
    guards = [
        ("t3 incremental", args.min_t3_speedup,
         benches["incremental_t3_trees"]["speedup"]),
        ("greedy incremental", args.min_greedy_speedup,
         benches["incremental_greedy"]["speedup"]),
        ("fault sim jobs+drop", args.min_sim_speedup,
         benches["fault_sim_drop_parallel"][f"speedup_jobs{args.jobs}_drop"]),
        ("kernel logic sim", args.min_kernel_sim_speedup,
         benches["kernel_logic_sim"]["speedup"]),
        ("kernel run_coverage", args.min_kernel_cov_speedup,
         benches["kernel_fault_sim"]["speedup"]),
        ("numpy fault sim", args.min_numpy_sim_speedup,
         benches["numpy_fault_sim"]["speedup"]),
        ("numpy wide coverage", args.min_numpy_wide_speedup,
         benches["numpy_wide_coverage"]["speedup"]),
        ("numpy incremental greedy", args.min_numpy_incremental_speedup,
         benches["numpy_incremental"]["speedup"]),
    ]
    for label, minimum, measured in guards:
        if minimum is not None and measured < minimum:
            failures.append(f"{label}: {measured}x < required {minimum}x")
    if args.max_guard_overhead_pct is not None:
        for bench in ("guard_overhead", "numpy_guard_overhead"):
            overhead = benches[bench]["overhead_pct"]
            if overhead > args.max_guard_overhead_pct:
                failures.append(
                    f"{bench}: {overhead}% > "
                    f"allowed {args.max_guard_overhead_pct}%"
                )
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
