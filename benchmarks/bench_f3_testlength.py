"""F3 — coverage vs test length, before and after insertion.

Reproduces the classic BIST curve-shift figure.  Expected shape: the
with-test-points series dominates the baseline everywhere past the first
few patterns and reaches its plateau orders of magnitude earlier.
"""

from repro.analysis import run_f3_testlength_curves


def bench_f3_testlength_curves(benchmark, record_result):
    result = benchmark.pedantic(
        run_f3_testlength_curves,
        kwargs={"name": "eqcmp12", "n_patterns": 8192},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    final = result.rows[-1]
    assert final[2] >= final[1]  # modified dominates at full length
    assert final[2] > 0.99
