"""F1 — measured coverage vs number of inserted test points.

Reproduces the "each point buys coverage" figure: prefixes of the DP
heuristic placement are inserted one point at a time.  Expected shape: a
rising series from the baseline to ≈100% at the full placement.
"""

from repro.analysis import run_f1_points_curve


def bench_f1_points_curve(benchmark, record_result):
    result = benchmark.pedantic(
        run_f1_points_curve,
        kwargs={"name": "rprmix", "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    coverages = [row[2] for row in result.rows]
    assert coverages[-1] > 0.97
    assert coverages[-1] > coverages[0]
