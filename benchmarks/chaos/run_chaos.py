#!/usr/bin/env python
"""Seeded fabric chaos campaign: injected mayhem, bit-identical results.

Runs the same sweep twice — once serially (ground truth), then
repeatedly on the fabric under a probabilistic mix of every injected
fault (worker crashes, stalled heartbeats, corrupt payloads, spurious
exceptions, ENOSPC on journal appends, duplicate completions) — until a
wall-clock budget runs out.  After every round it asserts the fabric's
acceptance bar:

* the outcome list is **bit-identical** to the serial sweep's, and
* every job is committed **exactly once** across the journal's whole
  history.

Any violation leaves the journal and quarantine artifacts in
``--out-dir`` and exits 1.  Rounds are deterministic in ``--seed`` (the
round index perturbs the chaos seed), so a failing campaign replays
exactly.

With ``--store`` every round shares one content-addressed result store
and the fault mix gains the four store faults (torn entry, bit flip,
stale schema, double publish) that strike the published entry *after*
its journal commit.  After the budget runs out a final chaos-free pass
re-runs the sweep against the battered store with a fresh journal and
asserts the caching bar: results still bit-identical to serial, every
cache hit served from the store, and the only misses are the entries
the integrity envelope quarantined as corrupt (``misses == corrupt``)
— i.e. zero recomputation beyond what corruption forced.

Usage (CI runs this as the chaos-smoke job)::

    python benchmarks/chaos/run_chaos.py --seed 0 --budget-ms 60000 \
        --out-dir chaos-artifacts --store
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.analysis.experiments import run_circuit_sweep
from repro.circuit import generators, write_bench_file
from repro.fabric import quarantine_dir_for
from repro.resilience.chaos import FabricChaosSpec

N_CIRCUITS = 14
N_PATTERNS = 128

#: The probabilistic fault mix each round rolls per (job, attempt).
CHAOS_MIX = dict(
    crash=0.12,
    stall=0.06,
    corrupt=0.12,
    spurious=0.12,
    enospc=0.12,
    duplicate=0.12,
)

#: With ``--store``: the worker faults make room for a store fault band.
#: Store faults only fire when a result store is attached, striking the
#: published entry after its journal commit.
STORE_CHAOS_MIX = dict(
    crash=0.10,
    stall=0.05,
    corrupt=0.10,
    spurious=0.10,
    enospc=0.10,
    duplicate=0.10,
    store_torn=0.08,
    store_bitflip=0.08,
    store_stale=0.07,
    store_double=0.07,
)


def _make_circuits(out_dir: Path, seed: int) -> list:
    d = out_dir / "circuits"
    d.mkdir(parents=True, exist_ok=True)
    paths = []
    for i in range(N_CIRCUITS):
        circuit = generators.random_dag(5, 22, seed=seed * 1000 + i)
        p = d / f"chaos{i:02d}.bench"
        write_bench_file(circuit, p)
        paths.append(p)
    return paths


def _commit_counts(journal_path: Path) -> dict:
    counts: dict = {}
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn line: crash evidence, not a commit
        if record.get("type") == "commit":
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget-ms", type=int, default=60_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-rounds", type=int, default=1_000)
    parser.add_argument("--out-dir", type=Path, default=Path("chaos-artifacts"))
    parser.add_argument(
        "--store",
        action="store_true",
        help=(
            "share a content-addressed result store across rounds, add "
            "the four store faults to the mix, and finish with a "
            "chaos-free zero-recomputation verification pass"
        ),
    )
    args = parser.parse_args(argv)

    out_dir: Path = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = _make_circuits(out_dir, args.seed)

    mix = STORE_CHAOS_MIX if args.store else CHAOS_MIX
    store_dir = out_dir / "store" if args.store else None
    store_kwargs = (
        dict(store=store_dir, store_verify_fraction=0.1)
        if args.store
        else {}
    )

    serial = [
        asdict(o)
        for o in run_circuit_sweep(
            paths,
            out_dir / "serial.jsonl",
            n_patterns=N_PATTERNS,
            measure_coverage=True,
        )
    ]
    print(f"serial baseline: {len(serial)} circuits", flush=True)

    deadline = time.monotonic() + args.budget_ms / 1000.0
    rounds = 0
    failures = []
    while time.monotonic() < deadline and rounds < args.max_rounds:
        rounds += 1
        chaos = FabricChaosSpec(
            seed=args.seed * 100_003 + rounds,
            stall_seconds=3.0,
            **mix,
        )
        journal = out_dir / f"round{rounds:03d}.journal"
        fabric = [
            asdict(o)
            for o in run_circuit_sweep(
                paths,
                journal,
                n_patterns=N_PATTERNS,
                measure_coverage=True,
                fabric=True,
                workers=args.workers,
                lease_timeout_s=1.0,
                chaos=chaos,
                **store_kwargs,
            )
        ]
        counts = _commit_counts(journal)
        problems = []
        if fabric != serial:
            # Quarantines are a legal, visible difference only when the
            # injected fault genuinely exhausted a job's attempts; with
            # first_attempt_only chaos (the default) retries must
            # converge, so *any* difference is a violation.
            problems.append("results differ from serial baseline")
        if any(n != 1 for n in counts.values()):
            problems.append(
                "duplicate commits: "
                + ", ".join(j for j, n in counts.items() if n != 1)
            )
        if len(counts) != N_CIRCUITS:
            problems.append(
                f"expected {N_CIRCUITS} committed jobs, found {len(counts)}"
            )
        if problems:
            failures.append((rounds, chaos.seed, problems))
            print(
                f"round {rounds:3d} seed {chaos.seed}: "
                f"FAIL ({'; '.join(problems)})",
                flush=True,
            )
            continue
        print(
            f"round {rounds:3d} seed {chaos.seed}: ok "
            f"({len(counts)} commits, exactly once)",
            flush=True,
        )
        # Passing rounds clean up after themselves; failing rounds leave
        # their journal and quarantine dirs behind as artifacts.
        journal.unlink()
        shutil.rmtree(quarantine_dir_for(journal), ignore_errors=True)

    if args.store and rounds and not failures:
        # The caching bar: a chaos-free pass against the store every
        # round battered must serve every job from cache — the only
        # legal misses are entries a store fault corrupted (quarantined
        # by the integrity envelope, then recomputed).
        from repro import obs

        recorder = obs.RunRecorder(None)
        with obs.recording(recorder):
            final = [
                asdict(o)
                for o in run_circuit_sweep(
                    paths,
                    out_dir / "final-verify.journal",
                    n_patterns=N_PATTERNS,
                    measure_coverage=True,
                    fabric=True,
                    workers=args.workers,
                    lease_timeout_s=1.0,
                    store=store_dir,
                    store_verify_fraction=0.0,
                )
            ]
        counters = recorder.metrics.snapshot()["counters"]
        hits = int(counters.get("fabric.store.hits", 0))
        misses = int(counters.get("fabric.store.misses", 0))
        corrupt = int(counters.get("fabric.store.corrupt", 0))
        problems = []
        if final != serial:
            problems.append("store-served results differ from serial")
        if hits + misses != N_CIRCUITS:
            problems.append(
                f"expected {N_CIRCUITS} store lookups, saw "
                f"hits={hits} misses={misses}"
            )
        if misses != corrupt:
            problems.append(
                f"recomputation without corruption: misses={misses} "
                f"corrupt={corrupt}"
            )
        if problems:
            failures.append(("final", args.seed, problems))
            print(
                f"final verify: FAIL ({'; '.join(problems)})", flush=True
            )
        else:
            print(
                f"final verify: ok ({hits} cache hits, {misses} "
                f"corruption-forced recomputes, bit-identical to serial)",
                flush=True,
            )

    print(
        f"chaos campaign: {rounds} round(s), {len(failures)} failure(s), "
        f"seed {args.seed}",
        flush=True,
    )
    if failures:
        print(
            f"artifacts (journals + quarantine dirs) kept in {out_dir}",
            file=sys.stderr,
        )
        return 1
    if rounds == 0:
        print("budget too small: no chaos round completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
