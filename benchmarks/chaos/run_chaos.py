#!/usr/bin/env python
"""Seeded fabric chaos campaign: injected mayhem, bit-identical results.

Runs the same sweep twice — once serially (ground truth), then
repeatedly on the fabric under a probabilistic mix of every injected
fault (worker crashes, stalled heartbeats, corrupt payloads, spurious
exceptions, ENOSPC on journal appends, duplicate completions) — until a
wall-clock budget runs out.  After every round it asserts the fabric's
acceptance bar:

* the outcome list is **bit-identical** to the serial sweep's, and
* every job is committed **exactly once** across the journal's whole
  history.

Any violation leaves the journal and quarantine artifacts in
``--out-dir`` and exits 1.  Rounds are deterministic in ``--seed`` (the
round index perturbs the chaos seed), so a failing campaign replays
exactly.

Usage (CI runs this as the chaos-smoke job)::

    python benchmarks/chaos/run_chaos.py --seed 0 --budget-ms 60000 \
        --out-dir chaos-artifacts
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.analysis.experiments import run_circuit_sweep
from repro.circuit import generators, write_bench_file
from repro.fabric import quarantine_dir_for
from repro.resilience.chaos import FabricChaosSpec

N_CIRCUITS = 14
N_PATTERNS = 128

#: The probabilistic fault mix each round rolls per (job, attempt).
CHAOS_MIX = dict(
    crash=0.12,
    stall=0.06,
    corrupt=0.12,
    spurious=0.12,
    enospc=0.12,
    duplicate=0.12,
)


def _make_circuits(out_dir: Path, seed: int) -> list:
    d = out_dir / "circuits"
    d.mkdir(parents=True, exist_ok=True)
    paths = []
    for i in range(N_CIRCUITS):
        circuit = generators.random_dag(5, 22, seed=seed * 1000 + i)
        p = d / f"chaos{i:02d}.bench"
        write_bench_file(circuit, p)
        paths.append(p)
    return paths


def _commit_counts(journal_path: Path) -> dict:
    counts: dict = {}
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn line: crash evidence, not a commit
        if record.get("type") == "commit":
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget-ms", type=int, default=60_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-rounds", type=int, default=1_000)
    parser.add_argument("--out-dir", type=Path, default=Path("chaos-artifacts"))
    args = parser.parse_args(argv)

    out_dir: Path = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = _make_circuits(out_dir, args.seed)

    serial = [
        asdict(o)
        for o in run_circuit_sweep(
            paths,
            out_dir / "serial.jsonl",
            n_patterns=N_PATTERNS,
            measure_coverage=True,
        )
    ]
    print(f"serial baseline: {len(serial)} circuits", flush=True)

    deadline = time.monotonic() + args.budget_ms / 1000.0
    rounds = 0
    failures = []
    while time.monotonic() < deadline and rounds < args.max_rounds:
        rounds += 1
        chaos = FabricChaosSpec(
            seed=args.seed * 100_003 + rounds,
            stall_seconds=3.0,
            **CHAOS_MIX,
        )
        journal = out_dir / f"round{rounds:03d}.journal"
        fabric = [
            asdict(o)
            for o in run_circuit_sweep(
                paths,
                journal,
                n_patterns=N_PATTERNS,
                measure_coverage=True,
                fabric=True,
                workers=args.workers,
                lease_timeout_s=1.0,
                chaos=chaos,
            )
        ]
        counts = _commit_counts(journal)
        problems = []
        if fabric != serial:
            # Quarantines are a legal, visible difference only when the
            # injected fault genuinely exhausted a job's attempts; with
            # first_attempt_only chaos (the default) retries must
            # converge, so *any* difference is a violation.
            problems.append("results differ from serial baseline")
        if any(n != 1 for n in counts.values()):
            problems.append(
                "duplicate commits: "
                + ", ".join(j for j, n in counts.items() if n != 1)
            )
        if len(counts) != N_CIRCUITS:
            problems.append(
                f"expected {N_CIRCUITS} committed jobs, found {len(counts)}"
            )
        if problems:
            failures.append((rounds, chaos.seed, problems))
            print(
                f"round {rounds:3d} seed {chaos.seed}: "
                f"FAIL ({'; '.join(problems)})",
                flush=True,
            )
            continue
        print(
            f"round {rounds:3d} seed {chaos.seed}: ok "
            f"({len(counts)} commits, exactly once)",
            flush=True,
        )
        # Passing rounds clean up after themselves; failing rounds leave
        # their journal and quarantine dirs behind as artifacts.
        journal.unlink()
        shutil.rmtree(quarantine_dir_for(journal), ignore_errors=True)

    print(
        f"chaos campaign: {rounds} round(s), {len(failures)} failure(s), "
        f"seed {args.seed}",
        flush=True,
    )
    if failures:
        print(
            f"artifacts (journals + quarantine dirs) kept in {out_dir}",
            file=sys.stderr,
        )
        return 1
    if rounds == 0:
        print("budget too small: no chaos round completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
