"""T3 — DP vs greedy vs random cost on fanout-free circuits.

Reproduces the solver-comparison table.  Expected shape: the DP's cost is
never above greedy's by more than its safety margin implies, and random
placement (when it terminates at all) is far more expensive.
"""

from repro.analysis import run_t3_tree_solver_comparison

TREE_SPECS = [(20, 0), (20, 1), (40, 2), (40, 3), (60, 4), (80, 5)]


def bench_t3_tree_solver_comparison(benchmark, record_result):
    result = benchmark.pedantic(
        run_t3_tree_solver_comparison,
        kwargs={"tree_specs": TREE_SPECS, "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == len(TREE_SPECS)
    for row in result.rows:
        _name, _gates, dp_cost, greedy_cost, random_cost, dp_ok, greedy_ok = row
        assert dp_ok and greedy_ok
        if random_cost is not None:
            assert random_cost >= min(dp_cost, greedy_cost)
