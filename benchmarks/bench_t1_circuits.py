"""T1 — benchmark circuit characteristics and baseline LFSR coverage.

Reproduces the evaluation's workload table: size, depth, fanout structure,
collapsed fault count, and unmodified random-pattern coverage per circuit.
The timed kernel is the fault simulation of the full suite at 1k patterns.
"""

from repro.analysis import run_t1_circuit_characteristics

#: Everything in the registry except the two large random DAGs (they are
#: covered by F2-style scaling; keeping T1 fast keeps the harness usable).
T1_NAMES = [
    "c17",
    "parity16",
    "rca8",
    "mult4",
    "eqcmp12",
    "magcmp8",
    "mux16",
    "dec4",
    "alu4",
    "wand16",
    "wand20",
    "wor16",
    "corridor8",
    "corridor12",
    "rprmix",
    "rprmix_big",
    "rtree60",
]


def bench_t1_circuit_characteristics(benchmark, record_result):
    result = benchmark.pedantic(
        run_t1_circuit_characteristics,
        kwargs={"names": T1_NAMES, "n_patterns": 1024},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == len(T1_NAMES)
    # Shape claim: the RPR stress circuits sit well below full coverage.
    by_name = {row[0]: row for row in result.rows}
    assert by_name["wand16"][-1] < 0.5
    assert by_name["parity16"][-1] == 1.0
