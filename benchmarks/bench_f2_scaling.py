"""F2 — runtime scaling: polynomial DP vs exponential exhaustive search.

Expected shape: DP time grows smoothly with tree size (low-degree
polynomial); exhaustive search is only viable on the smallest entries and
already dominates the DP there.
"""

from repro.analysis import run_f2_runtime_scaling

TREE_SIZES = (5, 8, 10, 20, 40, 80, 120)


def bench_f2_runtime_scaling(benchmark, record_result):
    result = benchmark.pedantic(
        run_f2_runtime_scaling,
        kwargs={
            "tree_sizes": TREE_SIZES,
            "threshold": 0.02,
            "exhaustive_limit": 10,
        },
        rounds=1,
        iterations=1,
    )
    record_result(result)
    dp_seconds = [row[1] for row in result.rows]
    # Polynomial shape check: over a size ratio R the runtime must stay
    # within R² (quadratic) — an exponential algorithm would exceed this
    # by hundreds of orders of magnitude at these sizes.  The bound is
    # deliberately loose against machine-load timing noise.
    size_ratio = TREE_SIZES[-1] / TREE_SIZES[0]
    assert dp_seconds[-1] < (size_ratio**2) * max(dp_seconds[0], 1e-2)
    assert all(row[2] is not None for row in result.rows)
