"""F4 — ablation: probability-grid density vs DP cost and runtime.

The DP's only approximation knob is the quantization grid.  Expected
shape: cost is flat or improving as the grid refines (a plateau by
ratio ≈ 2), runtime grows with grid size — justifying the default.
"""

from repro.analysis import run_f4_quantization_ablation


def bench_f4_quantization_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        run_f4_quantization_ablation,
        kwargs={
            "tree_gates": 40,
            "seed": 2,
            "threshold": 0.01,
            "ratios": (4.0, 2.0, 1.5, 1.25),
        },
        rounds=1,
        iterations=1,
    )
    record_result(result)
    costs = [row[2] for row in result.rows]
    sizes = [row[1] for row in result.rows]
    assert sizes == sorted(sizes)
    assert costs[-1] <= costs[0] + 1e-9
