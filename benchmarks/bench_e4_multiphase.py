"""E4 (extension) — always-random vs multi-phase fixed-value control points.

Expected shape: a handful of fixed-value phases matches the coverage of
independent random drivers — few of the exponentially many control-value
combinations matter, which is the premise of the multi-phase successor
work.
"""

from repro.analysis import run_e4_multiphase

E4_NAMES = ["wand16", "wor16", "rprmix", "eqcmp12"]


def bench_e4_multiphase(benchmark, record_result):
    result = benchmark.pedantic(
        run_e4_multiphase,
        kwargs={"names": E4_NAMES, "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for row in result.rows:
        name, _points, random_cov, n_phases, phased_cov = row
        assert n_phases <= 6, name
        assert phased_cov >= random_cov - 0.03, name
