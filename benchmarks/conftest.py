"""Shared plumbing for the table/figure reproduction harness.

Every ``bench_*`` module reproduces one table or figure of the
reconstructed evaluation (DESIGN.md §5).  The rendered table is printed
(visible with ``-s``) and archived under ``benchmarks/results/`` twice:
as ``<id>.txt`` (the human-readable table) and as ``<id>.json``
(machine-readable rows + run metadata), so the perf/coverage trajectory
can be diffed and tracked across PRs.  pytest-benchmark times the
computational kernel of each experiment.
"""

from __future__ import annotations

import datetime
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.ioutil import atomic_write_json, atomic_write_text  # noqa: E402
from repro.obs.recorder import run_metadata  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Return a callable persisting an ExperimentResult to disk + stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        text = result.render()
        stem = result.experiment_id.lower()
        atomic_write_text(RESULTS_DIR / f"{stem}.txt", text + "\n")
        payload = {
            "experiment_id": result.experiment_id,
            "description": result.description,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "meta": run_metadata(
                timestamp=datetime.datetime.now(
                    datetime.timezone.utc
                ).isoformat(timespec="seconds"),
            ),
        }
        atomic_write_json(
            RESULTS_DIR / f"{stem}.json", payload, sort_keys=False, default=str
        )
        print("\n" + text, file=sys.stderr)

    return _record
