"""Shared plumbing for the table/figure reproduction harness.

Every ``bench_*`` module reproduces one table or figure of the
reconstructed evaluation (DESIGN.md §5).  The rendered table is printed
(visible with ``-s``) and archived under ``benchmarks/results/`` so the
numbers survive the pytest capture; pytest-benchmark times the
computational kernel of each experiment.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Return a callable persisting an ExperimentResult to disk + stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        text = result.render()
        (RESULTS_DIR / f"{result.experiment_id.lower()}.txt").write_text(
            text + "\n"
        )
        print("\n" + text, file=sys.stderr)

    return _record
