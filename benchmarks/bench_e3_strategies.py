"""E3 (extension) — fix the patterns (ATPG top-off) vs fix the circuit (TPI).

Expected shape: random alone stalls on the RPR suite; both remedies reach
(near-)complete coverage — top-off pays in stored deterministic patterns,
TPI pays in a handful of test points.
"""

from repro.analysis import run_e3_strategy_comparison

E3_NAMES = ["eqcmp12", "wand16", "corridor12", "rprmix"]


def bench_e3_strategy_comparison(benchmark, record_result):
    result = benchmark.pedantic(
        run_e3_strategy_comparison,
        kwargs={"names": E3_NAMES, "n_patterns": 4096},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    for row in result.rows:
        name, random_cov, topoff_cov, _cubes, tpi_cov, _points = row
        assert topoff_cov >= random_cov - 1e-9, name
        assert topoff_cov > 0.99, name
        assert tpi_cov > 0.97, name
