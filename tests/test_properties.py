"""System-level property tests: the three semantic layers must agree.

The library's central discipline is that one placement semantics is shared
by (1) the analytical virtual evaluator, (2) the solvers that optimize
against it, and (3) the netlist rewriter + fault simulator that realize
and measure it.  These hypothesis tests generate random circuits and
random placements and check the layers against each other exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import GateType, generators
from repro.circuit.gates import evaluate_gate
from repro.core import (
    TestPoint,
    TestPointType,
    TPIProblem,
    apply_test_points,
    evaluate_placement,
)
from repro.sim import ExhaustiveSource, FaultSimulator, LogicSimulator, ones_mask

PLACEABLE = (
    TestPointType.OBSERVATION,
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
    TestPointType.CONTROL_RANDOM,
)


def random_placement_for(circuit, rng_seed: int, max_points: int = 3):
    """A deterministic pseudo-random stem placement on the circuit."""
    import random

    rng = random.Random(rng_seed)
    nodes = circuit.node_names
    points = []
    controlled = set()
    for _ in range(rng.randint(0, max_points)):
        node = rng.choice(nodes)
        kind = rng.choice(PLACEABLE)
        if kind.is_control:
            if node in controlled:
                continue
            controlled.add(node)
        point = TestPoint(node, kind)
        if point not in points:
            points.append(point)
    return points


class TestNormalModeEquivalence:
    """With test signals idle, inserted hardware must be transparent."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_random_dag_random_placement(self, seed):
        circuit = generators.random_dag(6, 25, seed=seed)
        points = [
            p
            for p in random_placement_for(circuit, seed * 7 + 1)
            # Random re-drives have no transparent mode; exclude them here.
            if p.kind is not TestPointType.CONTROL_RANDOM
        ]
        insertion = apply_test_points(circuit, points)
        mod = insertion.circuit
        n = 64
        from repro.sim import UniformRandomSource

        stim = UniformRandomSource(seed=seed).generate(circuit.inputs, n)
        mask = ones_mask(n)
        for r in insertion.test_inputs:
            sink_gate = mod.fanouts(r)[0][0]
            idle = (
                mask
                if mod.node(sink_gate).gate_type is GateType.AND
                else 0
            )
            stim[r] = idle
        v_orig = LogicSimulator(circuit).run(stim, n)
        v_mod = LogicSimulator(mod).run(stim, n)
        for po in circuit.outputs:
            assert v_orig[po] == v_mod[po], po


class TestVirtualModelIsExactOnTrees:
    """Analytic detection probability == measured detection on trees.

    The modified circuit is simulated exhaustively over *all* inputs
    (including the added test signals), so the measured per-pattern
    detection fraction equals the model's probability exactly — there is
    no sampling noise to hide behind.
    """

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_random_tree_random_placement(self, seed):
        circuit = generators.random_tree(6, seed=seed, include_inverters=False)
        if len(circuit.inputs) > 7:
            return
        points = random_placement_for(circuit, seed * 13 + 5, max_points=2)
        problem = TPIProblem(circuit=circuit, threshold=0.01)
        virtual = evaluate_placement(problem, points)

        insertion = apply_test_points(circuit, points)
        mod = insertion.circuit
        n_inputs = len(mod.inputs)
        if n_inputs > 11:
            return
        n = 1 << n_inputs
        stim = ExhaustiveSource().generate(mod.inputs, n)
        sim = FaultSimulator(mod)
        good = LogicSimulator(mod).run(stim, n)
        for original, mapped in insertion.fault_map.items():
            predicted = virtual.fault_detection(original)
            if mapped is None:
                measured = 0.0
            else:
                word = sim.simulate_fault(mapped, good, n)
                measured = word.bit_count() / n
            assert predicted == pytest.approx(measured, abs=1e-9), (
                original.describe()
            )


class TestEvaluatorInternalConsistency:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_probabilities_and_observabilities_in_range(self, seed):
        circuit = generators.random_dag(6, 30, seed=seed)
        points = random_placement_for(circuit, seed + 99)
        problem = TPIProblem(circuit=circuit, threshold=0.01)
        ev = evaluate_placement(problem, points)
        for value in list(ev.stem_pre.values()) + list(ev.stem_post.values()):
            assert -1e-9 <= value <= 1 + 1e-9
        for value in list(ev.wire_obs.values()) + list(ev.branch_obs.values()):
            assert -1e-9 <= value <= 1 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_observation_points_monotone(self, seed):
        """Adding an observation point never hurts any wire's observability."""
        import random as _random

        circuit = generators.random_dag(6, 30, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.01)
        base = evaluate_placement(problem, [])
        rng = _random.Random(seed)
        node = rng.choice(circuit.node_names)
        boosted = evaluate_placement(
            problem, [TestPoint(node, TestPointType.OBSERVATION)]
        )
        for name in circuit.node_names:
            assert boosted.wire_obs[name] >= base.wire_obs[name] - 1e-12
