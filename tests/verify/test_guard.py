"""Shadow verification: planted kernel bugs must be caught and bundled."""

from __future__ import annotations

import json

import pytest

from repro.circuit.generators import c17, random_dag
from repro.errors import DivergenceError
from repro.sim.compile import clear_registry
from repro.sim.fault_sim import FaultSimulator
from repro.sim.logic_sim import LogicSimulator
from repro.sim.patterns import UniformRandomSource
from repro.testability.cop import cop_measures
from repro.verify import (
    Guard,
    GuardedSession,
    load_bundle,
    plant_kernel_bug,
    replay_bundle,
)
from repro.verify.plant import corrupt_source


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


def _stim(circuit, n=64, seed=3):
    return UniformRandomSource(seed).generate(circuit.inputs, n)


class TestGuardSampling:
    def test_fraction_zero_never_checks(self):
        guard = Guard(fraction=0.0, seed=0)
        assert not any(guard.should_check() for _ in range(200))

    def test_fraction_one_always_checks(self):
        guard = Guard(fraction=1.0, seed=0)
        assert all(guard.should_check() for _ in range(200))

    def test_sampling_is_seeded(self):
        a = [Guard(fraction=0.3, seed=7).should_check() for _ in range(50)]
        b = [Guard(fraction=0.3, seed=7).should_check() for _ in range(50)]
        assert a == b

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Guard(fraction=1.5)


class TestFaultSimGuard:
    def test_clean_circuit_passes_full_shadowing(self, tmp_path):
        circuit = c17()
        stim = _stim(circuit)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        sim = FaultSimulator(circuit, kernel="compiled", guard=guard)
        result = sim.run(stim, 64)
        assert guard.checks > 0
        assert guard.divergences == 0
        arbiter = FaultSimulator(circuit, kernel="interp").run(stim, 64)
        assert result.detection_word == arbiter.detection_word

    def test_planted_cone_bug_raises_with_bundle(self, tmp_path):
        circuit = c17()
        stim = _stim(circuit)
        # Compile the real kernels once, then corrupt one cone kernel the
        # way a miscompile would: the source in the registry changes, the
        # cached callable is dropped, the next run executes the bad code.
        sim = FaultSimulator(circuit, kernel="compiled")
        sim.run(stim, 64)
        from repro.sim.compile import get_compiled

        key = next(
            k for k in get_compiled(circuit).sources if k.startswith("cone:")
        )
        plant_kernel_bug(circuit, key)

        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        bad_sim = FaultSimulator(circuit, kernel="compiled", guard=guard)
        with pytest.raises(DivergenceError) as info:
            bad_sim.run(stim, 64)
        exc = info.value
        assert exc.kind == "fault_sim.cone"
        assert exc.bundle_path is not None
        manifest, bundled_circuit = load_bundle(exc.bundle_path)
        assert manifest["kind"] == "fault_sim.cone"
        assert key in manifest["sources"]
        assert sorted(bundled_circuit.inputs) == sorted(circuit.inputs)

    def test_bundle_replays_deterministically(self, tmp_path):
        circuit = c17()
        stim = _stim(circuit)
        FaultSimulator(circuit, kernel="compiled").run(stim, 64)
        from repro.sim.compile import get_compiled

        key = next(
            k for k in get_compiled(circuit).sources if k.startswith("cone:")
        )
        plant_kernel_bug(circuit, key)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        with pytest.raises(DivergenceError) as info:
            FaultSimulator(circuit, kernel="compiled", guard=guard).run(
                stim, 64
            )
        for _ in range(2):  # deterministic: replays identically twice
            result = replay_bundle(info.value.bundle_path)
            assert result.reproduced

    def test_unguarded_run_is_unaffected(self):
        circuit = c17()
        stim = _stim(circuit)
        result = FaultSimulator(circuit, kernel="compiled").run(stim, 64)
        arbiter = FaultSimulator(circuit, kernel="interp").run(stim, 64)
        assert result.detection_word == arbiter.detection_word


class TestCopAndIncrementalGuards:
    def test_cop_clean_under_full_shadowing(self, tmp_path):
        circuit = random_dag(n_inputs=4, n_gates=12, seed=5)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        cop_measures(circuit, kernel="compiled", guard=guard)
        assert guard.checks >= 1
        assert guard.divergences == 0

    def test_cop_empty_override_maps_still_shadow_checked(self, tmp_path):
        # Empty (falsy) override/observed maps take the fast-backend
        # path exactly like None, so they must be guarded like None.
        circuit = random_dag(n_inputs=4, n_gates=12, seed=5)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        cop_measures(
            circuit,
            probability_overrides={},
            observed={},
            kernel="compiled",
            guard=guard,
        )
        assert guard.checks >= 1
        assert guard.divergences == 0

    def test_incremental_clean_under_ambient_session(self, tmp_path):
        from repro.core.incremental import IncrementalEvaluator
        from repro.core.problem import TPIProblem

        circuit = random_dag(n_inputs=4, n_gates=12, seed=5)
        problem = TPIProblem.from_test_length(circuit, n_patterns=64)
        with GuardedSession(
            fraction=1.0, seed=0, bundle_dir=tmp_path
        ) as guard:
            IncrementalEvaluator(problem).evaluate(())
        assert guard.divergences == 0


class TestGuardedSession:
    def test_ambient_guard_catches_planted_bug(self, tmp_path):
        circuit = c17()
        stim = _stim(circuit)
        FaultSimulator(circuit, kernel="compiled").run(stim, 64)
        from repro.sim.compile import get_compiled

        key = next(
            k for k in get_compiled(circuit).sources if k.startswith("cone:")
        )
        plant_kernel_bug(circuit, key)
        with pytest.raises(DivergenceError):
            with GuardedSession(fraction=1.0, seed=0, bundle_dir=tmp_path):
                FaultSimulator(circuit, kernel="compiled").run(stim, 64)

    def test_session_restores_previous_guard(self, tmp_path):
        from repro.verify import active_guard

        assert active_guard(None) is None
        with GuardedSession(fraction=0.5, bundle_dir=tmp_path) as outer:
            with GuardedSession(fraction=1.0, bundle_dir=tmp_path) as inner:
                assert active_guard(None) is inner
            assert active_guard(None) is outer
        assert active_guard(None) is None


class TestPlanting:
    def test_corrupt_source_changes_body_not_signature(self):
        source = "def kernel(gv, fstart, mask):\n    a = b & c\n    return a\n"
        corrupted, description = corrupt_source(source)
        assert corrupted != source
        assert "&" in description
        assert corrupted.splitlines()[0] == source.splitlines()[0]

    def test_corrupt_source_requires_an_operator(self):
        with pytest.raises(ValueError):
            corrupt_source("def kernel():\n    return 0\n")

    def test_planted_logic_bug_changes_simulation(self):
        from repro.verify import plant_logic_bug

        circuit = c17()
        stim = _stim(circuit)
        reference = LogicSimulator(circuit, kernel="interp").run(stim, 64)
        plant_logic_bug(circuit)
        corrupted = LogicSimulator(circuit, kernel="compiled").run(stim, 64)
        assert corrupted != reference


class TestBundleFormat:
    def test_manifest_is_json_and_content_addressed(self, tmp_path):
        from repro.verify import write_bundle

        circuit = c17()
        path1 = write_bundle(
            "fuzz.logic_sim",
            circuit=circuit,
            context={"n_patterns": 8, "stimulus": {}},
            expected={"a": 1},
            actual={"a": 2},
            message="test",
            bundle_dir=tmp_path,
        )
        path2 = write_bundle(
            "fuzz.logic_sim",
            circuit=circuit,
            context={"n_patterns": 8, "stimulus": {}},
            expected={"a": 1},
            actual={"a": 2},
            message="test",
            bundle_dir=tmp_path,
        )
        assert path1 == path2  # identical divergence -> identical bundle
        manifest = json.loads((path1 / "manifest.json").read_text())
        assert manifest["schema"] == "repro-bundle/1"
        assert (path1 / "circuit.bench").exists()
