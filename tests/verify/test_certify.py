"""Solver result certification: planted lies must be rejected."""

from __future__ import annotations

import dataclasses

import pytest

from repro.circuit.generators import random_dag, random_tree
from repro.core.dp import solve_tree
from repro.core.greedy import solve_greedy
from repro.core.problem import TestPoint, TestPointType, TPIProblem, TPISolution
from repro.errors import DivergenceError
from repro.verify import Guard, GuardedSession, certify_solution, replay_bundle


def _tree_problem(gates=8, seed=2, n_patterns=64):
    return TPIProblem.from_test_length(
        random_tree(gates, seed=seed), n_patterns=n_patterns,
        escape_budget=0.05,
    )


class TestCleanSolutionsPass:
    def test_dp_solution_certifies(self, tmp_path):
        problem = _tree_problem()
        with GuardedSession(fraction=0.0, bundle_dir=tmp_path):
            solution = solve_tree(problem)  # certifies internally
        assert certify_solution(problem, solution) is solution

    def test_greedy_solution_certifies(self):
        circuit = random_dag(n_inputs=4, n_gates=15, seed=9)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        solution = solve_greedy(problem)
        assert certify_solution(problem, solution) is solution


class TestPlantedSolverBugs:
    def test_off_by_one_cost_caught(self, tmp_path):
        """The acceptance-criteria planted bug: claimed objective + 0.5."""
        problem = _tree_problem()
        honest = solve_tree(problem)
        lying = dataclasses.replace(honest, cost=honest.cost + 0.5)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        with pytest.raises(DivergenceError) as info:
            certify_solution(problem, lying, guard=guard)
        exc = info.value
        assert exc.kind == "solver.cost"
        assert exc.bundle_path is not None
        result = replay_bundle(exc.bundle_path)
        assert result.reproduced
        # Determinism: a second replay reaches the same verdict.
        assert replay_bundle(exc.bundle_path).reproduced

    def test_false_feasibility_caught(self, tmp_path):
        problem = _tree_problem()
        lying = TPISolution(
            points=[], cost=0.0, feasible=True, method="greedy"
        )
        guard = Guard(bundle_dir=tmp_path)
        with pytest.raises(DivergenceError) as info:
            certify_solution(problem, lying, guard=guard)
        assert info.value.kind == "solver.feasible"
        assert replay_bundle(info.value.bundle_path).reproduced

    def test_dp_claim_on_fanout_circuit_caught(self, tmp_path):
        circuit = random_dag(n_inputs=4, n_gates=15, seed=9)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        lying = TPISolution(
            points=[], cost=0.0, feasible=False, method="dp"
        )
        guard = Guard(bundle_dir=tmp_path)
        with pytest.raises(DivergenceError) as info:
            certify_solution(problem, lying, guard=guard)
        assert info.value.kind == "solver.dp_precondition"
        assert replay_bundle(info.value.bundle_path).reproduced

    def test_double_control_point_placement_caught(self, tmp_path):
        problem = _tree_problem()
        site = problem.circuit.gates[0].name
        lying = TPISolution(
            points=[
                TestPoint(node=site, kind=TestPointType.CONTROL_AND),
                TestPoint(node=site, kind=TestPointType.CONTROL_OR),
            ],
            cost=problem.costs.total(()),
            feasible=False,
            method="greedy",
        )
        guard = Guard(bundle_dir=tmp_path)
        with pytest.raises(DivergenceError) as info:
            certify_solution(problem, lying, guard=guard)
        assert info.value.kind == "solver.placement"


class TestMaybeCertify:
    def test_noop_without_session(self):
        from repro.verify import maybe_certify

        problem = _tree_problem()
        lying = TPISolution(points=[], cost=0.0, feasible=True, method="greedy")
        # No ambient guard: the lie passes through untouched (zero cost).
        assert maybe_certify(problem, lying) is lying

    def test_session_certifies_solver_output(self, tmp_path):
        problem = _tree_problem()
        with GuardedSession(fraction=0.0, bundle_dir=tmp_path) as guard:
            solve_tree(problem)
        # certification ran even at sampling fraction 0 (it is not sampled)
        assert guard.divergences == 0

    def test_session_certify_false_disables(self, tmp_path):
        from repro.verify import maybe_certify

        problem = _tree_problem()
        lying = TPISolution(points=[], cost=0.0, feasible=True, method="greedy")
        with GuardedSession(certify=False, bundle_dir=tmp_path):
            assert maybe_certify(problem, lying) is lying

    def test_cascade_output_certified_under_session(self, tmp_path):
        from repro.core.cascade import solve_with_fallback

        circuit = random_dag(n_inputs=4, n_gates=15, seed=9)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        with GuardedSession(fraction=0.0, bundle_dir=tmp_path):
            solution = solve_with_fallback(problem)
        assert solution.method in ("dp-heuristic", "greedy", "random")
