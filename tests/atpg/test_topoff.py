"""Tests for the random + deterministic top-off flow."""

import pytest

from repro.atpg import top_off
from repro.circuit import CircuitBuilder, benchmark, generators


class TestTopOff:
    def test_reaches_full_coverage_on_rpr_circuit(self):
        report = top_off(benchmark("eqcmp12"), n_random_patterns=256)
        assert report.random_coverage < 1.0
        assert report.final_coverage == 1.0
        assert report.n_deterministic_patterns > 0
        assert report.redundant == [] and report.aborted == []

    def test_easy_circuit_needs_no_cubes(self):
        report = top_off(generators.parity_tree(8), n_random_patterns=512)
        assert report.final_coverage == 1.0
        assert report.n_deterministic_patterns == 0
        assert report.cubes == []

    def test_redundant_faults_separated(self):
        b = CircuitBuilder("red")
        a1, a2 = b.inputs("a", "b")
        s = b.and_(a1, a2, name="s")
        p = b.not_(s, name="p")
        q = b.buf(s, name="q")
        b.output(b.and_(p, q, name="y"))
        report = top_off(b.build(), n_random_patterns=64)
        assert len(report.redundant) >= 1
        assert report.final_coverage < 1.0
        assert report.detectable_coverage == 1.0

    def test_summary_text(self):
        report = top_off(generators.wide_and_cone(8), n_random_patterns=32)
        text = report.summary()
        assert "random 32 patterns" in text
        assert "deterministic" in text

    def test_deterministic_given_fixed_seeds(self):
        a = top_off(benchmark("wand16"), n_random_patterns=128, fill_seed=3)
        b2 = top_off(benchmark("wand16"), n_random_patterns=128, fill_seed=3)
        assert a.final_coverage == b2.final_coverage
        assert a.cubes == b2.cubes
