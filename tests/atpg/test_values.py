"""Unit tests for the ternary logic used by PODEM."""

import itertools

import pytest

from repro.atpg import X, is_binary, ternary_gate_eval
from repro.circuit import GateType
from repro.circuit.gates import evaluate_gate


class TestTernaryEval:
    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.AND,
            GateType.OR,
            GateType.NAND,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ],
    )
    def test_binary_inputs_match_boolean(self, gate_type):
        for a, b in itertools.product([0, 1], repeat=2):
            assert ternary_gate_eval(gate_type, [a, b]) == evaluate_gate(
                gate_type, [a, b], 1
            )

    def test_controlling_value_decides_despite_x(self):
        assert ternary_gate_eval(GateType.AND, [0, X]) == 0
        assert ternary_gate_eval(GateType.NAND, [X, 0]) == 1
        assert ternary_gate_eval(GateType.OR, [1, X]) == 1
        assert ternary_gate_eval(GateType.NOR, [X, 1]) == 0

    def test_noncontrolling_with_x_stays_x(self):
        assert ternary_gate_eval(GateType.AND, [1, X]) is X
        assert ternary_gate_eval(GateType.OR, [0, X]) is X

    def test_xor_any_x_is_x(self):
        assert ternary_gate_eval(GateType.XOR, [1, X]) is X
        assert ternary_gate_eval(GateType.XNOR, [X, X]) is X
        assert ternary_gate_eval(GateType.XOR, [1, 1]) == 0

    def test_unary_and_const(self):
        assert ternary_gate_eval(GateType.NOT, [X]) is X
        assert ternary_gate_eval(GateType.NOT, [0]) == 1
        assert ternary_gate_eval(GateType.BUF, [X]) is X
        assert ternary_gate_eval(GateType.CONST0, []) == 0
        assert ternary_gate_eval(GateType.CONST1, []) == 1

    def test_is_binary(self):
        assert is_binary(0) and is_binary(1)
        assert not is_binary(X)

    def test_monotone_refinement_property(self):
        """Replacing an X by a binary value never contradicts a binary output."""
        for gate_type in (GateType.AND, GateType.OR, GateType.XOR, GateType.NAND):
            for a in (0, 1, X):
                for b in (0, 1, X):
                    out = ternary_gate_eval(gate_type, [a, b])
                    if out is X:
                        continue
                    for ra in ([a] if a is not X else [0, 1]):
                        for rb in ([b] if b is not X else [0, 1]):
                            assert (
                                ternary_gate_eval(gate_type, [ra, rb]) == out
                            )
