"""Tests for the PODEM test generator.

The binding contract: every TESTABLE verdict comes with a cube that
*actually detects the fault* under the real fault simulator, and every
UNTESTABLE verdict is confirmed by exhaustive simulation on small
circuits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import ATPGStatus, Podem
from repro.circuit import CircuitBuilder, generators
from repro.sim import (
    ExhaustiveSource,
    ExplicitSource,
    Fault,
    FaultSimulator,
    all_stuck_at_faults,
)


def cube_detects(circuit, fault, cube) -> bool:
    """Ground truth: apply the (zero-filled) cube, check detection."""
    pattern = {pi: cube.get(pi, 0) for pi in circuit.inputs}
    stim = ExplicitSource([pattern]).generate(circuit.inputs, 1)
    result = FaultSimulator(circuit).run(stim, 1, faults=[fault])
    return bool(result.detection_word[fault])


def redundant_diamond():
    """y = AND(s, NOT(s)) — constant 0, so y s-a-0 is undetectable."""
    b = CircuitBuilder("red")
    a1, a2 = b.inputs("a", "b")
    s = b.and_(a1, a2, name="s")
    p = b.not_(s, name="p")
    q = b.buf(s, name="q")
    b.output(b.and_(p, q, name="y"))
    return b.build()


class TestCubesAreValid:
    @pytest.mark.parametrize(
        "make",
        [
            generators.c17,
            lambda: generators.parity_tree(8),
            lambda: generators.ripple_carry_adder(4),
            lambda: generators.equality_comparator(8),
            lambda: generators.mux_tree(3),
            lambda: generators.wide_and_cone(16),
        ],
    )
    def test_every_cube_kills_its_fault(self, make):
        circuit = make()
        podem = Podem(circuit)
        for fault in all_stuck_at_faults(circuit):
            result = podem.generate(fault)
            assert result.status is ATPGStatus.TESTABLE, fault.describe()
            assert cube_detects(circuit, fault, result.cube), fault.describe()

    def test_branch_faults(self, c17):
        podem = Podem(c17)
        branch_faults = [f for f in all_stuck_at_faults(c17) if f.is_branch]
        assert branch_faults
        for fault in branch_faults:
            result = podem.generate(fault)
            assert result.status is ATPGStatus.TESTABLE
            assert cube_detects(c17, fault, result.cube)


class TestRedundancy:
    def test_constant_zero_output_sa0_untestable(self):
        circuit = redundant_diamond()
        podem = Podem(circuit)
        assert podem.generate(Fault("y", 0)).status is ATPGStatus.UNTESTABLE
        assert podem.generate(Fault("y", 1)).status is ATPGStatus.TESTABLE

    def test_untestable_faults_helper(self):
        circuit = redundant_diamond()
        podem = Podem(circuit)
        untestable = podem.untestable_faults(all_stuck_at_faults(circuit))
        assert Fault("y", 0) in untestable

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_verdicts_match_exhaustive_simulation(self, seed):
        """On small DAGs, PODEM's verdict == exhaustive-simulation truth."""
        circuit = generators.random_dag(5, 15, seed=seed)
        n = 1 << len(circuit.inputs)
        stim = ExhaustiveSource().generate(circuit.inputs, n)
        sim = FaultSimulator(circuit)
        truth = sim.run(stim, n, collapse=False)
        podem = Podem(circuit, backtrack_limit=100_000)
        for fault, word in truth.detection_word.items():
            result = podem.generate(fault)
            assert result.status is not ATPGStatus.ABORTED
            detectable = bool(word)
            assert (result.status is ATPGStatus.TESTABLE) == detectable, (
                fault.describe()
            )
            if detectable:
                assert cube_detects(circuit, fault, result.cube)


class TestEffortAccounting:
    def test_abort_on_tiny_limit(self):
        # A hard-to-excite fault with an absurd backtrack limit of 0 may
        # abort; the status must never lie.
        circuit = generators.wide_and_cone(16)
        podem = Podem(circuit, backtrack_limit=0)
        result = podem.generate(Fault(circuit.outputs[0], 0))
        assert result.status in (ATPGStatus.TESTABLE, ATPGStatus.ABORTED)

    def test_backtracks_reported(self):
        circuit = redundant_diamond()
        result = Podem(circuit).generate(Fault("y", 0))
        assert result.backtracks > 0

    def test_generate_all_covers_list(self, c17):
        faults = all_stuck_at_faults(c17)[:6]
        results = Podem(c17).generate_all(faults)
        assert set(results) == set(faults)
