"""Tests for the command-line interface (driven through main(argv))."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "wand16" in out


class TestStats:
    def test_builtin(self, capsys):
        assert main(["stats", "c17", "--patterns", "128"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "coverage" in out

    def test_bench_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_bench_file

        path = tmp_path / "circ.bench"
        write_bench_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["stats", "no-such-circuit"])


class TestInsert:
    def test_dp_solver(self, capsys):
        assert main(["insert", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "dp-heuristic" in out

    def test_greedy_solver(self, capsys):
        assert main(
            ["insert", "wand16", "--patterns", "512", "--solver", "greedy"]
        ) == 0
        assert "greedy" in capsys.readouterr().out


class TestCoverage:
    def test_reports_improvement(self, capsys):
        assert main(["coverage", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "->" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--only", "t2"]) == 0
        assert "[T2]" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "zz"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_report_sections(self, capsys):
        assert main(["report", "wand16", "--patterns", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Testability report" in out
        assert "Random-pattern-resistant" in out

    def test_verilog_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_verilog_file

        path = tmp_path / "circ.v"
        write_verilog_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0

    def test_unparseable_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "junk.bench"
        path.write_text("this is ( not a bench file\n")
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert "parse error" in err
        assert "junk.bench:1" in err


class TestObservability:
    def test_coverage_trace_out_emits_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--trace-out", str(trace)]
        ) == 0
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert events[0]["meta"]["circuit"] == "wand16"
        assert events[0]["meta"]["seed"] == 1

        # One span per pipeline stage.
        span_names = {e["name"] for e in events if e["event"] == "span"}
        for stage in ("prepare", "solve", "insert", "fault_sim.run"):
            assert stage in span_names, f"missing {stage} span"

        # DP counters and fault-sim throughput in the metrics snapshot.
        (metrics,) = [e for e in events if e["event"] == "metrics"]
        counters = metrics["metrics"]["counters"]
        assert counters["dp.table_cells"] > 0
        assert counters["dp.decisions"] > 0
        assert counters["fault_sim.gate_evals"] > 0
        assert metrics["metrics"]["gauges"]["fault_sim.gate_evals_per_sec"] > 0

    def test_report_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "dp.solve" in out
        assert "fault_sim" in out

    def test_report_missing_trace(self):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["report", "does-not-exist.jsonl"])

    def test_metrics_flag_prints_snapshot(self, capsys):
        assert main(
            ["stats", "c17", "--patterns", "64", "--metrics"]
        ) == 0
        err = capsys.readouterr().err
        assert "counters" in err
        assert "fault_sim.runs" in err

    def test_recorder_uninstalled_after_run(self, tmp_path):
        from repro import obs

        trace = tmp_path / "run.jsonl"
        main(["stats", "c17", "--patterns", "64", "--trace-out", str(trace)])
        assert obs.get_recorder() is None


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "c17" in proc.stdout
