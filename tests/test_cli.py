"""Tests for the command-line interface (driven through main(argv))."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "wand16" in out


class TestStats:
    def test_builtin(self, capsys):
        assert main(["stats", "c17", "--patterns", "128"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "coverage" in out

    def test_bench_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_bench_file

        path = tmp_path / "circ.bench"
        write_bench_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["stats", "no-such-circuit"])


class TestInsert:
    def test_dp_solver(self, capsys):
        assert main(["insert", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "dp-heuristic" in out

    def test_greedy_solver(self, capsys):
        assert main(
            ["insert", "wand16", "--patterns", "512", "--solver", "greedy"]
        ) == 0
        assert "greedy" in capsys.readouterr().out


class TestCoverage:
    def test_reports_improvement(self, capsys):
        assert main(["coverage", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "->" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--only", "t2"]) == 0
        assert "[T2]" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "zz"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_report_sections(self, capsys):
        assert main(["report", "wand16", "--patterns", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Testability report" in out
        assert "Random-pattern-resistant" in out

    def test_verilog_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_verilog_file

        path = tmp_path / "circ.v"
        write_verilog_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0

    def test_unparseable_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "junk.bench"
        path.write_text("this is ( not a bench file\n")
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert "parse error" in err
        assert "junk.bench:1" in err


class TestObservability:
    def test_coverage_trace_out_emits_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--trace-out", str(trace)]
        ) == 0
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert events[0]["meta"]["circuit"] == "wand16"
        assert events[0]["meta"]["seed"] == 1

        # One span per pipeline stage.
        span_names = {e["name"] for e in events if e["event"] == "span"}
        for stage in ("prepare", "solve", "insert", "fault_sim.run"):
            assert stage in span_names, f"missing {stage} span"

        # DP counters and fault-sim throughput in the metrics snapshot.
        (metrics,) = [e for e in events if e["event"] == "metrics"]
        counters = metrics["metrics"]["counters"]
        assert counters["dp.table_cells"] > 0
        assert counters["dp.decisions"] > 0
        assert counters["fault_sim.gate_evals"] > 0
        assert metrics["metrics"]["gauges"]["fault_sim.gate_evals_per_sec"] > 0

    def test_report_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "dp.solve" in out
        assert "fault_sim" in out

    def test_report_missing_trace(self):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["report", "does-not-exist.jsonl"])

    def test_metrics_flag_prints_snapshot(self, capsys):
        assert main(
            ["stats", "c17", "--patterns", "64", "--metrics"]
        ) == 0
        err = capsys.readouterr().err
        assert "counters" in err
        assert "fault_sim.runs" in err

    def test_recorder_uninstalled_after_run(self, tmp_path):
        from repro import obs

        trace = tmp_path / "run.jsonl"
        main(["stats", "c17", "--patterns", "64", "--trace-out", str(trace)])
        assert obs.get_recorder() is None


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "c17" in proc.stdout


class TestTraceAnalyticsFlags:
    @pytest.fixture()
    def trace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--trace-out", str(path)]
        ) == 0
        capsys.readouterr()
        return path

    def test_self_time(self, trace, capsys):
        assert main(["report", str(trace), "--self-time"]) == 0
        out = capsys.readouterr().out
        assert "self-time by span name" in out
        assert "dp.solve" in out
        assert "Trace summary" not in out  # analytics replace the summary

    def test_critical_path(self, trace, capsys):
        assert main(["report", str(trace), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "solve" in out

    def test_chrome_export(self, trace, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "run.trace.json"
        assert main(
            ["report", str(trace), "--chrome-out", str(out_path)]
        ) == 0
        obj = json.loads(out_path.read_text())
        assert validate_chrome_trace(obj) == []
        assert "chrome trace written" in capsys.readouterr().err

    def test_default_summary_includes_phases(self, trace, capsys):
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "phase attribution" in out

    def test_flags_rejected_for_circuit_argument(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report", "wand16", "--self-time"])
        assert exc.value.code == 2

    def test_tolerates_torn_final_line(self, trace, capsys):
        with trace.open("a") as sink:
            sink.write('{"event": "span", "name": "torn')
        assert main(["report", str(trace), "--self-time"]) == 0
        assert "dp.solve" in capsys.readouterr().out


class TestProfileFlags:
    def test_sampling_profile_writes_folded(self, tmp_path, capsys):
        out = tmp_path / "run.folded"
        assert main(
            ["coverage", "wand16", "--patterns", "256",
             "--profile-out", str(out),
             "--profile-interval-ms", "1"]
        ) == 0
        assert "profile:" in capsys.readouterr().err
        for line in out.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0

    def test_cprofile_span_scoped(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "solve.pstats"
        assert main(
            ["insert", "wand16", "--patterns", "512",
             "--profile-out", str(out),
             "--profile-mode", "cprofile",
             "--profile-span", "solve"]
        ) == 0
        funcs = {
            func for _f, _l, func in pstats.Stats(str(out)).stats
        }
        assert any("solve" in f for f in funcs)

    def test_profile_span_requires_cprofile_mode(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                ["stats", "c17", "--patterns", "64",
                 "--profile-out", str(tmp_path / "x"),
                 "--profile-span", "solve"]
            )
        assert exc.value.code == 2


class TestBenchCompare:
    def _payload(self, tmp_path, speedup=3.0, seconds=1.0):
        payload = {
            "schema": 1,
            "mode": "quick",
            "kernel": "compiled",
            "benchmarks": {
                "kernel_logic_sim": {
                    "speedup": speedup,
                    "seconds_compiled": seconds,
                }
            },
        }
        path = tmp_path / "BENCH_PERF.json"
        path.write_text(json.dumps(payload))
        return path

    def _seed(self, tmp_path, n=5):
        from repro.obs import history as hist

        history = tmp_path / "history.jsonl"
        for i in range(n):
            payload = json.loads(self._payload(tmp_path).read_text())
            hist.append_history(
                history,
                hist.entries_from_bench_perf(payload, ts=float(i)),
            )
        return history

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        current = self._payload(tmp_path)
        assert main(
            ["bench-compare", str(current), "--history", str(history)]
        ) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_planted_slowdown_exits_nonzero(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        current = self._payload(tmp_path, speedup=2.0, seconds=1.5)
        assert main(
            ["bench-compare", str(current), "--history", str(history)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_record_appends(self, tmp_path, capsys):
        from repro.obs import history as hist

        history = self._seed(tmp_path, n=2)
        current = self._payload(tmp_path)
        assert main(
            ["bench-compare", str(current), "--history", str(history),
             "--record"]
        ) == 0
        assert len(hist.load_history(history)) == 3

    def test_empty_history_skips_cleanly(self, tmp_path, capsys):
        current = self._payload(tmp_path)
        assert main(
            ["bench-compare", str(current),
             "--history", str(tmp_path / "missing.jsonl")]
        ) == 0
        assert "skipped" in capsys.readouterr().out

    def test_unreadable_payload_is_usage_error(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(SystemExit) as exc:
            main(["bench-compare", str(bad)])
        assert exc.value.code == 2
