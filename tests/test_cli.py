"""Tests for the command-line interface (driven through main(argv))."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "wand16" in out


class TestStats:
    def test_builtin(self, capsys):
        assert main(["stats", "c17", "--patterns", "128"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "coverage" in out

    def test_bench_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_bench_file

        path = tmp_path / "circ.bench"
        write_bench_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["stats", "no-such-circuit"])


class TestInsert:
    def test_dp_solver(self, capsys):
        assert main(["insert", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "dp-heuristic" in out

    def test_greedy_solver(self, capsys):
        assert main(
            ["insert", "wand16", "--patterns", "512", "--solver", "greedy"]
        ) == 0
        assert "greedy" in capsys.readouterr().out


class TestCoverage:
    def test_reports_improvement(self, capsys):
        assert main(["coverage", "wand16", "--patterns", "512"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "->" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--only", "t2"]) == 0
        assert "[T2]" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "zz"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_report_sections(self, capsys):
        assert main(["report", "wand16", "--patterns", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Testability report" in out
        assert "Random-pattern-resistant" in out

    def test_verilog_file(self, tmp_path, capsys):
        from repro.circuit import generators, write_verilog_file

        path = tmp_path / "circ.v"
        write_verilog_file(generators.wide_and_cone(4), path)
        assert main(["stats", str(path), "--patterns", "64"]) == 0
