"""Tests for fanout-free-region subproblem extraction and fault ownership."""

import pytest

from repro.circuit import fanout_free_regions, generators, is_fanout_free
from repro.core import (
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    extract_region_subproblem,
    fault_region_owner,
    owner_of_fault,
)
from repro.sim import all_stuck_at_faults


class TestFaultOwnership:
    @pytest.mark.parametrize(
        "make",
        [
            generators.c17,
            lambda: generators.random_dag(10, 60, seed=2),
            lambda: generators.rpr_mixed(cone_width=4, corridor_length=3),
        ],
    )
    def test_every_fault_owned_except_stem_pis(self, make):
        circuit = make()
        regions = fanout_free_regions(circuit)
        owner = fault_region_owner(circuit, regions)
        for fault in all_stuck_at_faults(circuit):
            ridx = owner_of_fault(fault, owner)
            node = circuit.node(fault.node)
            if (
                fault.branch is None
                and node.is_input
                and circuit.fanout_count(fault.node) != 1
            ):
                # Documented orphans: multi-fanout PI stems, and PIs that
                # are directly observed outputs (trivially testable).
                assert ridx is None
            else:
                assert ridx is not None, fault.describe()
                assert 0 <= ridx < len(regions)

    def test_member_faults_owned_by_own_region(self, c17):
        regions = fanout_free_regions(c17)
        owner = fault_region_owner(c17, regions)
        for idx, region in enumerate(regions):
            for m in region.members:
                assert owner[(m, None)] == idx


class TestExtraction:
    def test_tree_is_fanout_free_and_maps_back(self, c17):
        problem = TPIProblem(circuit=c17, threshold=0.01)
        evaluation = evaluate_placement(problem, [])
        regions = fanout_free_regions(c17)
        for region in regions:
            sub = extract_region_subproblem(problem, region, evaluation)
            assert is_fanout_free(sub.circuit)
            assert sub.circuit.outputs == [region.root]
            # Every member appears; every leaf has a probability and a site.
            for m in region.members:
                assert m in sub.circuit
            for leaf in sub.circuit.inputs:
                assert leaf in sub.leaf_probabilities
                node, branch = sub.site_of[leaf]
                assert node in c17
                if branch is not None:
                    sink, pin = branch
                    assert c17.node(sink).fanins[pin] == node

    def test_leaf_probabilities_from_environment(self, c17):
        problem = TPIProblem(circuit=c17, threshold=0.01)
        evaluation = evaluate_placement(problem, [])
        region = next(
            r for r in fanout_free_regions(c17) if r.root == "G22"
        )
        sub = extract_region_subproblem(problem, region, evaluation)
        for leaf in sub.circuit.inputs:
            driver = sub.site_of[leaf][0]
            assert sub.leaf_probabilities[leaf] == pytest.approx(
                evaluation.stem_post[driver]
            )

    def test_root_observability_from_environment(self, c17):
        problem = TPIProblem(circuit=c17, threshold=0.01)
        evaluation = evaluate_placement(problem, [])
        for region in fanout_free_regions(c17):
            sub = extract_region_subproblem(problem, region, evaluation)
            assert sub.root_observability == pytest.approx(
                evaluation.stem_post_obs[region.root]
            )

    def test_branch_leaves_named_per_connection(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.01)
        evaluation = evaluate_placement(problem, [])
        regions = fanout_free_regions(diamond)
        y_region = next(r for r in regions if r.root == "y")
        sub = extract_region_subproblem(problem, y_region, evaluation)
        # p and q both have fanout 1 so they are region members... the
        # stem s is the shared leaf, reached via two distinct branches.
        branch_leaves = [
            leaf for leaf in sub.circuit.inputs if "@" in leaf
        ]
        assert len(branch_leaves) == len(set(branch_leaves))

    def test_map_point_round_trip(self, c17):
        problem = TPIProblem(circuit=c17, threshold=0.01)
        evaluation = evaluate_placement(problem, [])
        region = fanout_free_regions(c17)[0]
        sub = extract_region_subproblem(problem, region, evaluation)
        for leaf in sub.circuit.inputs:
            mapped = sub.map_point(
                TestPoint(leaf, TestPointType.OBSERVATION)
            )
            assert mapped.node in c17
        mapped_root = sub.map_point(
            TestPoint(region.root, TestPointType.CONTROL_OR)
        )
        assert mapped_root.node == region.root
        assert mapped_root.branch is None
