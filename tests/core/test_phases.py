"""Tests for multi-phase fixed-value control points (the extension)."""

import pytest

from repro.circuit import CircuitBuilder, benchmark, generators
from repro.core import (
    PhasePlan,
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_phase,
    evaluate_placement,
    measure_phase_coverage,
    phase_escape_probabilities,
    prepare_for_tpi,
    schedule_phases,
    solve_dp_heuristic,
)
from repro.sim import Fault

OP = TestPointType.OBSERVATION
CPA = TestPointType.CONTROL_AND
CPO = TestPointType.CONTROL_OR
CPR = TestPointType.CONTROL_RANDOM

FIXED_TYPES = (OP, CPA, CPO)


class TestPhasePlan:
    def test_defaults(self):
        plan = PhasePlan()
        assert plan.n_phases == 1
        assert plan.all_points() == []

    def test_all_points_deduplicates(self):
        p1 = TestPoint("a", CPO)
        plan = PhasePlan(
            observation_points=[TestPoint("a", OP)],
            phases=[[], [p1], [p1]],
        )
        assert len(plan.all_points()) == 2

    def test_describe(self):
        plan = PhasePlan(phases=[[], [TestPoint("a", CPA)]])
        text = plan.describe()
        assert "phase 0: (transparent)" in text
        assert "CP-AND @ a" in text


class TestEvaluatePhase:
    def test_phase_zero_is_transparent(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        plan = PhasePlan(
            observation_points=[TestPoint("o1", OP)],
            phases=[[], [TestPoint("o1", CPO)]],
        )
        phase0 = evaluate_phase(problem, plan, 0)
        reference = evaluate_placement(problem, [TestPoint("o1", OP)])
        assert phase0.stem_post == pytest.approx(reference.stem_post)
        assert phase0.wire_obs == pytest.approx(reference.wire_obs)

    def test_enabled_or_point_forces_one(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        plan = PhasePlan(phases=[[], [TestPoint("o1", CPO)]])
        phase1 = evaluate_phase(problem, plan, 1)
        assert phase1.stem_post["o1"] == 1.0
        # Fixed value blocks upstream propagation entirely.
        assert phase1.wire_obs["o1"] == 0.0

    def test_enabled_and_point_forces_zero(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        plan = PhasePlan(phases=[[], [TestPoint("o1", CPA)]])
        phase1 = evaluate_phase(problem, plan, 1)
        assert phase1.stem_post["o1"] == 0.0

    def test_random_redrives_active_in_every_phase(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        plan = PhasePlan(
            phases=[[], []],
            unscheduled=[TestPoint("o1", CPR)],
        )
        for k in (0, 1):
            ev = evaluate_phase(problem, plan, k)
            assert ev.stem_post["o1"] == 0.5
            assert ev.wire_obs["o1"] == 0.0

    def test_index_validation(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        with pytest.raises(IndexError):
            evaluate_phase(problem, PhasePlan(), 5)


class TestEscapeProbabilities:
    def test_multiplies_across_phases(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.01)
        out = wand8.outputs[0]
        plan = PhasePlan(phases=[[]])  # single transparent phase
        escapes = phase_escape_probabilities(problem, plan, 256)
        fault = Fault(out, 0)
        # d = 2^-8 per pattern, 256 patterns.
        assert escapes[fault] == pytest.approx((1 - 1 / 256) ** 256, rel=1e-9)

    def test_fixed_phase_rescues_hard_fault(self, wand8):
        """Enabling OR-type points on the mid-tree nodes in phase 1 makes
        the AND cone's excitation easy there."""
        problem = TPIProblem(circuit=wand8, threshold=0.01)
        out = wand8.outputs[0]
        base = phase_escape_probabilities(
            problem, PhasePlan(phases=[[]]), 512
        )
        plan = PhasePlan(
            phases=[[], [TestPoint("a1_0", CPO), TestPoint("a1_1", CPO)]],
        )
        phased = phase_escape_probabilities(problem, plan, 512)
        fault = Fault(out, 0)
        assert phased[fault] < base[fault]


class TestScheduler:
    def test_every_control_scheduled_exactly_once(self):
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=2048, allowed_types=FIXED_TYPES
        )
        solution = solve_dp_heuristic(problem)
        plan = schedule_phases(problem, solution.points, n_patterns=2048)
        scheduled = [p for phase in plan.phases for p in phase]
        controls = [p for p in solution.points if p.kind.is_control]
        assert sorted(scheduled) == sorted(controls)
        assert plan.phases[0] == []  # transparent phase preserved

    def test_ops_always_on(self):
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=2048, allowed_types=FIXED_TYPES
        )
        solution = solve_dp_heuristic(problem)
        plan = schedule_phases(problem, solution.points, n_patterns=2048)
        assert sorted(plan.observation_points) == sorted(
            solution.observation_points()
        )

    def test_conflicting_points_separated(self):
        """An OR-point on each AND input of the same gate: enabling both
        in one phase would fix the output at 1 and kill the output s-a-1
        excitation... scheduling keeps coverage; at minimum the plan stays
        within the phase cap and covers the faults analytically."""
        b = CircuitBuilder("conflict")
        x = b.inputs(*[f"x{i}" for i in range(6)])
        left = b.and_(b.and_(x[0], x[1]), b.and_(x[2], x[3]), name="left")
        y = b.and_(left, b.and_(x[4], x[5]), name="y")
        b.output(y)
        circuit = b.build()
        problem = TPIProblem(
            circuit=circuit, threshold=0.05, allowed_types=FIXED_TYPES
        )
        points = [
            TestPoint("left", CPO),
            TestPoint("y", OP),
            TestPoint("left", OP),
        ]
        plan = schedule_phases(problem, points, n_patterns=1024)
        escapes = phase_escape_probabilities(problem, plan, 1024)
        hard = [f for f, e in escapes.items() if e > 0.05]
        assert len(hard) <= 4  # the plan keeps nearly everything testable


class TestMeasuredPhaseCoverage:
    def test_full_pipeline_reaches_high_coverage(self):
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=4096, allowed_types=FIXED_TYPES
        )
        solution = solve_dp_heuristic(problem)
        plan = schedule_phases(problem, solution.points, n_patterns=4096)
        coverage = measure_phase_coverage(problem, plan, 4096)
        assert coverage > 0.97

    def test_phased_beats_unmodified(self):
        circuit = benchmark("wand16")
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=2048, allowed_types=FIXED_TYPES
        )
        solution = solve_dp_heuristic(problem)
        plan = schedule_phases(problem, solution.points, n_patterns=2048)
        phased = measure_phase_coverage(problem, plan, 2048)
        from repro.core import measure_coverage

        baseline = measure_coverage(circuit, 2048).coverage()
        assert phased > baseline
