"""Tests for the executable NP-completeness (SAT ↪ testability) reduction."""

import pytest

from repro.core import (
    brute_force_sat,
    cnf_to_circuit,
    is_satisfiable_via_testability,
    output_excitation_fault,
    random_cnf,
)
from repro.circuit import has_reconvergent_fanout


class TestCnfCircuit:
    def test_structure(self):
        cnf = [[1, -2, 3], [-1, 2, 3]]
        circuit = cnf_to_circuit(cnf)
        assert set(circuit.inputs) == {"x1", "x2", "x3"}
        assert circuit.outputs == ["sat"]
        circuit.validate()

    def test_reconvergence_present(self):
        """The reduction's hardness comes from reconvergent variable stems."""
        cnf = [[1, 2, 3], [-1, 2, 3], [1, -2, -3]]
        assert has_reconvergent_fanout(cnf_to_circuit(cnf))

    def test_single_literal_clause(self):
        circuit = cnf_to_circuit([[1]])
        circuit.validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            cnf_to_circuit([])
        with pytest.raises(ValueError):
            cnf_to_circuit([[]])
        with pytest.raises(ValueError):
            cnf_to_circuit([[0]])

    def test_output_fault(self):
        fault = output_excitation_fault(cnf_to_circuit([[1, 2]]))
        assert fault.node == "sat" and fault.value == 0


class TestBruteForceSat:
    def test_satisfiable(self):
        assignment = brute_force_sat([[1, 2], [-1, 2]])
        assert assignment is not None
        assert assignment[1] is True  # x2 must be true... check clause sat

    def test_unsatisfiable(self):
        # x1 AND NOT x1.
        assert brute_force_sat([[1], [-1]]) is None

    def test_assignment_actually_satisfies(self):
        cnf = random_cnf(5, 8, seed=1)
        assignment = brute_force_sat(cnf)
        if assignment is not None:
            for clause in cnf:
                assert any(
                    assignment[abs(l) - 1] == (l > 0) for l in clause
                )


class TestReduction:
    """SAT decided through the fault simulator == SAT decided by search."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_random(self, seed):
        # Near the 3-SAT phase transition to get a mix of SAT/UNSAT.
        cnf = random_cnf(6, 26, seed=seed)
        assert is_satisfiable_via_testability(cnf) == (
            brute_force_sat(cnf) is not None
        )

    def test_unsat_instance(self):
        cnf = [[1], [-1]]
        assert not is_satisfiable_via_testability(cnf)

    def test_sat_instance(self):
        cnf = [[1, 2, 3]]
        assert is_satisfiable_via_testability(cnf)

    def test_size_guard(self):
        cnf = [[i + 1, i + 2, i + 3] for i in range(25)]
        with pytest.raises(ValueError, match="20 variables"):
            is_satisfiable_via_testability(cnf)


class TestRandomCnf:
    def test_shape_and_determinism(self):
        cnf = random_cnf(8, 10, seed=3)
        assert len(cnf) == 10
        assert all(len(c) == 3 for c in cnf)
        assert all(len({abs(l) for l in c}) == 3 for c in cnf)
        assert cnf == random_cnf(8, 10, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_cnf(2, 5)
