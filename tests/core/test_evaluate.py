"""Tests for the end-to-end measured-coverage pipeline."""

import pytest

from repro.circuit import generators
from repro.core import (
    TestPoint,
    TestPointType,
    TPIProblem,
    TPISolution,
    evaluate_solution,
    measure_coverage,
    solve_dp_heuristic,
    solve_tree,
)
from repro.sim import UniformRandomSource, collapse_faults


def empty_solution(problem):
    return TPISolution(points=[], cost=0.0, feasible=False, method="none")


class TestMeasureCoverage:
    def test_full_coverage_easy_circuit(self, c17):
        result = measure_coverage(c17, 512)
        assert result.coverage() == 1.0

    def test_poor_coverage_rpr_circuit(self):
        circuit = generators.wide_and_cone(16)
        result = measure_coverage(circuit, 1024)
        assert result.coverage() < 0.5


class TestEvaluateSolution:
    def test_empty_solution_is_identity(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        report = evaluate_solution(problem, empty_solution(problem), 256)
        assert report.modified_coverage == pytest.approx(
            report.baseline_coverage
        )
        assert report.n_control == 0 and report.n_observation == 0

    def test_dp_solution_lifts_coverage(self):
        circuit = generators.wide_and_cone(16)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_tree(problem, margin=1.5)
        report = evaluate_solution(problem, solution, 4096)
        assert report.baseline_coverage < 0.5
        assert report.modified_coverage > 0.95
        assert report.coverage_gain > 0.4

    def test_heuristic_on_reconvergent_circuit(self):
        circuit = generators.rpr_mixed(cone_width=8, corridor_length=6)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_dp_heuristic(problem)
        report = evaluate_solution(problem, solution, 4096)
        assert report.modified_coverage > report.baseline_coverage
        assert report.modified_coverage > 0.98

    def test_curves_well_formed(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=512)
        solution = solve_tree(problem, margin=1.5)
        report = evaluate_solution(problem, solution, 512)
        assert report.baseline_curve[-1][0] == 512
        assert report.modified_curve[-1][1] == pytest.approx(
            report.modified_coverage
        )
        mod_values = [c for _n, c in report.modified_curve]
        assert mod_values == sorted(mod_values)

    def test_row_formatting(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        report = evaluate_solution(problem, empty_solution(problem), 256)
        row = report.row()
        assert circuit.name in row

    def test_same_source_family_drives_both(self):
        """Reports are deterministic for a fixed source."""
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        solution = solve_tree(problem, margin=1.5)
        src = UniformRandomSource(seed=11)
        r1 = evaluate_solution(problem, solution, 256, source=src)
        r2 = evaluate_solution(problem, solution, 256, source=src)
        assert r1.modified_coverage == r2.modified_coverage
        assert r1.baseline_coverage == r2.baseline_coverage

    def test_random_redrive_orphan_counts_undetected(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.001)
        solution = TPISolution(
            points=[
                TestPoint("s", TestPointType.CONTROL_RANDOM, branch=("q", 0))
            ],
            cost=1.0,
            feasible=False,
            method="manual",
        )
        report = evaluate_solution(problem, solution, 256)
        # The orphaned branch fault cannot be detected any more, so the
        # modified coverage may drop below baseline — the accounting must
        # reflect that honestly rather than silently dropping the fault.
        assert report.n_faults == len(collapse_faults(diamond).representatives)
