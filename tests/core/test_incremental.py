"""Property tests: the incremental evaluator is bit-identical to
``evaluate_placement``, and the solvers built on it return unchanged
solutions.

``evaluate_placement`` stays the single ground-truth arbiter; these tests
pin the incremental fast path to it with *exact* float equality — any
reformulation of the COP recurrences that changes results in the last ulp
fails here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import generators
from repro.circuit.library import benchmark
from repro.core import (
    IncrementalEvaluator,
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    prepare_for_tpi,
    solve_greedy,
)
from repro.sim import all_stuck_at_faults

OP = TestPointType.OBSERVATION
CONTROLS = [
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
    TestPointType.CONTROL_RANDOM,
]

_EVAL_FIELDS = (
    "stem_pre",
    "stem_post",
    "wire_obs",
    "branch_pre",
    "branch_post",
    "branch_obs",
    "stem_post_obs",
)


def _random_placement(circuit, rng_draw, max_points=4):
    """Draw a valid placement: at most one control point per stem."""
    names = list(circuit.node_names)
    n_points = rng_draw(st.integers(0, max_points))
    points = []
    controlled = set()
    for _ in range(n_points):
        node = rng_draw(st.sampled_from(names))
        if rng_draw(st.booleans()):
            points.append(TestPoint(node, OP))
        elif node not in controlled:
            controlled.add(node)
            points.append(TestPoint(node, rng_draw(st.sampled_from(CONTROLS))))
    return points


def _assert_identical(incremental_eval, reference_eval):
    for field in _EVAL_FIELDS:
        assert getattr(incremental_eval, field) == getattr(
            reference_eval, field
        ), f"{field} diverged"


class TestEvaluateEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 500))
    def test_random_dag_random_placements(self, data, seed):
        circuit = generators.random_dag(4, 18, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        base = _random_placement(circuit, data.draw)
        target = _random_placement(circuit, data.draw)
        inc = IncrementalEvaluator(problem, base_points=base)
        _assert_identical(
            inc.evaluate(target), evaluate_placement(problem, target)
        )

    def test_same_placement_short_circuit(self):
        circuit = generators.random_dag(4, 15, seed=1)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        pts = [TestPoint(circuit.outputs[0], OP)]
        inc = IncrementalEvaluator(problem, base_points=pts)
        _assert_identical(
            inc.evaluate(pts), evaluate_placement(problem, pts)
        )

    def test_removing_points_from_base(self):
        # The dirty region also covers sites present only in the base.
        circuit = generators.random_tree(30, seed=2)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        names = list(circuit.node_names)
        base = [
            TestPoint(names[1], TestPointType.CONTROL_AND),
            TestPoint(names[3], OP),
        ]
        inc = IncrementalEvaluator(problem, base_points=base)
        _assert_identical(inc.evaluate([]), evaluate_placement(problem, []))

    def test_rebase_moves_the_cache(self):
        circuit = generators.random_dag(4, 20, seed=3)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        inc = IncrementalEvaluator(problem)
        pts = [TestPoint(circuit.outputs[0], OP)]
        inc.rebase(pts)
        _assert_identical(inc.base, evaluate_placement(problem, pts))
        other = [TestPoint(circuit.inputs[0], TestPointType.CONTROL_OR)]
        _assert_identical(
            inc.evaluate(other), evaluate_placement(problem, other)
        )


class TestCandidateGain:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 300))
    def test_gain_equals_recompute(self, data, seed):
        circuit = generators.random_dag(4, 16, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        faults = all_stuck_at_faults(circuit)
        base = _random_placement(circuit, data.draw, max_points=2)
        inc = IncrementalEvaluator(problem, base_points=base, faults=faults)
        node = data.draw(st.sampled_from(list(circuit.node_names)))
        if data.draw(st.booleans()):
            candidate = TestPoint(node, OP)
        else:
            candidate = TestPoint(node, data.draw(st.sampled_from(CONTROLS)))
        controlled = {
            p.node for p in base if p.kind.is_control and p.branch is None
        }
        if candidate.kind.is_control and candidate.node in controlled:
            return  # invalid candidate (double control) — not scored

        theta = problem.threshold - 1e-12

        def n_failing(points):
            ev = evaluate_placement(problem, points)
            return sum(1 for f in faults if ev.fault_detection(f) < theta)

        expected = n_failing(base) - n_failing(base + [candidate])
        assert inc.candidate_gain(candidate) == expected

    def test_commit_extends_base(self):
        circuit = generators.random_tree(25, seed=4)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        inc = IncrementalEvaluator(problem)
        point = TestPoint(circuit.outputs[0], OP)
        inc.commit(point)
        assert point in inc.base_points
        _assert_identical(inc.base, evaluate_placement(problem, [point]))


class TestSolverEquivalence:
    def test_greedy_identical_with_and_without_incremental(self):
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=4096, escape_budget=0.001
        )
        fast = solve_greedy(problem, use_incremental=True)
        slow = solve_greedy(problem, use_incremental=False)
        assert fast.points == slow.points
        assert fast.cost == slow.cost
        assert fast.feasible == slow.feasible

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_greedy_identical_on_random_trees(self, seed):
        circuit = generators.random_tree(40, seed=seed)
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=1024, escape_budget=0.01
        )
        fast = solve_greedy(problem, use_incremental=True)
        slow = solve_greedy(problem, use_incremental=False)
        assert fast.points == slow.points
        assert fast.cost == slow.cost
        assert fast.feasible == slow.feasible
