"""Property tests: the incremental evaluator is bit-identical to
``evaluate_placement``, and the solvers built on it return unchanged
solutions.

``evaluate_placement`` stays the single ground-truth arbiter; these tests
pin the incremental fast path to it with *exact* float equality — any
reformulation of the COP recurrences that changes results in the last ulp
fails here.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import generators
from repro.circuit.library import benchmark
from repro.core import (
    IncrementalEvaluator,
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    prepare_for_tpi,
    solve_greedy,
)
from repro.sim import all_stuck_at_faults

OP = TestPointType.OBSERVATION
CONTROLS = [
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
    TestPointType.CONTROL_RANDOM,
]

_EVAL_FIELDS = (
    "stem_pre",
    "stem_post",
    "wire_obs",
    "branch_pre",
    "branch_post",
    "branch_obs",
    "stem_post_obs",
)


def _random_placement(circuit, rng_draw, max_points=4):
    """Draw a valid placement: at most one control point per stem."""
    names = list(circuit.node_names)
    n_points = rng_draw(st.integers(0, max_points))
    points = []
    controlled = set()
    for _ in range(n_points):
        node = rng_draw(st.sampled_from(names))
        if rng_draw(st.booleans()):
            points.append(TestPoint(node, OP))
        elif node not in controlled:
            controlled.add(node)
            points.append(TestPoint(node, rng_draw(st.sampled_from(CONTROLS))))
    return points


def _assert_identical(incremental_eval, reference_eval):
    for field in _EVAL_FIELDS:
        assert getattr(incremental_eval, field) == getattr(
            reference_eval, field
        ), f"{field} diverged"


class TestEvaluateEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 500))
    def test_random_dag_random_placements(self, data, seed):
        circuit = generators.random_dag(4, 18, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        base = _random_placement(circuit, data.draw)
        target = _random_placement(circuit, data.draw)
        inc = IncrementalEvaluator(problem, base_points=base)
        _assert_identical(
            inc.evaluate(target), evaluate_placement(problem, target)
        )

    def test_same_placement_short_circuit(self):
        circuit = generators.random_dag(4, 15, seed=1)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        pts = [TestPoint(circuit.outputs[0], OP)]
        inc = IncrementalEvaluator(problem, base_points=pts)
        _assert_identical(
            inc.evaluate(pts), evaluate_placement(problem, pts)
        )

    def test_removing_points_from_base(self):
        # The dirty region also covers sites present only in the base.
        circuit = generators.random_tree(30, seed=2)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        names = list(circuit.node_names)
        base = [
            TestPoint(names[1], TestPointType.CONTROL_AND),
            TestPoint(names[3], OP),
        ]
        inc = IncrementalEvaluator(problem, base_points=base)
        _assert_identical(inc.evaluate([]), evaluate_placement(problem, []))

    def test_rebase_moves_the_cache(self):
        circuit = generators.random_dag(4, 20, seed=3)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        inc = IncrementalEvaluator(problem)
        pts = [TestPoint(circuit.outputs[0], OP)]
        inc.rebase(pts)
        _assert_identical(inc.base, evaluate_placement(problem, pts))
        other = [TestPoint(circuit.inputs[0], TestPointType.CONTROL_OR)]
        _assert_identical(
            inc.evaluate(other), evaluate_placement(problem, other)
        )


class TestCandidateGain:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 300))
    def test_gain_equals_recompute(self, data, seed):
        circuit = generators.random_dag(4, 16, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        faults = all_stuck_at_faults(circuit)
        base = _random_placement(circuit, data.draw, max_points=2)
        inc = IncrementalEvaluator(problem, base_points=base, faults=faults)
        node = data.draw(st.sampled_from(list(circuit.node_names)))
        if data.draw(st.booleans()):
            candidate = TestPoint(node, OP)
        else:
            candidate = TestPoint(node, data.draw(st.sampled_from(CONTROLS)))
        controlled = {
            p.node for p in base if p.kind.is_control and p.branch is None
        }
        if candidate.kind.is_control and candidate.node in controlled:
            return  # invalid candidate (double control) — not scored

        theta = problem.threshold - 1e-12

        def n_failing(points):
            ev = evaluate_placement(problem, points)
            return sum(1 for f in faults if ev.fault_detection(f) < theta)

        expected = n_failing(base) - n_failing(base + [candidate])
        assert inc.candidate_gain(candidate) == expected

    def test_commit_extends_base(self):
        circuit = generators.random_tree(25, seed=4)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        inc = IncrementalEvaluator(problem)
        point = TestPoint(circuit.outputs[0], OP)
        inc.commit(point)
        assert point in inc.base_points
        _assert_identical(inc.base, evaluate_placement(problem, [point]))


@contextmanager
def _forced_numpy_delta():
    """Pin the vectorized delta engine on regardless of circuit shape.

    The adaptive dispatch declines tiny/narrow circuits for performance;
    equivalence must hold on them regardless, so these tests force the
    engine via its environment override.
    """
    pytest.importorskip("numpy")
    prior = os.environ.get("REPRO_NP_DELTA_MIN_WIDTH")
    os.environ["REPRO_NP_DELTA_MIN_WIDTH"] = "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_NP_DELTA_MIN_WIDTH"]
        else:
            os.environ["REPRO_NP_DELTA_MIN_WIDTH"] = prior


def _random_branch_placement(circuit, rng_draw, max_points=4):
    """Like :func:`_random_placement` but also draws branch sites."""
    names = list(circuit.node_names)
    n_points = rng_draw(st.integers(0, max_points))
    points = []
    controlled = set()
    for _ in range(n_points):
        node = rng_draw(st.sampled_from(names))
        branch = None
        fanouts = circuit.fanouts(node)
        if fanouts and rng_draw(st.booleans()):
            branch = rng_draw(st.sampled_from(fanouts))
        site = (node, branch)
        if rng_draw(st.booleans()):
            points.append(TestPoint(node, OP, branch=branch))
        elif site not in controlled:
            controlled.add(site)
            points.append(
                TestPoint(
                    node, rng_draw(st.sampled_from(CONTROLS)), branch=branch
                )
            )
    return points


class TestNumpyDeltaEquivalence:
    """The vectorized delta engine against both interpreted arbiters."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 500))
    def test_numpy_deltas_match_interp_and_recompute(self, data, seed):
        with _forced_numpy_delta():
            circuit = generators.random_dag(4, 24, seed=seed)
            problem = TPIProblem(circuit=circuit, threshold=0.05)
            base = _random_branch_placement(circuit, data.draw)
            target = _random_branch_placement(circuit, data.draw)
            inc_np = IncrementalEvaluator(
                problem, base_points=base, kernel="numpy"
            )
            assert inc_np._np_delta is not None  # the forced engine is live
            inc_it = IncrementalEvaluator(
                problem, base_points=base, kernel="interp"
            )
            ref = evaluate_placement(problem, target, kernel="interp")
            _assert_identical(inc_np.evaluate(target), ref)
            _assert_identical(inc_it.evaluate(target), ref)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 200))
    def test_commit_sequences_track_exactly(self, data, seed):
        with _forced_numpy_delta():
            circuit = generators.random_dag(4, 20, seed=seed)
            problem = TPIProblem(circuit=circuit, threshold=0.05)
            faults = all_stuck_at_faults(circuit)
            base = _random_branch_placement(circuit, data.draw, max_points=2)
            inc_np = IncrementalEvaluator(
                problem, base_points=base, faults=faults, kernel="numpy"
            )
            inc_it = IncrementalEvaluator(
                problem, base_points=base, faults=faults, kernel="interp"
            )
            for cand in _random_branch_placement(
                circuit, data.draw, max_points=3
            ):
                try:
                    gain_np = inc_np.candidate_gain(cand)
                    gain_it = inc_it.candidate_gain(cand)
                except ValueError:
                    continue  # invalid site combination — not scored
                assert gain_np == gain_it, cand
                inc_np.commit(cand)
                inc_it.commit(cand)
                ref = evaluate_placement(
                    problem, inc_np.base_points, kernel="interp"
                )
                _assert_identical(inc_np.base, ref)

    def test_narrow_plans_decline_the_engine_by_default(self):
        pytest.importorskip("numpy")
        from repro.sim.backend import get_backend

        # A deep chain has mean level width ~1 — far below the cutoff.
        circuit = generators.random_tree(40, seed=1)
        assert get_backend("numpy").placement_delta_engine(circuit) is None
        with _forced_numpy_delta():
            assert (
                get_backend("numpy").placement_delta_engine(circuit)
                is not None
            )


class TestSolverEquivalence:
    def test_greedy_identical_with_and_without_incremental(self):
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=4096, escape_budget=0.001
        )
        fast = solve_greedy(problem, use_incremental=True)
        slow = solve_greedy(problem, use_incremental=False)
        assert fast.points == slow.points
        assert fast.cost == slow.cost
        assert fast.feasible == slow.feasible

    def test_greedy_identical_across_kernels(self):
        pytest.importorskip("numpy")
        # Wide levels put the numpy solve on the vectorized delta engine
        # (no env override) — the chosen points must not move.
        from repro.sim.backend import get_backend

        circuit = generators.random_dag(32, 1000, seed=5, fanin_span=250)
        assert get_backend("numpy").placement_delta_engine(circuit) is not None
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=1024, escape_budget=0.01
        )
        interp = solve_greedy(problem, kernel="interp", max_iterations=4)
        vec = solve_greedy(problem, kernel="numpy", max_iterations=4)
        assert vec.points == interp.points
        assert vec.cost == interp.cost
        assert vec.feasible == interp.feasible

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_greedy_identical_on_random_trees(self, seed):
        circuit = generators.random_tree(40, seed=seed)
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=1024, escape_budget=0.01
        )
        fast = solve_greedy(problem, use_incremental=True)
        slow = solve_greedy(problem, use_incremental=False)
        assert fast.points == slow.points
        assert fast.cost == slow.cost
        assert fast.feasible == slow.feasible
