"""Tests for netlist preparation (factorize + sweep)."""

from repro.circuit import CircuitBuilder, generators
from repro.core import prepare_for_tpi
from repro.sim import LogicSimulator, UniformRandomSource


class TestPrepare:
    def test_factorizes_wide_gates(self):
        circuit = generators.equality_comparator(12)
        prepared = prepare_for_tpi(circuit)
        assert all(len(g.fanins) <= 2 for g in prepared.gates)

    def test_sweeps_dead_logic(self):
        b = CircuitBuilder("t")
        a, c, d = b.inputs("a", "b", "c")
        y = b.and_(a, c, name="y")
        b.not_(d, name="dead")
        b.output(y)
        prepared = prepare_for_tpi(b.build(validate=False))
        assert "dead" not in prepared
        # PIs are always retained; the unused one simply floats.
        assert prepared.floating_nodes() == ["c"]
        assert all(
            prepared.node(n).is_input for n in prepared.floating_nodes()
        )

    def test_function_preserved(self):
        circuit = generators.equality_comparator(9)
        prepared = prepare_for_tpi(circuit)
        n = 256
        stim = UniformRandomSource(seed=5).generate(circuit.inputs, n)
        v1 = LogicSimulator(circuit).run(stim, n)
        v2 = LogicSimulator(prepared).run(stim, n)
        for po in circuit.outputs:
            assert v1[po] == v2[po]

    def test_idempotent_on_clean_circuits(self, c17):
        prepared = prepare_for_tpi(c17)
        assert prepared.stats() == c17.stats()
