"""Tests for the dynamic program — feasibility, optimality, API contracts."""

import pytest

from repro.circuit import CircuitBuilder, GateType, generators
from repro.core import (
    DPSolver,
    ProbabilityGrid,
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    quantized_tree_check,
    solve_exhaustive,
    solve_tree,
)

OP = TestPointType.OBSERVATION


class TestInputValidation:
    def test_rejects_fanout(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.01)
        with pytest.raises(ValueError, match="fanout-free"):
            solve_tree(problem)

    def test_rejects_wide_gates(self):
        b = CircuitBuilder("t")
        ins = b.inputs("a", "b", "c")
        b.output(b.and_(*ins, name="y"))
        problem = TPIProblem(circuit=b.build(), threshold=0.01)
        with pytest.raises(ValueError, match="factorize"):
            solve_tree(problem)

    def test_rejects_dead_logic(self):
        b = CircuitBuilder("t")
        a, c, d = b.inputs("a", "b", "c")
        y = b.and_(a, c, name="y")
        b.not_(d, name="dead")
        b.output(y)
        problem = TPIProblem(circuit=b.build(validate=False), threshold=0.01)
        with pytest.raises(ValueError, match="dead logic"):
            solve_tree(problem)

    def test_rejects_bad_margin(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.01)
        with pytest.raises(ValueError, match="margin"):
            DPSolver(problem, margin=0.5)


class TestEasyCases:
    def test_already_feasible_needs_nothing(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.1)
        solution = solve_tree(problem)
        assert solution.feasible
        assert solution.points == []
        assert solution.cost == 0.0

    def test_parity_tree_needs_nothing(self):
        circuit = generators.parity_tree(16)
        problem = TPIProblem(circuit=circuit, threshold=0.2)
        solution = solve_tree(problem)
        assert solution.feasible and solution.cost == 0.0

    def test_infeasible_threshold_reported(self, and2):
        # θ > 0.5 is impossible: p and 1 - p cannot both reach it.
        problem = TPIProblem(circuit=and2, threshold=0.6)
        solution = solve_tree(problem)
        assert not solution.feasible
        assert solution.cost == float("inf")


class TestSolutionQuality:
    @pytest.mark.parametrize(("width", "n_patterns"), [(8, 256), (16, 4096)])
    def test_wide_and_fixed(self, width, n_patterns):
        circuit = generators.wide_and_cone(width)
        problem = TPIProblem.from_test_length(circuit, n_patterns=n_patterns)
        solution = solve_tree(problem, margin=1.5)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()
        assert 0 < len(solution.points) <= 8

    def test_corridor_fixed(self):
        circuit = generators.rpr_corridor(10)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_tree(problem, margin=1.5)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_quantized_feasible(self, seed):
        """DP output must satisfy its own quantized algebra exactly."""
        circuit = generators.random_tree(15, seed=seed)
        problem = TPIProblem(circuit=circuit, threshold=0.02)
        grid = ProbabilityGrid.for_threshold(0.02)
        solution = solve_tree(problem, grid=grid)
        assert solution.feasible
        assert quantized_tree_check(problem, solution.points, grid=grid)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_continuous_with_margin(self, seed):
        circuit = generators.random_tree(25, seed=seed)
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        solution = solve_tree(problem, margin=2.0)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()


class TestOptimality:
    """The headline claim: DP cost == exhaustive optimum (same algebra)."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("theta", [0.02, 0.08])
    def test_matches_exhaustive(self, seed, theta):
        circuit = generators.random_tree(5, seed=seed, include_inverters=False)
        problem = TPIProblem(circuit=circuit, threshold=theta)
        grid = ProbabilityGrid.for_threshold(theta)
        dp = solve_tree(problem, grid=grid)

        def check(points):
            return quantized_tree_check(problem, points, grid=grid)

        exhaustive = solve_exhaustive(problem, feasibility=check, max_subset_size=4)
        assert dp.feasible == exhaustive.feasible
        if dp.feasible:
            assert dp.cost == pytest.approx(exhaustive.cost)
            # And the DP's own points pass the same checker.
            assert check(dp.points)

    def test_restricted_types_still_optimal(self):
        circuit = generators.wide_and_cone(4)
        problem = TPIProblem(
            circuit=circuit,
            threshold=0.05,
            allowed_types=(TestPointType.OBSERVATION, TestPointType.CONTROL_OR),
        )
        grid = ProbabilityGrid.for_threshold(0.05)
        dp = solve_tree(problem, grid=grid)
        assert all(
            p.kind in (TestPointType.OBSERVATION, TestPointType.CONTROL_OR)
            for p in dp.points
        )

        def check(points):
            return quantized_tree_check(problem, points, grid=grid)

        exhaustive = solve_exhaustive(problem, feasibility=check, max_subset_size=4)
        assert dp.cost == pytest.approx(exhaustive.cost)


class TestEnvironmentParameters:
    def test_root_observability_forces_insertion(self):
        """A badly observed root makes the DP add an observation point."""
        circuit = generators.parity_tree(4)
        problem = TPIProblem(circuit=circuit, threshold=0.1)
        free = solve_tree(problem)
        assert free.cost == 0.0
        # Same tree, but the root is almost unobservable from outside and
        # the circuit's own output status removed via a fresh wrapper name.
        b = CircuitBuilder("wrapped")
        x0, x1 = b.inputs("x0", "x1")
        y = b.xor(x0, x1, name="y")
        b.output(y)
        wrapped = b.build()
        p2 = TPIProblem(circuit=wrapped, threshold=0.1)
        # Override: pretend y is observed with probability 0.05 only.
        solver = DPSolver(p2, root_observabilities={"y": 0.05})
        # y is a true PO here so the override is ignored (obs forced to 1).
        assert solver.solve().cost == 0.0

    def test_leaf_probabilities_respected(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.and_(a, c, name="y"))
        circuit = b.build()
        problem = TPIProblem(circuit=circuit, threshold=0.15)
        # With skewed leaves the AND output p = 0.01 → s-a-0 fails → CPs needed.
        skewed = solve_tree(
            problem, leaf_probabilities={"a": 0.1, "b": 0.1}
        )
        fair = solve_tree(problem)
        assert fair.cost == 0.0
        assert skewed.cost > 0.0

    def test_enforced_faults_override(self):
        b = CircuitBuilder("t")
        ins = b.inputs(*[f"x{i}" for i in range(4)])
        l1 = b.and_(ins[0], ins[1])
        l2 = b.and_(ins[2], ins[3])
        b.output(b.and_(l1, l2, name="y"))
        circuit = b.build()
        problem = TPIProblem(circuit=circuit, threshold=0.07)
        constrained = solve_tree(problem)
        relaxed = solve_tree(
            problem,
            enforced_faults={n: (False, False) for n in circuit.node_names},
        )
        assert relaxed.cost == 0.0
        assert constrained.cost > relaxed.cost


class TestSolutionShape:
    def test_stats_populated(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        solution = solve_tree(problem)
        assert solution.method == "dp"
        assert solution.stats["tables"] > 0
        assert solution.stats["table_cells"] > 0

    def test_points_reference_real_nodes(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        solution = solve_tree(problem)
        for point in solution.points:
            assert point.node in wand8
            assert point.branch is None  # trees: stem placements only


class TestQuantizedTreeCheck:
    def test_empty_placement_on_easy_tree(self):
        circuit = generators.parity_tree(4)
        problem = TPIProblem(circuit=circuit, threshold=0.2)
        assert quantized_tree_check(problem, [])

    def test_detects_infeasible(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        assert not quantized_tree_check(problem, [])

    def test_rejects_branch_points(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        with pytest.raises(ValueError, match="stem-only"):
            quantized_tree_check(
                problem, [TestPoint("x0", OP, branch=("a0_0", 0))]
            )

    def test_rejects_double_control(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        with pytest.raises(ValueError, match="multiple control"):
            quantized_tree_check(
                problem,
                [
                    TestPoint("x0", TestPointType.CONTROL_AND),
                    TestPoint("x0", TestPointType.CONTROL_OR),
                ],
            )
