"""Unit tests for the TPI problem formalization."""

import pytest

from repro.core import (
    CONTROL_TYPES,
    TestPoint,
    TestPointCosts,
    TestPointType,
    TPIProblem,
    TPISolution,
    control_observability_factor,
    control_probability_transform,
)
from repro.testability import required_threshold


class TestTestPointType:
    def test_is_control(self):
        assert not TestPointType.OBSERVATION.is_control
        for t in CONTROL_TYPES:
            assert t.is_control

    def test_probability_transforms(self):
        assert control_probability_transform(
            TestPointType.CONTROL_AND, 0.8
        ) == pytest.approx(0.4)
        assert control_probability_transform(
            TestPointType.CONTROL_OR, 0.8
        ) == pytest.approx(0.9)
        assert control_probability_transform(
            TestPointType.CONTROL_RANDOM, 0.99
        ) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            control_probability_transform(TestPointType.OBSERVATION, 0.5)

    def test_observability_factors(self):
        assert control_observability_factor(TestPointType.CONTROL_AND) == 0.5
        assert control_observability_factor(TestPointType.CONTROL_OR) == 0.5
        assert control_observability_factor(TestPointType.CONTROL_RANDOM) == 0.0
        with pytest.raises(ValueError):
            control_observability_factor(TestPointType.OBSERVATION)


class TestTestPoint:
    def test_ordering_deterministic(self):
        pts = [
            TestPoint("b", TestPointType.OBSERVATION),
            TestPoint("a", TestPointType.CONTROL_OR),
            TestPoint("a", TestPointType.CONTROL_AND),
        ]
        assert [p.node for p in sorted(pts)] == ["a", "a", "b"]

    def test_describe(self):
        assert TestPoint("n", TestPointType.OBSERVATION).describe() == "OP @ n"
        assert (
            TestPoint("n", TestPointType.CONTROL_AND, branch=("g", 2)).describe()
            == "CP-AND @ n->g.2"
        )


class TestCosts:
    def test_defaults(self):
        costs = TestPointCosts()
        assert costs.of(TestPointType.OBSERVATION) == 0.5
        assert costs.of(TestPointType.CONTROL_RANDOM) == 1.0

    def test_total(self):
        costs = TestPointCosts()
        pts = [
            TestPoint("a", TestPointType.OBSERVATION),
            TestPoint("b", TestPointType.CONTROL_AND),
        ]
        assert costs.total(pts) == pytest.approx(1.5)

    def test_custom(self):
        costs = TestPointCosts(observation=2.0)
        assert costs.of(TestPointType.OBSERVATION) == 2.0


class TestProblem:
    def test_threshold_validation(self, and2):
        with pytest.raises(ValueError):
            TPIProblem(circuit=and2, threshold=0.0)
        with pytest.raises(ValueError):
            TPIProblem(circuit=and2, threshold=1.5)

    def test_allowed_types_required(self, and2):
        with pytest.raises(ValueError):
            TPIProblem(circuit=and2, threshold=0.1, allowed_types=())

    def test_from_test_length(self, and2):
        problem = TPIProblem.from_test_length(and2, 4096, escape_budget=0.001)
        assert problem.threshold == pytest.approx(required_threshold(4096, 0.001))

    def test_input_probability_defaults(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.1)
        assert problem.input_probability("a") == 0.5
        problem2 = TPIProblem(
            circuit=and2, threshold=0.1, input_probabilities={"a": 0.9}
        )
        assert problem2.input_probability("a") == 0.9
        assert problem2.input_probability("b") == 0.5

    def test_control_types_filtering(self, and2):
        problem = TPIProblem(
            circuit=and2,
            threshold=0.1,
            allowed_types=(TestPointType.OBSERVATION, TestPointType.CONTROL_OR),
        )
        assert problem.control_types() == [TestPointType.CONTROL_OR]
        assert problem.observation_allowed

    def test_observation_disallowed(self, and2):
        problem = TPIProblem(
            circuit=and2, threshold=0.1, allowed_types=(TestPointType.CONTROL_OR,)
        )
        assert not problem.observation_allowed


class TestSolution:
    def test_points_sorted_and_partitioned(self):
        pts = [
            TestPoint("b", TestPointType.CONTROL_OR),
            TestPoint("a", TestPointType.OBSERVATION),
        ]
        sol = TPISolution(points=pts, cost=1.5, feasible=True, method="x")
        assert sol.points[0].node == "a"
        assert len(sol.control_points()) == 1
        assert len(sol.observation_points()) == 1

    def test_describe_mentions_points(self):
        sol = TPISolution(
            points=[TestPoint("a", TestPointType.OBSERVATION)],
            cost=0.5,
            feasible=True,
            method="dp",
        )
        text = sol.describe()
        assert "OP @ a" in text and "dp" in text
