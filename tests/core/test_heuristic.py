"""Tests for the DP-on-regions heuristic on general circuits."""

import pytest

from repro.circuit import generators
from repro.core import (
    TPIProblem,
    evaluate_placement,
    prepare_for_tpi,
    solve_dp_heuristic,
    solve_greedy,
)


class TestHeuristic:
    def test_already_feasible(self, c17):
        problem = TPIProblem(circuit=c17, threshold=0.01)
        solution = solve_dp_heuristic(problem)
        assert solution.feasible
        assert solution.points == []

    @pytest.mark.parametrize(
        "make",
        [
            lambda: generators.rpr_mixed(cone_width=4, corridor_length=3),
            lambda: prepare_for_tpi(generators.equality_comparator(10)),
            lambda: generators.wide_and_cone(16),
        ],
    )
    def test_reaches_feasibility(self, make):
        circuit = make()
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        solution = solve_dp_heuristic(problem)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()
        assert solution.method == "dp-heuristic"

    def test_no_conflicting_controls(self):
        circuit = generators.rpr_mixed(cone_width=8, corridor_length=6)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_dp_heuristic(problem)
        controls = [p for p in solution.points if p.kind.is_control]
        wires = [(p.node, p.branch) for p in controls]
        assert len(wires) == len(set(wires))

    def test_stats_accounting(self):
        circuit = generators.rpr_mixed(cone_width=4, corridor_length=3)
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        solution = solve_dp_heuristic(problem)
        assert solution.stats["rounds"] >= 1
        assert solution.stats["regions"] >= 1
        assert solution.stats["dp_calls"] >= 0

    def test_without_mop_up_may_leave_work(self):
        circuit = generators.random_dag(10, 60, seed=6)
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        bare = solve_dp_heuristic(problem, final_greedy=False)
        full = solve_dp_heuristic(problem, final_greedy=True)
        # Mop-up never hurts feasibility.
        assert full.feasible or not bare.feasible

    def test_degenerates_to_dp_on_trees(self):
        """On a pure tree the heuristic is the exact DP (same margin/grid)."""
        from repro.core import solve_tree

        circuit = generators.random_tree(30, seed=8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=1024)
        heuristic = solve_dp_heuristic(problem, margin=1.5)
        dp = solve_tree(problem, margin=1.5)
        assert heuristic.feasible
        if not heuristic.stats["mop_up_points"]:
            assert heuristic.cost == pytest.approx(dp.cost)
