"""Unit tests for the virtual (analytical) placement evaluator."""

import pytest

from repro.core import (
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    split_placement,
)
from repro.sim import Fault
from repro.testability import cop_measures

OP = TestPointType.OBSERVATION
CPA = TestPointType.CONTROL_AND
CPO = TestPointType.CONTROL_OR
CPR = TestPointType.CONTROL_RANDOM


class TestSplitPlacement:
    def test_groups_by_site(self):
        pts = [
            TestPoint("a", OP),
            TestPoint("a", CPA),
            TestPoint("b", CPO, branch=("g", 0)),
        ]
        stem, branch = split_placement(pts)
        assert set(stem) == {"a"}
        assert set(branch) == {("b", "g", 0)}

    def test_double_control_rejected(self):
        with pytest.raises(ValueError, match="multiple control"):
            split_placement([TestPoint("a", CPA), TestPoint("a", CPO)])

    def test_op_plus_cp_allowed(self):
        stem, _ = split_placement([TestPoint("a", OP), TestPoint("a", CPR)])
        assert len(stem["a"]) == 2


class TestNoPointsBaseline:
    def test_matches_plain_cop(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(problem, [])
        cop = cop_measures(chain3)
        for name in chain3.node_names:
            assert ev.stem_pre[name] == pytest.approx(cop.probability[name])
            assert ev.stem_post[name] == pytest.approx(cop.probability[name])
            assert ev.wire_obs[name] == pytest.approx(cop.observability[name])


class TestObservationPoints:
    def test_op_sets_wire_obs_to_one(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(problem, [TestPoint("o1", OP)])
        assert ev.wire_obs["o1"] == 1.0
        # Upstream observability improves.
        base = evaluate_placement(problem, [])
        assert ev.wire_obs["b"] > base.wire_obs["b"]

    def test_op_does_not_change_probabilities(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(problem, [TestPoint("o1", OP)])
        base = evaluate_placement(problem, [])
        assert ev.stem_post == pytest.approx(base.stem_post)


class TestControlPoints:
    def test_cp_and_halves_probability(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(problem, [TestPoint("o1", CPA)])
        assert ev.stem_pre["o1"] == pytest.approx(0.75)
        assert ev.stem_post["o1"] == pytest.approx(0.375)
        # Downstream gate sees the transformed value.
        assert ev.stem_pre["a1"] == pytest.approx(0.5 * 0.375)

    def test_cp_attenuates_upstream_observability(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        base = evaluate_placement(problem, [])
        ev = evaluate_placement(problem, [TestPoint("o1", CPA)])
        assert ev.wire_obs["o1"] == pytest.approx(0.5 * base.wire_obs["o1"])

    def test_cp_random_kills_upstream_without_op(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(problem, [TestPoint("o1", CPR)])
        assert ev.wire_obs["o1"] == 0.0
        assert ev.wire_obs["b"] == 0.0

    def test_cp_random_with_op_restores(self, chain3):
        problem = TPIProblem(circuit=chain3, threshold=0.01)
        ev = evaluate_placement(
            problem, [TestPoint("o1", CPR), TestPoint("o1", OP)]
        )
        assert ev.wire_obs["o1"] == 1.0
        assert ev.stem_post["o1"] == 0.5

    def test_cp_on_input(self, and2):
        problem = TPIProblem(
            circuit=and2, threshold=0.01, input_probabilities={"a": 0.9}
        )
        ev = evaluate_placement(problem, [TestPoint("a", CPR)])
        assert ev.stem_pre["a"] == pytest.approx(0.9)
        assert ev.stem_post["a"] == 0.5


class TestBranchPoints:
    def test_branch_cp_affects_single_branch(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.001)
        base = evaluate_placement(problem, [])
        ev = evaluate_placement(
            problem, [TestPoint("s", CPO, branch=("q", 0))]
        )
        # The p branch still carries the raw stem value...
        assert ev.branch_pre[("s", "p", 0)] == pytest.approx(ev.stem_post["s"])
        # ...while the boosted q pin changes the sink gate's probability.
        assert ev.stem_pre["y"] != pytest.approx(base.stem_pre["y"])

    def test_branch_op_observability(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.001)
        ev = evaluate_placement(
            problem, [TestPoint("s", OP, branch=("q", 0))]
        )
        assert ev.branch_obs[("s", "q", 0)] == 1.0
        # The stem benefits through the observed branch.
        assert ev.wire_obs["s"] == 1.0

    def test_branch_cp_random_kills_branch_only(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.001)
        ev = evaluate_placement(
            problem, [TestPoint("s", CPR, branch=("q", 0))]
        )
        assert ev.branch_obs[("s", "q", 0)] == 0.0
        assert ev.branch_obs[("s", "p", 0)] > 0.0


class TestFaultQueries:
    def test_detection_and_failing(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        ev = evaluate_placement(problem, [])
        out = wand8.outputs[0]
        assert ev.fault_detection(Fault(out, 0)) == pytest.approx(1 / 256)
        failing = ev.failing_faults()
        assert Fault(out, 0) in failing

    def test_feasible_after_points(self, wand8):
        problem = TPIProblem(circuit=wand8, threshold=0.05)
        # OR-type CPs on the two mid-level gates + observation in between.
        points = [
            TestPoint("a1_0", CPO),
            TestPoint("a1_1", CPO),
            TestPoint("a1_0", OP),
            TestPoint("a1_1", OP),
            TestPoint("a0_0", OP),
            TestPoint("a0_1", OP),
            TestPoint("a0_2", OP),
            TestPoint("a0_3", OP),
        ]
        ev = evaluate_placement(problem, points)
        assert len(ev.failing_faults()) < len(
            evaluate_placement(problem, []).failing_faults()
        )

    def test_branch_fault_detection(self, diamond):
        problem = TPIProblem(circuit=diamond, threshold=0.001)
        ev = evaluate_placement(problem, [])
        d = ev.fault_detection(Fault("s", 0, branch=("p", 0)))
        assert 0.0 <= d <= 1.0
