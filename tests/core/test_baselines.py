"""Tests for the baseline solvers: greedy, random, exhaustive."""

import pytest

from repro.circuit import generators
from repro.core import (
    TestPoint,
    TestPointType,
    TPIProblem,
    evaluate_placement,
    solve_exhaustive,
    solve_greedy,
    solve_random,
)


class TestGreedy:
    def test_already_feasible(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.1)
        solution = solve_greedy(problem)
        assert solution.feasible and solution.points == []

    def test_fixes_wide_and(self):
        circuit = generators.wide_and_cone(16)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_greedy(problem)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()

    def test_fixes_reconvergent_circuit(self):
        circuit = generators.rpr_mixed(cone_width=4, corridor_length=3)
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        solution = solve_greedy(problem)
        assert solution.feasible
        assert solution.method == "greedy"
        assert solution.stats["iterations"] >= 1

    def test_max_points_budget(self):
        circuit = generators.wide_and_cone(16)
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=4096, max_points=1
        )
        solution = solve_greedy(problem)
        assert len(solution.points) <= 1

    def test_initial_points_kept(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=512)
        seed_point = TestPoint("x0", TestPointType.OBSERVATION)
        solution = solve_greedy(problem, initial_points=[seed_point])
        assert seed_point in solution.points

    def test_infeasible_threshold_gives_up(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.6)
        solution = solve_greedy(problem)
        assert not solution.feasible

    def test_respects_allowed_types(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(
            circuit,
            n_patterns=512,
            allowed_types=(TestPointType.OBSERVATION, TestPointType.CONTROL_OR),
        )
        solution = solve_greedy(problem)
        assert all(
            p.kind in (TestPointType.OBSERVATION, TestPointType.CONTROL_OR)
            for p in solution.points
        )


class TestRandom:
    def test_eventually_feasible_on_easy_instance(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=512)
        solution = solve_random(problem, seed=0)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()

    def test_deterministic_by_seed(self):
        circuit = generators.wide_and_cone(8)
        problem = TPIProblem.from_test_length(circuit, n_patterns=512)
        a = solve_random(problem, seed=5)
        b = solve_random(problem, seed=5)
        assert a.points == b.points

    def test_budget_stops_runaway(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.6)  # impossible
        solution = solve_random(problem, seed=0, max_point_budget=10)
        assert not solution.feasible
        assert len(solution.points) <= 10

    def test_usually_worse_than_greedy(self):
        circuit = generators.wide_and_cone(16)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        greedy = solve_greedy(problem)
        rnd = solve_random(problem, seed=1)
        if rnd.feasible and greedy.feasible:
            assert greedy.cost <= rnd.cost


class TestExhaustive:
    def test_zero_cost_when_already_feasible(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.1)
        solution = solve_exhaustive(problem)
        assert solution.feasible and solution.cost == 0.0

    def test_finds_single_op_solution(self):
        circuit = generators.rpr_corridor(4)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        solution = solve_exhaustive(problem, max_subset_size=2)
        assert solution.feasible
        assert evaluate_placement(problem, solution.points).is_feasible()
        # The optimum is at most what greedy needs.
        greedy = solve_greedy(problem)
        assert solution.cost <= greedy.cost + 1e-9

    def test_infeasible_within_budget(self, and2):
        problem = TPIProblem(circuit=and2, threshold=0.6)
        solution = solve_exhaustive(problem, max_subset_size=2)
        assert not solution.feasible
        assert solution.cost == float("inf")

    def test_candidate_sites_restriction(self):
        circuit = generators.rpr_corridor(4)
        problem = TPIProblem(circuit=circuit, threshold=0.05)
        # Restricting to the head input starves the search.
        solution = solve_exhaustive(
            problem, candidate_sites=["head"], max_subset_size=2
        )
        full = solve_exhaustive(problem, max_subset_size=2)
        assert full.cost <= solution.cost

    def test_never_places_two_controls_on_one_wire(self):
        circuit = generators.wide_and_cone(4)
        problem = TPIProblem(circuit=circuit, threshold=0.1)
        solution = solve_exhaustive(problem, max_subset_size=3)
        controls = [p for p in solution.points if p.kind.is_control]
        assert len({p.node for p in controls}) == len(controls)
