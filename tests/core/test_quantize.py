"""Unit and property tests for probability grids."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ProbabilityGrid


class TestUniformGrid:
    def test_values(self):
        grid = ProbabilityGrid(4)
        assert grid.values() == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert len(grid) == 5
        assert grid.top_index == 4
        assert grid.resolution == 4

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            ProbabilityGrid(1)

    def test_index_nearest(self):
        grid = ProbabilityGrid(4)
        assert grid.index(0.3) == 1  # 0.25 is nearest
        assert grid.index(0.4) == 2
        assert grid.quantize(0.3) == 0.25

    def test_floor(self):
        grid = ProbabilityGrid(4)
        assert grid.floor_index(0.3) == 1
        assert grid.quantize_down(0.74) == 0.5
        assert grid.quantize_down(0.75) == 0.75  # exact grid point

    def test_clamping(self):
        grid = ProbabilityGrid(4)
        assert grid.index(-0.5) == 0
        assert grid.index(1.7) == grid.top_index


class TestGeometricGrid:
    def test_resolves_small_probabilities(self):
        grid = ProbabilityGrid.geometric(1e-3)
        assert min(v for v in grid.values() if v > 0) <= 1e-3
        # Mirrored near 1.
        assert any(abs(v - (1 - 1e-3)) < 1e-9 for v in grid.values())

    def test_contains_endpoints_and_half(self):
        grid = ProbabilityGrid.geometric(0.01)
        values = grid.values()
        assert 0.0 in values and 1.0 in values and 0.5 in values

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityGrid.geometric(0.7)
        with pytest.raises(ValueError):
            ProbabilityGrid.geometric(0.01, ratio=0.9)

    def test_for_threshold_resolves_theta(self):
        theta = 0.002
        grid = ProbabilityGrid.for_threshold(theta)
        positives = [v for v in grid.values() if v > 0]
        assert min(positives) <= theta / 4 + 1e-12

    def test_for_threshold_validation(self):
        with pytest.raises(ValueError):
            ProbabilityGrid.for_threshold(0.0)


class TestRoundingProperties:
    @given(p=st.floats(0, 1))
    def test_floor_never_exceeds(self, p):
        grid = ProbabilityGrid.geometric(0.01)
        assert grid.quantize_down(p) <= p + 1e-9

    @given(p=st.floats(0, 1))
    def test_nearest_within_spacing(self, p):
        grid = ProbabilityGrid(8)
        assert abs(grid.quantize(p) - p) <= grid.spacing / 2 + 1e-12

    @given(p=st.floats(0, 1))
    def test_index_in_range(self, p):
        grid = ProbabilityGrid.geometric(0.005)
        assert 0 <= grid.index(p) <= grid.top_index
        assert 0 <= grid.floor_index(p) <= grid.top_index

    def test_grid_value_round_trips(self):
        grid = ProbabilityGrid.geometric(0.01)
        for i in grid.indices():
            v = grid.value(i)
            assert grid.index(v) == i
            assert grid.floor_index(v) == i

    def test_explicit_values(self):
        grid = ProbabilityGrid(values=[0.1, 0.9])
        assert grid.values() == [0.0, 0.1, 0.9, 1.0]

    def test_explicit_values_need_three(self):
        with pytest.raises(ValueError):
            ProbabilityGrid(values=[0.0])
