"""Tests for physical test point insertion (netlist rewriting).

The key contracts: (1) in *normal mode* — test signals at their
non-controlling values — the modified circuit computes the original
function; (2) the fault map points every original fault at a wire whose
behaviour matches the virtual model.
"""

import pytest

from repro.circuit import GateType, generators
from repro.core import (
    TestPoint,
    TestPointType,
    apply_test_points,
)
from repro.sim import (
    Fault,
    LogicSimulator,
    UniformRandomSource,
    all_stuck_at_faults,
    ones_mask,
)

OP = TestPointType.OBSERVATION
CPA = TestPointType.CONTROL_AND
CPO = TestPointType.CONTROL_OR
CPR = TestPointType.CONTROL_RANDOM


def normal_mode_equal(original, insertion, n_patterns=128, seed=3):
    """Modified circuit == original when CP test signals are disabled.

    AND-type points idle at r=1, OR-type at r=0; random re-drives have no
    idle mode and are excluded from this check by construction of the
    calling tests.
    """
    mod = insertion.circuit
    stim = UniformRandomSource(seed=seed).generate(original.inputs, n_patterns)
    mask = ones_mask(n_patterns)
    for r in insertion.test_inputs:
        # Idle value: AND-type r=1 passes the wire; OR-type r=0 passes it.
        driver_gates = [s for s, _p in mod.fanouts(r)]
        assert driver_gates, "dangling test input"
        gate_type = mod.node(driver_gates[0]).gate_type
        stim[r] = mask if gate_type is GateType.AND else 0
    v_orig = LogicSimulator(original).run(stim, n_patterns)
    v_mod = LogicSimulator(mod).run(stim, n_patterns)
    return all(v_orig[po] == v_mod[po] for po in original.outputs)


class TestStemObservation:
    def test_marks_output(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", OP)])
        assert "o1" in res.circuit.outputs
        assert res.test_inputs == []

    def test_function_preserved(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", OP)])
        assert normal_mode_equal(chain3, res)

    def test_fault_map_identity(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", OP)])
        for fault in all_stuck_at_faults(chain3):
            assert res.fault_map[fault] == fault


class TestStemControl:
    @pytest.mark.parametrize("kind,gate", [(CPA, GateType.AND), (CPO, GateType.OR)])
    def test_gated_control_point(self, chain3, kind, gate):
        res = apply_test_points(chain3, [TestPoint("o1", kind)])
        assert len(res.test_inputs) == 1
        # The sink a1 is rewired to the CP gate.
        cp_driver = res.circuit.node("a1").fanins[1]
        assert res.circuit.node(cp_driver).gate_type is gate
        assert normal_mode_equal(chain3, res)

    def test_random_redrive_rewires_to_test_input(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", CPR)])
        assert res.circuit.node("a1").fanins[1] == res.test_inputs[0]
        # The original wire survives (its faults stay enumerable).
        assert "o1" in res.circuit

    def test_po_moves_to_post_cp_line(self, chain3):
        res = apply_test_points(chain3, [TestPoint("y", CPO)])
        assert "y" not in res.circuit.outputs
        new_po = res.circuit.outputs[0]
        assert res.circuit.node(new_po).gate_type is GateType.OR

    def test_stem_faults_still_map_identity(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", CPA)])
        assert res.fault_map[Fault("o1", 0)] == Fault("o1", 0)


class TestBranchPoints:
    def test_branch_op_isolates_with_buffer(self, diamond):
        res = apply_test_points(
            diamond, [TestPoint("s", OP, branch=("q", 0))]
        )
        buf = res.circuit.node("q").fanins[0]
        assert res.circuit.node(buf).gate_type is GateType.BUF
        assert buf in res.circuit.outputs
        assert normal_mode_equal(diamond, res)
        # Branch fault now injects at the buffer's input connection.
        mapped = res.fault_map[Fault("s", 0, branch=("q", 0))]
        assert mapped == Fault("s", 0, branch=(buf, 0))

    def test_branch_cp_gates_single_branch(self, diamond):
        res = apply_test_points(
            diamond, [TestPoint("s", CPO, branch=("q", 0))]
        )
        cp = res.circuit.node("q").fanins[0]
        assert res.circuit.node(cp).gate_type is GateType.OR
        # p's connection is untouched.
        assert res.circuit.node("p").fanins[0] == "s"
        assert normal_mode_equal(diamond, res)
        mapped = res.fault_map[Fault("s", 1, branch=("q", 0))]
        assert mapped == Fault("s", 1, branch=(cp, 0))

    def test_branch_random_without_op_unmaps_fault(self, diamond):
        res = apply_test_points(
            diamond, [TestPoint("s", CPR, branch=("q", 0))]
        )
        assert res.fault_map[Fault("s", 0, branch=("q", 0))] is None

    def test_branch_random_with_op_keeps_fault(self, diamond):
        res = apply_test_points(
            diamond,
            [
                TestPoint("s", OP, branch=("q", 0)),
                TestPoint("s", CPR, branch=("q", 0)),
            ],
        )
        mapped = res.fault_map[Fault("s", 0, branch=("q", 0))]
        assert mapped is not None
        # Injection lands upstream of both the tap and the re-drive.
        buf = mapped.branch[0]
        assert res.circuit.node(buf).gate_type is GateType.BUF
        assert buf in res.circuit.outputs


class TestComposition:
    def test_op_plus_cp_same_stem(self, chain3):
        res = apply_test_points(
            chain3, [TestPoint("o1", OP), TestPoint("o1", CPR)]
        )
        # Pre-CP tap: the original node is the observed one.
        assert "o1" in res.circuit.outputs
        # Sink sees the test input.
        assert res.circuit.node("a1").fanins[1] == res.test_inputs[0]

    def test_multiple_points_all_applied(self):
        circuit = generators.wide_and_cone(8)
        points = [
            TestPoint("a1_0", CPO),
            TestPoint("a1_1", CPO),
            TestPoint("a1_0", OP),
            TestPoint("a0_2", OP),
        ]
        res = apply_test_points(circuit, points)
        res.circuit.validate()
        assert len(res.test_inputs) == 2
        assert "a1_0" in res.circuit.outputs
        assert "a0_2" in res.circuit.outputs
        assert normal_mode_equal(circuit, res)

    def test_original_circuit_untouched(self, chain3):
        before = chain3.node_names
        apply_test_points(chain3, [TestPoint("o1", CPR), TestPoint("y", OP)])
        assert chain3.node_names == before

    def test_double_control_rejected(self, chain3):
        with pytest.raises(ValueError, match="multiple control"):
            apply_test_points(
                chain3, [TestPoint("o1", CPA), TestPoint("o1", CPO)]
            )


class TestEnableMapping:
    def test_every_control_point_has_enable(self):
        circuit = generators.rpr_mixed(cone_width=4, corridor_length=3)
        points = [
            TestPoint("b0_c0", CPO),
            TestPoint("b1_c1", CPA),
            TestPoint("b0_c2", OP),
        ]
        res = apply_test_points(circuit, points)
        controls = [p for p in points if p.kind.is_control]
        assert set(res.enable_of) == set(controls)
        for point, r in res.enable_of.items():
            assert r in res.test_inputs
            # The enable drives exactly the CP gate of its point.
            sinks = res.circuit.fanouts(r)
            assert len(sinks) == 1

    def test_observation_points_have_no_enable(self, chain3):
        res = apply_test_points(chain3, [TestPoint("o1", OP)])
        assert res.enable_of == {}
