"""Crash-isolated, checkpointed, resumable sweep + experiment drivers."""

import json

import pytest

from repro.analysis import experiments as exps
from repro.analysis.experiments import (
    SweepOutcome,
    run_circuit_sweep,
    run_experiments_checkpointed,
)
from repro.errors import ExperimentError
from repro.resilience import Budget


def _paths(circuit_dir):
    return sorted(circuit_dir.glob("*.bench"))


def _records(results_path):
    return [
        json.loads(line) for line in results_path.read_text().splitlines()
    ]


class TestCrashIsolation:
    def test_corrupt_circuit_recorded_not_raised(self, circuit_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        outcomes = run_circuit_sweep(
            _paths(circuit_dir), results, n_patterns=64
        )
        by_name = {o.circuit: o for o in outcomes}
        assert by_name["a_wand4"].ok and by_name["c17"].ok
        bad = by_name["corrupt"]
        assert bad.status == "parse_error"
        assert bad.error_type == "ParseError"
        assert "ghost" in bad.error
        # every outcome checkpointed as one JSONL line
        assert len(_records(results)) == 3

    def test_budget_exhaustion_recorded(self, circuit_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        outcomes = run_circuit_sweep(
            _paths(circuit_dir),
            results,
            n_patterns=64,
            solvers=("dp",),  # no fallback stage: exhaustion is terminal
            budget=Budget(max_dp_cells=1),
        )
        statuses = {o.circuit: o.status for o in outcomes}
        assert statuses["corrupt"] == "parse_error"
        assert statuses["a_wand4"] == "budget_exceeded"
        assert statuses["c17"] == "budget_exceeded"

    def test_fallback_rescues_budgeted_circuits(self, circuit_dir, tmp_path):
        outcomes = run_circuit_sweep(
            _paths(circuit_dir),
            tmp_path / "results.jsonl",
            n_patterns=64,
            budget=Budget(max_dp_cells=1),  # full dp→greedy→random cascade
        )
        by_name = {o.circuit: o for o in outcomes}
        assert by_name["a_wand4"].ok
        assert by_name["a_wand4"].solver == "greedy"
        assert by_name["a_wand4"].fallbacks == 1


class TestResume:
    def test_interrupted_then_resumed_equals_uninterrupted(
        self, circuit_dir, tmp_path
    ):
        paths = _paths(circuit_dir)

        # Uninterrupted reference run.
        ref_results = tmp_path / "ref.jsonl"
        run_circuit_sweep(paths, ref_results, n_patterns=64)

        # Simulated kill after one circuit, then resume.
        results = tmp_path / "resumed.jsonl"
        first = run_circuit_sweep(
            paths, results, n_patterns=64, max_circuits=1
        )
        assert len(first) == 1
        second = run_circuit_sweep(paths, results, n_patterns=64)
        assert len(second) == len(paths)

        assert _records(results) == _records(ref_results)

    def test_resume_skips_completed_circuits(self, circuit_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        run_circuit_sweep(_paths(circuit_dir), results, n_patterns=64)
        before = results.read_text()
        outcomes = run_circuit_sweep(
            _paths(circuit_dir), results, n_patterns=64
        )
        assert results.read_text() == before  # nothing re-ran or re-wrote
        assert len(outcomes) == 3

    def test_torn_final_line_tolerated(self, circuit_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        run_circuit_sweep(
            _paths(circuit_dir), results, n_patterns=64, max_circuits=1
        )
        with results.open("a") as f:
            f.write('{"circuit": "c17", "status": "o')  # killed mid-write
        outcomes = run_circuit_sweep(
            _paths(circuit_dir), results, n_patterns=64
        )
        assert {o.circuit for o in outcomes} == {"a_wand4", "c17", "corrupt"}

    def test_no_resume_reruns_everything(self, circuit_dir, tmp_path):
        results = tmp_path / "results.jsonl"
        run_circuit_sweep(_paths(circuit_dir), results, n_patterns=64)
        run_circuit_sweep(
            _paths(circuit_dir), results, n_patterns=64, resume=False
        )
        assert len(_records(results)) == 6  # appended a second full pass


class TestSweepOutcome:
    def test_round_trips_through_json(self):
        outcome = SweepOutcome(
            circuit="c17",
            path="x/c17.bench",
            status="ok",
            solver="dp-heuristic",
            cost=1.5,
            n_points=2,
            fallbacks=0,
        )
        assert SweepOutcome(**json.loads(outcome.to_json())) == outcome

    def test_describe_mentions_failure(self):
        outcome = SweepOutcome(
            circuit="bad",
            path="bad.bench",
            status="parse_error",
            error_type="ParseError",
            error="bad.bench:3: nope",
        )
        assert not outcome.ok
        assert "parse_error" in outcome.describe()


class TestExperimentsCheckpointed:
    @staticmethod
    def _fake_f4():
        result = exps.ExperimentResult(
            experiment_id="F4",
            description="stub",
            headers=["x"],
        )
        result.rows.append([1])
        return result

    def test_unknown_key_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="unknown experiments"):
            run_experiments_checkpointed(["zz"], tmp_path / "r.jsonl")

    def test_failure_isolated_and_rest_continue(self, tmp_path, monkeypatch):
        def boom():
            raise RuntimeError("experiment crashed")

        monkeypatch.setattr(exps, "run_t2_dp_optimality", boom)
        monkeypatch.setattr(exps, "run_f4_quantization_ablation", self._fake_f4)
        results = tmp_path / "r.jsonl"
        records = run_experiments_checkpointed(["t2", "f4"], results)
        assert [r["experiment"] for r in records] == ["t2", "f4"]
        assert records[0]["status"] == "error"
        assert records[0]["error"] == "experiment crashed"
        assert records[1]["status"] == "ok"
        assert "[F4]" in records[1]["rendered"]

    def test_resume_does_not_rerun(self, tmp_path, monkeypatch):
        monkeypatch.setattr(exps, "run_f4_quantization_ablation", self._fake_f4)
        results = tmp_path / "r.jsonl"
        run_experiments_checkpointed(["f4"], results)
        before = results.read_text()

        def boom():
            raise AssertionError("must not re-run a recorded experiment")

        monkeypatch.setattr(exps, "run_f4_quantization_ablation", boom)
        records = run_experiments_checkpointed(["f4"], results)
        assert results.read_text() == before
        assert records[0]["status"] == "ok"
