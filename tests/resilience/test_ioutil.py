"""Satellite 2: ioutil under injected filesystem failure (ENOSPC et al.)."""

from __future__ import annotations

import errno
import json

import pytest

from repro import ioutil
from repro.errors import ArtifactWriteError, ReproError


def _fail_on(step):
    def hook(op, path):
        if op == step:
            raise OSError(errno.ENOSPC, "injected: no space left on device")

    return hook


class TestAtomicWrite:
    @pytest.mark.parametrize("step", ["write", "fsync", "replace"])
    def test_failure_at_any_step_is_structured_and_clean(
        self, tmp_path, step
    ):
        target = tmp_path / "artifact.txt"
        target.write_text("old content")
        with ioutil.inject_faults(_fail_on(step)):
            with pytest.raises(ArtifactWriteError) as ei:
                ioutil.atomic_write_text(target, "new content")
        # Structured: the op that failed and the errno, not a bare string.
        assert ei.value.op == step
        assert ei.value.errno == errno.ENOSPC
        assert isinstance(ei.value, ReproError)
        # Atomic: the destination still holds the old content.
        assert target.read_text() == "old content"
        # Clean: no temporary droppings left behind.
        assert list(tmp_path.iterdir()) == [target]

    def test_success_after_hook_removed(self, tmp_path):
        target = tmp_path / "artifact.txt"
        with ioutil.inject_faults(_fail_on("fsync")):
            with pytest.raises(ArtifactWriteError):
                ioutil.atomic_write_text(target, "x")
        ioutil.atomic_write_text(target, "x")  # hook restored on exit
        assert target.read_text() == "x"

    def test_atomic_write_json(self, tmp_path):
        target = tmp_path / "artifact.json"
        ioutil.atomic_write_json(target, {"b": 2, "a": 1})
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}


class TestDurableAppend:
    def test_append_failure_is_structured(self, tmp_path):
        target = tmp_path / "log.jsonl"
        with target.open("a", encoding="utf-8") as handle:
            with ioutil.inject_faults(_fail_on("append")):
                with pytest.raises(ArtifactWriteError) as ei:
                    ioutil.append_durable_line(handle, "{}", path=target)
            assert ei.value.op == "append"
            assert ei.value.errno == errno.ENOSPC
            # The hook fires before the write: nothing was torn.
            ioutil.append_durable_line(handle, '{"ok": 1}', path=target)
        assert target.read_text() == '{"ok": 1}\n'

    def test_embedded_newline_is_rejected(self, tmp_path):
        target = tmp_path / "log.jsonl"
        with target.open("a", encoding="utf-8") as handle:
            with pytest.raises(ValueError, match="single line"):
                ioutil.append_durable_line(handle, "a\nb", path=target)


class TestTailRepair:
    def test_torn_tail_is_terminated(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text('{"a": 1}\n{"torn": ')
        assert ioutil.repair_jsonl_tail(target) is True
        assert target.read_text().endswith("\n")
        records, good, bad = ioutil.read_jsonl_tolerant(target)
        assert records == [{"a": 1}]
        assert bad == ['{"torn": ']

    def test_aligned_file_is_untouched(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text('{"a": 1}\n')
        assert ioutil.repair_jsonl_tail(target) is False
        assert ioutil.repair_jsonl_tail(tmp_path / "missing.jsonl") is False

    def test_zero_length_file_returns_false_without_raising(self, tmp_path):
        # Regression: the old stat-then-seek recipe could race a file
        # shrinking to zero and blow up with "cannot seek before start";
        # the size is now measured on the open handle.
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert ioutil.repair_jsonl_tail(empty) is False
        assert empty.read_bytes() == b""

    @pytest.mark.parametrize("tail", [" ", "   ", "\t"])
    def test_whitespace_only_tail_is_terminated(self, tmp_path, tail):
        # A lone space is still a tail without its newline: terminate it
        # so the next append starts on a fresh line.
        target = tmp_path / "log.jsonl"
        target.write_text(tail)
        assert ioutil.repair_jsonl_tail(target) is True
        assert target.read_text() == tail + "\n"
        assert ioutil.repair_jsonl_tail(target) is False
        records, _good, bad = ioutil.read_jsonl_tolerant(target)
        assert records == [] and bad == []  # blank line: skipped, no casualty

    def test_whitespace_after_records_is_terminated(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text('{"a": 1}\n ')
        assert ioutil.repair_jsonl_tail(target) is True
        records, _good, _bad = ioutil.read_jsonl_tolerant(target)
        assert records == [{"a": 1}]

    def test_repair_failure_is_structured(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text('{"torn": ')
        with ioutil.inject_faults(_fail_on("append")):
            with pytest.raises(ArtifactWriteError) as ei:
                ioutil.repair_jsonl_tail(target)
        assert ei.value.op == "append"
        assert target.read_text() == '{"torn": '  # untouched on failure


class TestTolerantReader:
    def test_partitions_good_and_bad(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text(
            '{"a": 1}\n'
            "not json at all\n"
            "\n"              # blank lines are skipped, not casualties
            '[1, 2, 3]\n'     # decodes, but not an object
            '{"b": 2}\n'
        )
        records, good, bad = ioutil.read_jsonl_tolerant(target)
        assert records == [{"a": 1}, {"b": 2}]
        assert good == ['{"a": 1}', '{"b": 2}']
        assert bad == ["not json at all", "[1, 2, 3]"]
