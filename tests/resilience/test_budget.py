"""Cooperative Budget / Deadline semantics."""

import pytest

from repro.errors import BudgetExceededError
from repro.resilience import Budget, Deadline


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline.unbounded()
        assert not d.bounded
        assert not d.expired()
        assert d.remaining_ns() is None
        d.check("anywhere")  # no raise

    def test_zero_deadline_expires_immediately(self):
        d = Deadline.after_ms(0)
        assert d.bounded
        assert d.expired()
        with pytest.raises(BudgetExceededError) as ei:
            d.check("loop")
        assert ei.value.resource == "wall_clock"
        assert ei.value.where == "loop"
        # Regression: the reported limit must never be negative (the
        # expiry used to be stamped before the start time).
        assert ei.value.limit >= 0

    def test_generous_deadline_does_not_expire(self):
        d = Deadline.after_ms(60_000)
        assert not d.expired()
        assert d.remaining_ns() > 0
        d.check()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(-1)


class TestBudget:
    def test_unlimited_budget_is_free(self):
        b = Budget()
        assert not b.bounded
        for _ in range(100):
            b.tick("loop")
            b.charge("dp_cells", 1000)
        assert b.spent["dp_cells"] == 100_000

    def test_charge_raises_over_limit(self):
        b = Budget(max_dp_cells=2)
        assert b.bounded
        b.charge("dp_cells", 1, "dp.table")
        b.charge("dp_cells", 1, "dp.table")
        with pytest.raises(BudgetExceededError) as ei:
            b.charge("dp_cells", 1, "dp.table")
        err = ei.value
        assert err.resource == "dp_cells"
        assert err.limit == 2 and err.spent == 3
        assert err.where == "dp.table"

    def test_each_resource_tracked_independently(self):
        b = Budget(max_backtracks=1, max_patterns=10)
        b.charge("patterns", 10)
        b.charge("backtracks", 1)
        with pytest.raises(BudgetExceededError) as ei:
            b.charge("patterns", 1)
        assert ei.value.resource == "patterns"

    def test_wall_clock_checked_by_tick_and_charge(self):
        b = Budget(wall_ms=0)
        with pytest.raises(BudgetExceededError):
            b.tick("loop")
        b2 = Budget(wall_ms=0, max_dp_cells=100)
        with pytest.raises(BudgetExceededError) as ei:
            b2.charge("dp_cells", 1)
        assert ei.value.resource == "wall_clock"

    def test_renewed_restarts_clock_and_counters(self):
        b = Budget(wall_ms=60_000, max_dp_cells=5)
        b.charge("dp_cells", 5)
        fresh = b.renewed()
        assert fresh.spent["dp_cells"] == 0
        assert fresh.limits == b.limits
        fresh.charge("dp_cells", 5)  # full headroom again

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_dp_cells=-1)

    def test_describe_is_jsonable(self):
        import json

        b = Budget(wall_ms=100, max_patterns=7)
        b.charge("patterns", 3)
        snapshot = b.describe()
        json.dumps(snapshot)
        assert snapshot["max_patterns"] == 7
        assert snapshot["spent_patterns"] == 3
        assert snapshot["elapsed_ms"] >= 0


class TestBudgetedComponents:
    """Budgets actually stop the solvers/simulators at loop boundaries."""

    def test_dp_solver_charges_cells(self, small_tree):
        from repro.core import TPIProblem, solve_tree

        problem = TPIProblem(circuit=small_tree, threshold=0.05)
        budget = Budget(max_dp_cells=1)
        with pytest.raises(BudgetExceededError) as ei:
            solve_tree(problem, budget=budget)
        assert ei.value.resource in ("dp_cells", "wall_clock")
        # Unbudgeted solve still works.
        assert solve_tree(problem).feasible or True

    def test_fault_sim_charges_patterns(self, c17):
        from repro.sim.fault_sim import FaultSimulator
        from repro.sim.patterns import UniformRandomSource

        sim = FaultSimulator(c17)
        stim = UniformRandomSource(seed=1).generate(c17.inputs, 64)
        with pytest.raises(BudgetExceededError) as ei:
            sim.run(stim, 64, budget=Budget(max_patterns=64))
        assert ei.value.resource == "patterns"

    def test_podem_charges_backtracks(self, diamond):
        from repro.atpg.podem import Podem
        from repro.sim.faults import all_stuck_at_faults

        podem = Podem(diamond, budget=Budget(max_backtracks=0))
        faults = all_stuck_at_faults(diamond)
        # Some fault in the list must force at least one backtrack; the
        # budget converts it into a raise instead of a silent abort.
        with pytest.raises(BudgetExceededError) as ei:
            for fault in faults:
                podem.generate(fault)
        assert ei.value.resource == "backtracks"
