"""Malformed netlists produce ParseError with file + 1-based line numbers."""

import pytest

from repro.circuit import parse_bench, parse_bench_file, parse_verilog
from repro.errors import ParseError


class TestBenchDiagnostics:
    def test_unparseable_line_has_location(self):
        with pytest.raises(ParseError) as ei:
            parse_bench(
                "INPUT(a)\nOUTPUT(y)\nthis is not bench\ny = BUF(a)\n",
                source="t.bench",
            )
        err = ei.value
        assert err.path == "t.bench" and err.line == 3
        assert str(err).startswith("t.bench:3: ")

    def test_undefined_signal_reports_referencing_line(self):
        with pytest.raises(ParseError) as ei:
            parse_bench(
                "INPUT(a)\nOUTPUT(y)\nn1 = BUF(a)\ny = AND(n1, ghost)\n",
                source="t.bench",
            )
        assert ei.value.line == 4
        assert "ghost" in str(ei.value)

    def test_duplicate_gate_definition_rejected(self):
        with pytest.raises(ParseError) as ei:
            parse_bench(
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                "y = AND(a, b)\ny = OR(a, b)\n",
                source="t.bench",
            )
        err = ei.value
        assert err.line == 5
        assert "duplicate definition" in str(err)
        assert "line 4" in str(err)  # points back at the first definition

    def test_gate_redefining_an_input_rejected(self):
        with pytest.raises(ParseError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(a)\na = CONST1()\n")
        assert ei.value.line == 3

    def test_output_of_unknown_signal_rejected(self):
        with pytest.raises(ParseError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(nope)\ny = BUF(a)\n")
        assert ei.value.line == 2
        assert "nope" in str(ei.value)

    def test_unknown_cell_has_location(self):
        with pytest.raises(ParseError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        assert ei.value.line == 3

    def test_cycle_distinguished_from_undefined(self):
        with pytest.raises(ParseError) as ei:
            parse_bench(
                "INPUT(a)\nOUTPUT(y)\n"
                "p = AND(a, q)\nq = AND(a, p)\ny = BUF(p)\n"
            )
        assert "cycle" in str(ei.value)
        assert "undefined" not in str(ei.value)

    def test_dff_arity_error_has_location(self):
        with pytest.raises(ParseError) as ei:
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")
        assert ei.value.line == 4

    def test_file_errors_carry_file_name(self, tmp_path):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        with pytest.raises(ParseError) as ei:
            parse_bench_file(path)
        assert ei.value.path == str(path)
        assert ei.value.line == 3

    def test_comment_lines_do_not_shift_numbers(self):
        with pytest.raises(ParseError) as ei:
            parse_bench("# header\n\nINPUT(a)\nOUTPUT(y)\n# more\nbogus!\n")
        assert ei.value.line == 6


class TestVerilogDiagnostics:
    def test_undriven_net_reports_instance_line(self):
        text = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  and g (y, a, ghost);\n"
            "endmodule\n"
        )
        with pytest.raises(ParseError) as ei:
            parse_verilog(text, source="t.v")
        err = ei.value
        assert err.path == "t.v" and err.line == 4
        assert "ghost" in str(err)

    def test_multiple_drivers_rejected_with_both_lines(self):
        text = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  buf g0 (y, a);\n"
            "  not g1 (y, a);\n"
            "endmodule\n"
        )
        with pytest.raises(ParseError) as ei:
            parse_verilog(text, source="t.v")
        assert ei.value.line == 5
        assert "line 4" in str(ei.value)

    def test_block_comments_do_not_shift_numbers(self):
        text = (
            "/* multi\n"
            "   line\n"
            "   comment */\n"
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  and g (y, a, ghost);\n"
            "endmodule\n"
        )
        with pytest.raises(ParseError) as ei:
            parse_verilog(text, source="t.v")
        assert ei.value.line == 7

    def test_undriven_output_rejected(self):
        text = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "endmodule\n"
        )
        with pytest.raises(ParseError) as ei:
            parse_verilog(text, source="t.v")
        assert ei.value.line == 3
        assert "'y'" in str(ei.value)
