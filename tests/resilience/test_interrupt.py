"""Satellite 3: graceful SIGTERM/SIGINT — stop resumably, lose nothing."""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.analysis import experiments as exps
from repro.circuit import generators, write_bench_file
from repro.cli import EXIT_INTERRUPTED, main
from repro.errors import SweepInterrupted
from repro.resilience.interrupt import GracefulInterrupt


@pytest.fixture
def bench_paths(tmp_path):
    d = tmp_path / "circuits"
    d.mkdir()
    paths = []
    for i in range(3):
        circuit = generators.random_dag(4, 14, seed=90 + i)
        p = d / f"c{i}.bench"
        write_bench_file(circuit, p)
        paths.append(p)
    return paths


class TestGracefulInterrupt:
    def test_request_then_check_raises_resumable(self):
        stop = GracefulInterrupt(install=False)
        stop.check(5, 2)  # no request yet: a no-op
        stop.request("SIGTERM")
        assert stop.requested
        with pytest.raises(SweepInterrupted) as ei:
            stop.check(completed=5, remaining=2)
        assert ei.value.signal_name == "SIGTERM"
        assert ei.value.completed == 5
        assert ei.value.remaining == 2

    def test_real_signal_sets_the_flag(self):
        with GracefulInterrupt() as stop:
            assert not stop.requested
            signal.raise_signal(signal.SIGTERM)
            assert stop.requested
            assert stop.signal_name == "SIGTERM"
        # On exit the previous disposition is restored — delivering
        # SIGTERM now would kill the test runner, so just verify the
        # handler is no longer ours.
        assert signal.getsignal(signal.SIGTERM) is not stop._handle

    def test_off_main_thread_degrades_to_request_only(self):
        seen = {}

        def body():
            with GracefulInterrupt() as stop:
                seen["installed"] = stop._installed
                stop.request("SIGINT")
                seen["requested"] = stop.requested

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert seen == {"installed": False, "requested": True}


class TestSweepBoundaryStop:
    def test_serial_sweep_stops_after_flushed_item_and_resumes(
        self, tmp_path, bench_paths
    ):
        results = tmp_path / "results.jsonl"

        class StopAfterFirst(GracefulInterrupt):
            def check(self, completed=0, remaining=0):
                if completed >= 1:
                    self.request("SIGTERM")
                super().check(completed, remaining)

        with pytest.raises(SweepInterrupted) as ei:
            exps.run_circuit_sweep(
                bench_paths,
                results,
                n_patterns=64,
                interrupt=StopAfterFirst(install=False),
            )
        assert ei.value.completed == 1
        # The interrupted item was flushed before the raise.
        lines = results.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["circuit"] == bench_paths[0].stem

        # Rerunning the same command finishes the campaign.
        outcomes = exps.run_circuit_sweep(
            bench_paths, results, n_patterns=64
        )
        assert len(outcomes) == len(bench_paths)
        assert len(results.read_text().splitlines()) == len(bench_paths)


class TestCliExitCode:
    def test_interrupted_sweep_exits_5(
        self, tmp_path, bench_paths, monkeypatch, capsys
    ):
        def fake_sweep(*args, **kwargs):
            raise SweepInterrupted("SIGTERM", 1, 2)

        monkeypatch.setattr(exps, "run_circuit_sweep", fake_sweep)
        rc = main(
            [
                "sweep",
                str(bench_paths[0].parent),
                "--results",
                str(tmp_path / "r.jsonl"),
            ]
        )
        assert rc == EXIT_INTERRUPTED == 5
        err = capsys.readouterr().err
        assert "resume" in err
        assert "SIGTERM" in err

    def test_sigterm_mid_sweep_integration(self, tmp_path):
        """A real signal against a real subprocess sweep: exit 5, resume."""
        import subprocess
        import sys
        import time
        from pathlib import Path

        d = tmp_path / "many"
        d.mkdir()
        paths = []
        for i in range(10):
            circuit = generators.random_dag(5, 25, seed=120 + i)
            p = d / f"m{i}.bench"
            write_bench_file(circuit, p)
            paths.append(p)
        results = tmp_path / "r.jsonl"
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "sweep",
                str(d),
                "--results",
                str(results),
                "--patterns",
                "4096",
                "--measure-coverage",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        # Let it get at least one item durable, then ask it to stop.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and proc.poll() is None:
            if results.exists() and results.read_text().count("\n") >= 1:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        stderr = proc.stderr.read().decode()
        if rc == EXIT_INTERRUPTED:
            assert "resume" in stderr
            done_before = results.read_text().count("\n")
            assert 1 <= done_before < len(paths)
        else:
            # The sweep finished before the signal landed — legal, but
            # then it must have finished cleanly.
            assert rc == 0
        outcomes = exps.run_circuit_sweep(
            paths, results, n_patterns=4096, measure_coverage=True
        )
        assert len(outcomes) == len(paths)
        assert results.read_text().count("\n") == len(paths)
