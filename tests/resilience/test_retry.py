"""Satellite 1: the shared RetryPolicy pins the historical schedule."""

from __future__ import annotations

import pytest

from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class TestSchedule:
    def test_default_matches_the_historical_fanout_schedule(self):
        # The parallel fan-out always slept 0.05 * 2**(k-1) capped at
        # 0.5s; the extraction must be bit-for-bit that schedule.
        delays = [DEFAULT_RETRY_POLICY.delay_s(k) for k in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.5]

    def test_cap_holds_forever(self):
        assert DEFAULT_RETRY_POLICY.delay_s(50) == 0.5

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.delay_s(0)


class TestShouldRetry:
    def test_boundary(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not policy.should_retry(4)


class TestJitter:
    def test_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(jitter=0.5, seed=11)
        assert policy.delay_s(2, key="job-a") == policy.delay_s(2, key="job-a")
        assert policy.delay_s(2, key="job-a") != policy.delay_s(2, key="job-b")
        assert policy.delay_s(2, key="job-a") != policy.delay_s(3, key="job-a")
        other_seed = policy.replaced(seed=12)
        assert policy.delay_s(2, key="job-a") != other_seed.delay_s(
            2, key="job-a"
        )

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(jitter=0.25, seed=3)
        for attempt in range(1, 8):
            base = DEFAULT_RETRY_POLICY.delay_s(attempt)
            jittered = policy.delay_s(attempt, key="k")
            assert base <= jittered < base * 1.25

    def test_zero_jitter_ignores_key_and_seed(self):
        a = RetryPolicy(seed=1).delay_s(3, key="x")
        b = RetryPolicy(seed=2).delay_s(3, key="y")
        assert a == b == 0.2


class TestValidationAndSleep:
    def test_bad_parameters_are_loud(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_replaced_is_a_frozen_copy(self):
        policy = RetryPolicy()
        longer = policy.replaced(max_attempts=7)
        assert longer.max_attempts == 7
        assert policy.max_attempts == 3

    def test_sleep_sleeps_the_computed_delay(self, monkeypatch):
        import repro.resilience.retry as retry_mod

        slept = []
        monkeypatch.setattr(retry_mod.time, "sleep", slept.append)
        policy = RetryPolicy()
        returned = policy.sleep(2)
        assert slept == [0.1]
        assert returned == 0.1

    def test_sleep_skips_zero_delay(self, monkeypatch):
        import repro.resilience.retry as retry_mod

        slept = []
        monkeypatch.setattr(retry_mod.time, "sleep", slept.append)
        RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0).sleep(1)
        assert slept == []
