"""The exception taxonomy: hierarchy, rendering, backward compatibility."""

import pytest

from repro.errors import (
    BudgetExceededError,
    CircuitError,
    ExperimentError,
    ParseError,
    ReproError,
    SimulationError,
    SolverError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for leaf in (
            CircuitError,
            ParseError,
            SolverError,
            BudgetExceededError,
            SimulationError,
            ExperimentError,
        ):
            assert issubclass(leaf, ReproError)

    def test_builtin_compatibility(self):
        # Pre-taxonomy code raised ValueError / RuntimeError; existing
        # except clauses must keep working.
        assert issubclass(CircuitError, ValueError)
        assert issubclass(ParseError, CircuitError)
        assert issubclass(SolverError, ValueError)
        assert issubclass(SimulationError, ValueError)
        assert issubclass(BudgetExceededError, RuntimeError)
        assert issubclass(ExperimentError, RuntimeError)

    def test_circuit_module_reexports_same_class(self):
        from repro.circuit import CircuitError as from_circuit
        from repro.circuit.netlist import CircuitError as from_netlist

        assert from_circuit is CircuitError
        assert from_netlist is CircuitError


class TestParseError:
    def test_path_and_line_prefix(self):
        err = ParseError("bad gate", path="c17.bench", line=7)
        assert str(err) == "c17.bench:7: bad gate"
        assert err.path == "c17.bench"
        assert err.line == 7

    def test_path_only(self):
        assert str(ParseError("oops", path="f.v")) == "f.v: oops"

    def test_line_only(self):
        assert str(ParseError("oops", line=3)) == "line 3: oops"

    def test_bare_message(self):
        err = ParseError("oops")
        assert str(err) == "oops"
        assert err.path is None and err.line is None

    def test_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            raise ParseError("x", path="f", line=1)


class TestBudgetExceededError:
    def test_attributes_and_message(self):
        err = BudgetExceededError("dp_cells", 100, 101, where="dp.table")
        assert err.resource == "dp_cells"
        assert err.limit == 100
        assert err.spent == 101
        assert err.where == "dp.table"
        assert "dp_cells budget exceeded at dp.table" in str(err)
        assert "spent 101 of 100" in str(err)

    def test_message_without_where(self):
        err = BudgetExceededError("wall_clock", 5.0, 6.5)
        assert "at" not in str(err).split("exceeded")[1].split(":")[0]
