"""CLI resilience: stable exit codes and budget-driven solver fallback."""

import json

import pytest

from repro.cli import (
    EXIT_BUDGET,
    EXIT_INFEASIBLE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    main,
)


class TestExitCodes:
    def test_constants(self):
        assert (
            EXIT_OK,
            EXIT_INFEASIBLE,
            EXIT_USAGE,
            EXIT_BUDGET,
            EXIT_INTERRUPTED,
        ) == (0, 1, 2, 3, 5)

    def test_parse_error_is_exit_2_with_location(self, tmp_path, capsys):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        assert main(["stats", str(path)]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line message
        assert "parse error" in err
        assert f"{path}:3" in err

    def test_unknown_circuit_is_exit_2(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["stats", "no-such-circuit"])
        assert ei.value.code == EXIT_USAGE
        assert "unknown circuit" in capsys.readouterr().err

    def test_unknown_experiment_is_exit_2(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["experiments", "--only", "zz"])
        assert ei.value.code == EXIT_USAGE

    def test_exhausted_budget_is_exit_3(self, capsys):
        rc = main(["insert", "c17", "--patterns", "64", "--budget-ms", "0"])
        assert rc == EXIT_BUDGET
        err = capsys.readouterr().err
        assert "budget exceeded" in err

    def test_generous_budget_still_succeeds(self, capsys):
        rc = main(
            ["insert", "c17", "--patterns", "64", "--budget-ms", "60000"]
        )
        assert rc in (EXIT_OK, EXIT_INFEASIBLE)


class TestBudgetFallback:
    def test_cell_budget_triggers_dp_to_greedy_fallback(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "insert",
                "wand16",
                "--patterns",
                "256",
                "--max-cells",
                "1",
                "--trace-out",
                str(trace),
            ]
        )
        assert rc in (EXIT_OK, EXIT_INFEASIBLE)  # degraded, not dead
        out = capsys.readouterr().out
        assert "greedy" in out

        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        fallbacks = [
            e
            for e in events
            if e["event"] == "event" and e.get("name") == "solver_fallback"
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0]["from_solver"] == "dp"
        assert fallbacks[0]["to_solver"] == "greedy"
        assert fallbacks[0]["resource"] == "dp_cells"

    def test_budget_metadata_recorded_in_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(
            [
                "insert",
                "c17",
                "--patterns",
                "64",
                "--max-cells",
                "100000",
                "--trace-out",
                str(trace),
            ]
        )
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["event"] == "run_start"
        assert first["meta"]["max_cells"] == 100000


class TestSweepCommand:
    def test_sweep_records_failures_and_resumes(
        self, circuit_dir, tmp_path, capsys
    ):
        results = tmp_path / "results.jsonl"
        rc = main(
            [
                "sweep",
                str(circuit_dir),
                "--results",
                str(results),
                "--patterns",
                "64",
            ]
        )
        assert rc == EXIT_OK  # failures are recorded, not fatal
        out = capsys.readouterr().out
        assert "parse_error" in out
        records = [
            json.loads(line) for line in results.read_text().splitlines()
        ]
        assert len(records) == 3
        assert {r["status"] for r in records} == {"ok", "parse_error"}

        # Second invocation must not re-run anything.
        rc = main(
            [
                "sweep",
                str(circuit_dir),
                "--results",
                str(results),
                "--patterns",
                "64",
            ]
        )
        assert rc == EXIT_OK
        assert len(results.read_text().splitlines()) == 3

    def test_sweep_missing_path_is_exit_2(self, tmp_path):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "sweep",
                    str(tmp_path / "nowhere"),
                    "--results",
                    str(tmp_path / "r.jsonl"),
                ]
            )
        assert ei.value.code == EXIT_USAGE
