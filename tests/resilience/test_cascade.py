"""Solver degradation cascade: fallback order, obs events, terminal raise."""

import pytest

from repro.circuit import generators
from repro.core import DEFAULT_CASCADE, TPIProblem, solve_with_fallback
from repro.errors import BudgetExceededError, SolverError
from repro.resilience import Budget


@pytest.fixture
def problem():
    circuit = generators.wide_and_cone(8)
    return TPIProblem.from_test_length(circuit, n_patterns=256)


class TestFallback:
    def test_no_budget_uses_first_stage(self, problem):
        solution = solve_with_fallback(problem)
        assert solution.method == "dp-heuristic"
        assert solution.stats["fallbacks"] == 0.0

    def test_cell_budget_degrades_dp_to_greedy(self, problem, traced):
        solution = solve_with_fallback(
            problem, budget=Budget(max_dp_cells=1)
        )
        assert solution.method == "greedy"
        assert solution.stats["fallbacks"] == 1.0

        events = [
            e
            for e in traced()
            if e["event"] == "event" and e["name"] == "solver_fallback"
        ]
        assert len(events) == 1
        ev = events[0]
        assert ev["from_solver"] == "dp"
        assert ev["to_solver"] == "greedy"
        assert ev["resource"] == "dp_cells"
        assert ev["error"] == "BudgetExceededError"

    def test_each_stage_gets_fresh_budget_counters(self, problem):
        # greedy must not inherit the cells already spent by dp
        solution = solve_with_fallback(
            problem,
            solvers=("dp", "greedy"),
            budget=Budget(max_dp_cells=1, max_patterns=10**9),
        )
        assert solution.method == "greedy"

    def test_exhausted_cascade_reraises(self, problem, traced):
        with pytest.raises(BudgetExceededError) as ei:
            solve_with_fallback(problem, budget=Budget(wall_ms=0))
        assert ei.value.resource == "wall_clock"
        names = [
            e["name"] for e in traced() if e["event"] == "event"
        ]
        # one fallback per stage transition, then the terminal event
        assert names.count("solver_fallback") == len(DEFAULT_CASCADE) - 1
        assert names[-1] == "cascade_exhausted"

    def test_tree_dp_precondition_is_solver_error(self):
        # The exact tree DP refuses reconvergent circuits with SolverError —
        # the class the cascade catches to degrade.
        from repro.core.dp import solve_tree

        circuit = generators.rpr_mixed(cone_width=4, corridor_length=3)
        problem = TPIProblem.from_test_length(circuit, n_patterns=256)
        with pytest.raises(SolverError):
            solve_tree(problem)

    def test_solver_error_also_degrades(self, problem, traced, monkeypatch):
        from repro.core import cascade as cascade_mod

        def broken_stage(_problem, _budget):
            raise SolverError("instance violates stage precondition")

        monkeypatch.setitem(cascade_mod._STAGES, "dp", broken_stage)
        solution = solve_with_fallback(
            problem, solvers=("dp", "greedy")
        )
        assert solution.method == "greedy"
        events = [
            e
            for e in traced()
            if e["event"] == "event" and e["name"] == "solver_fallback"
        ]
        assert events and events[0]["error"] == "SolverError"


class TestValidation:
    def test_empty_cascade_rejected(self, problem):
        with pytest.raises(SolverError):
            solve_with_fallback(problem, solvers=())

    def test_unknown_stage_rejected(self, problem):
        with pytest.raises(SolverError, match="unknown cascade stages"):
            solve_with_fallback(problem, solvers=("dp", "quantum"))
