"""Fixtures for the resilience suite: trace capture and circuit files."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.circuit import generators, write_bench_file


@pytest.fixture
def traced(tmp_path):
    """Record obs output during the test.

    Yields a ``stop()`` callable that uninstalls the recorder and returns
    the parsed trace records; called automatically at teardown if the test
    did not.
    """
    path = tmp_path / "fixture-trace.jsonl"
    recorder = obs.RunRecorder(str(path))
    previous = obs.set_recorder(recorder)
    stopped = []

    def stop():
        if not stopped:
            stopped.append(True)
            obs.set_recorder(previous)
            recorder.close()
        return [json.loads(line) for line in path.read_text().splitlines()]

    yield stop
    stop()


@pytest.fixture
def circuit_dir(tmp_path):
    """A sweep directory: two good circuits plus one corrupt .bench."""
    d = tmp_path / "circuits"
    d.mkdir()
    write_bench_file(generators.wide_and_cone(4), d / "a_wand4.bench")
    write_bench_file(generators.c17(), d / "c17.bench")
    (d / "corrupt.bench").write_text(
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
    )
    return d
