"""Profiling hooks: sampling profiler + span-scoped cProfile."""

import threading
from time import perf_counter

import pytest

from repro import obs
from repro.obs.profile import SamplingProfiler, SpanScopedProfile, fold_frame
from repro.obs.recorder import RunRecorder


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


def _spin(seconds):
    """Burn CPU under a recognizable frame name."""
    deadline = perf_counter() + seconds
    total = 0
    while perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestFoldFrame:
    def test_folds_caller_to_callee(self):
        import sys

        def inner():
            return fold_frame(sys._getframe())

        def outer():
            return inner()

        folded = outer()
        parts = folded.split(";")
        # Leaf last, caller order preserved.
        assert parts[-1] == "test_profile.inner"
        assert parts[-2] == "test_profile.outer"


class TestSamplingProfiler:
    def test_samples_the_workload(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            _spin(0.15)
        assert prof.samples > 10
        folded = prof.folded()
        assert sum(folded.values()) == prof.samples
        assert any("test_profile._spin" in stack for stack in folded)

    def test_folded_lines_and_file(self, tmp_path):
        prof = SamplingProfiler(interval_s=0.001)
        prof.start()
        _spin(0.1)
        prof.stop()
        out = tmp_path / "run.folded"
        prof.write_folded(out)
        lines = out.read_text().splitlines()
        assert lines == prof.folded_lines()
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack and int(count) > 0

    def test_samples_only_target_thread(self):
        # Profiler started on the main thread must not sample a worker.
        seen_worker = threading.Event()

        def worker():
            _spin(0.05)
            seen_worker.set()

        t = threading.Thread(target=worker)
        with SamplingProfiler(interval_s=0.001) as prof:
            t.start()
            t.join()
        assert seen_worker.is_set()
        assert all("worker" not in stack for stack in prof.folded())

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval_s=0.01).start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_idempotent(self):
        prof = SamplingProfiler(interval_s=0.01).start()
        prof.stop()
        prof.stop()
        assert prof.elapsed_s > 0


def _in_span_work():
    return _spin(0.02)


def _outside_span_work():
    return _spin(0.02)


def _profiled_functions(profile):
    try:
        stats = profile.stats()
    except TypeError:  # pstats refuses a profile with no data collected
        return set()
    return {func for _file, _line, func in stats.stats}


class TestSpanScopedProfile:
    def test_whole_extent_without_span_name(self):
        with SpanScopedProfile() as profile:
            _in_span_work()
        assert "_in_span_work" in _profiled_functions(profile)

    def test_scoped_to_named_span(self):
        with obs.recording(RunRecorder(None)):
            with SpanScopedProfile(span_name="solve") as profile:
                _outside_span_work()
                with obs.span("solve"):
                    _in_span_work()
                _outside_span_work()
        funcs = _profiled_functions(profile)
        assert "_in_span_work" in funcs
        assert "_outside_span_work" not in funcs

    def test_nested_same_named_spans_stay_enabled(self):
        with obs.recording(RunRecorder(None)):
            with SpanScopedProfile(span_name="solve") as profile:
                with obs.span("solve"):
                    with obs.span("solve"):
                        pass
                    _in_span_work()  # outer still open: still profiling
        assert "_in_span_work" in _profiled_functions(profile)

    def test_other_span_names_ignored(self):
        with obs.recording(RunRecorder(None)):
            with SpanScopedProfile(span_name="solve") as profile:
                with obs.span("fault_sim.run"):
                    _in_span_work()
        assert "_in_span_work" not in _profiled_functions(profile)

    def test_hooks_removed_on_exit(self):
        from repro.obs import spans as spans_mod

        before = len(spans_mod._hooks)
        with obs.recording(RunRecorder(None)):
            with SpanScopedProfile(span_name="solve"):
                assert len(spans_mod._hooks) == before + 1
        assert len(spans_mod._hooks) == before

    def test_write_stats(self, tmp_path):
        import pstats

        with SpanScopedProfile() as profile:
            _in_span_work()
        out = tmp_path / "prof.pstats"
        profile.write_stats(out)
        loaded = pstats.Stats(str(out))
        assert any(func == "_in_span_work" for _f, _l, func in loaded.stats)
