"""MetricsRegistry: counters, gauges, histogram bucketing, thread safety."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 2.5)
        assert reg.counter_value("a") == 3.5

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.0)
        assert reg.gauge_value("g") == 7.0
        assert reg.gauge_value("missing") is None


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0):  # both land in the ≤1.0 bucket
            hist.observe(value)
        hist.observe(1.001)  # next bucket
        hist.observe(1000.0)  # overflow
        assert hist.counts == [2, 1, 0]
        assert hist.overflow == 1
        assert hist.count == 4

    def test_stats(self):
        hist = Histogram(bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0 and hist.max == 3.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_snapshot_elides_empty_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.012, buckets=(0.01, 0.1, 1.0))
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 1
        assert snap["buckets"] == {"0.1": 1}

    def test_custom_buckets_only_apply_on_first_observe(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0, buckets=(10.0,))
        reg.observe("h", 2.0)  # same histogram
        assert reg.histogram("h").count == 2


class TestSnapshot:
    def test_structure_and_sorting(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a")
        reg.gauge("g", 1.5)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["sum"] == 3.0


class TestThreadSafety:
    def test_concurrent_counts_do_not_lose_updates(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                reg.count("shared")
                reg.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("shared") == n_threads * per_thread
        assert reg.histogram("h").count == n_threads * per_thread
