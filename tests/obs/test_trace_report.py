"""Trace loading and human-readable rendering."""

import pytest

from repro import obs
from repro.obs.recorder import RunRecorder
from repro.obs.trace_report import load_trace, render_metrics, render_trace


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "run.jsonl"
    with obs.recording(RunRecorder(path, metadata={"circuit": "wand16"})):
        with obs.span("solve", solver="dp"):
            with obs.span("dp.solve"):
                obs.count("dp.table_cells", 100)
        with obs.span("fault_sim.run", n_patterns=256):
            obs.observe("fault_sim.run_seconds", 0.001)
        obs.event("note", detail="hello")
    return path


class TestLoadTrace:
    def test_partitions_events(self, trace_path):
        trace = load_trace(trace_path)
        assert trace.meta["circuit"] == "wand16"
        assert len(trace.spans) == 3
        assert len(trace.events) == 1
        assert trace.metrics["counters"]["dp.table_cells"] == 100
        assert trace.run_dur_ns is not None
        assert trace.n_bad_lines == 0

    def test_garbage_lines_counted_not_fatal(self, tmp_path, trace_path):
        mangled = tmp_path / "mangled.jsonl"
        mangled.write_text(
            trace_path.read_text() + "this is not json\n{\"half\": \n"
        )
        trace = load_trace(mangled)
        assert trace.n_bad_lines == 2
        assert len(trace.spans) == 3


class TestRenderTrace:
    def test_contains_all_sections(self, trace_path):
        text = render_trace(trace_path)
        assert "Trace summary" in text
        assert "wand16" in text
        assert "dp.solve" in text
        assert "fault_sim.run" in text
        assert "dp.table_cells" in text
        assert "spans by name" in text
        assert "span tree" in text

    def test_tree_indents_children(self, trace_path):
        text = render_trace(trace_path)
        lines = text.splitlines()
        tree = lines[lines.index("span tree (chronological)") :]
        (solve_line,) = [l for l in tree if l.strip().startswith("solve ")]
        (dp_line,) = [l for l in tree if l.strip().startswith("dp.solve ")]
        assert len(dp_line) - len(dp_line.lstrip()) > len(solve_line) - len(
            solve_line.lstrip()
        )

    def test_render_empty_metrics(self):
        assert "no metrics" in render_metrics({})
