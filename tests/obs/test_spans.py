"""Span nesting, attribute handling, and the disabled fast path."""

import threading

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN, Span, current_span


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    """Every test starts and ends with observability disabled."""
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


class TestDisabledPath:
    def test_span_returns_shared_null_span(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", attr=1) is NULL_SPAN

    def test_null_span_context_and_set(self):
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp

    def test_counters_are_noops(self):
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.event("e", detail="ignored")

    def test_enabled_reflects_recorder(self):
        assert not obs.enabled()
        with obs.recording(obs.RunRecorder(None)):
            assert obs.enabled()
        assert not obs.enabled()


class TestNesting:
    def test_parent_and_depth(self):
        rec = obs.RunRecorder(None)
        with obs.recording(rec):
            with obs.span("outer") as outer:
                assert current_span() is outer
                assert outer.depth == 0 and outer.parent_id is None
                with obs.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.depth == 1
                assert current_span() is outer
            assert current_span() is None
        assert rec.n_spans == 2

    def test_sibling_spans_share_parent(self):
        with obs.recording(obs.RunRecorder(None)):
            with obs.span("outer") as outer:
                with obs.span("a") as a:
                    pass
                with obs.span("b") as b:
                    pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_stacks_are_per_thread(self):
        with obs.recording(obs.RunRecorder(None)):
            with obs.span("main-thread"):
                seen = {}

                def worker():
                    with obs.span("worker") as sp:
                        seen["parent"] = sp.parent_id
                        seen["depth"] = sp.depth

                t = threading.Thread(target=worker)
                t.start()
                t.join()
        assert seen == {"parent": None, "depth": 0}


class TestTiming:
    def test_duration_is_positive_and_monotone(self):
        with Span("t") as sp:
            mid = sp.duration_ns
            assert mid >= 0
        assert sp.duration_ns >= mid
        assert sp.seconds == sp.duration_ns / 1e9

    def test_timed_works_without_recorder(self):
        with obs.timed("experiment", gates=40) as sp:
            pass
        assert sp.seconds >= 0.0
        assert sp.attrs == {"gates": 40}

    def test_timed_is_recorded_when_enabled(self):
        rec = obs.RunRecorder(None)
        with obs.recording(rec):
            with obs.timed("experiment"):
                pass
        assert rec.n_spans == 1

    def test_set_merges_attrs(self):
        with Span("t", {"a": 1}) as sp:
            sp.set(b=2).set(a=3)
        assert sp.attrs == {"a": 3, "b": 2}
