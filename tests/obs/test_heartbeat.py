"""Heartbeat events: rate limiting, payload, env override."""

import json

import pytest

from repro import obs
from repro.obs.heartbeat import DEFAULT_INTERVAL_S, Heartbeat
from repro.obs.recorder import RunRecorder


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


def _heartbeat_events(path):
    records = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    return [
        r for r in records if r.get("event") == "event"
        and r.get("name") == "heartbeat"
    ]


class TestRateLimit:
    def test_no_beat_before_interval(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            hb = Heartbeat("loop", interval_s=60.0)
            for _ in range(100):
                assert not hb.beat()
        assert hb.beats == 0
        assert _heartbeat_events(path) == []

    def test_beats_after_interval(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            hb = Heartbeat("loop", interval_s=0.0001)
            import time

            time.sleep(0.001)
            assert hb.beat(items=3)
        (beat,) = _heartbeat_events(path)
        assert beat["items"] == 3
        assert hb.beats == 1

    def test_disabled_with_zero_interval(self):
        hb = Heartbeat("loop", interval_s=0)
        assert not hb.beat()

    def test_no_burst_after_recorder_installed_late(self, tmp_path):
        import time

        hb = Heartbeat("loop", interval_s=5.0)
        hb._last -= 10.0  # pretend the interval elapsed with no recorder
        assert not hb.beat()  # swallowed, but the clock advanced
        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            hb.beat()  # immediately after: interval not elapsed again
        assert _heartbeat_events(path) == []


class TestPayload:
    def test_carries_progress_resources_and_counters(self, tmp_path):
        import time

        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            obs.count("fault_sim.gate_evals", 42)
            obs.count("kernel.cache_hits", 3)
            obs.count("kernel.compiles", 1)
            hb = Heartbeat("fault_sim.run", interval_s=0.0001)
            time.sleep(0.001)
            assert hb.beat(faults_done=7, faults_total=9)
        (beat,) = _heartbeat_events(path)
        assert beat["loop"] == "fault_sim.run"
        assert beat["faults_done"] == 7 and beat["faults_total"] == 9
        assert beat["elapsed_s"] >= 0
        assert beat["rss_peak_kb"] is None or beat["rss_peak_kb"] > 0
        assert beat["counters"]["fault_sim.gate_evals"] == 42
        assert beat["kernel_cache_hit_rate"] == pytest.approx(0.75)

    def test_hit_rate_none_before_kernel_activity(self, tmp_path):
        import time

        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            hb = Heartbeat("loop", interval_s=0.0001)
            time.sleep(0.001)
            hb.beat()
        (beat,) = _heartbeat_events(path)
        assert beat["kernel_cache_hit_rate"] is None

    def test_emission_counted(self, tmp_path):
        import time

        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)) as recorder:
            hb = Heartbeat("loop", interval_s=0.0001)
            time.sleep(0.001)
            hb.beat()
            snapshot = recorder.metrics.snapshot()
        assert snapshot["counters"]["heartbeat.emitted"] == 1


class TestEnvOverride:
    def test_env_sets_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_SEC", "2.5")
        assert Heartbeat("loop").interval_s == 2.5

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_SEC", "soon")
        assert Heartbeat("loop").interval_s == DEFAULT_INTERVAL_S

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_SEC", raising=False)
        assert Heartbeat("loop").interval_s == DEFAULT_INTERVAL_S


class TestWiredLoops:
    def test_solve_loop_emits_heartbeats(self, tmp_path, monkeypatch):
        # End to end: a real greedy solve with a tiny interval heartbeats.
        from repro.circuit.library import benchmark
        from repro.core import TPIProblem, prepare_for_tpi, solve_greedy

        monkeypatch.setenv("REPRO_HEARTBEAT_SEC", "0.0001")
        path = tmp_path / "run.jsonl"
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=512, escape_budget=0.001
        )
        with obs.recording(RunRecorder(path)):
            solve_greedy(problem)
        beats = _heartbeat_events(path)
        assert beats, "greedy solve loop emitted no heartbeats"
        assert any(b["loop"] == "greedy.solve" for b in beats)
        assert all("elapsed_s" in b for b in beats)
