"""RunRecorder: JSONL round-trip, metadata, sink-less mode."""

import json

import pytest

from repro import obs
from repro.obs.recorder import RunRecorder, git_revision, run_metadata


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestJsonlRoundTrip:
    def test_full_run_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = RunRecorder(path, metadata={"circuit": "c17", "seed": 3})
        with obs.recording(rec):
            with obs.span("solve", circuit="c17") as sp:
                obs.count("dp.table_cells", 11)
                sp.set(cost=2.0)
            obs.gauge("dp.grid_size", 16)
            obs.observe("fault_sim.run_seconds", 0.25)
            obs.event("checkpoint", phase=1)

        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "metrics" in kinds and "span" in kinds and "event" in kinds

        start = events[0]
        assert start["meta"]["circuit"] == "c17"
        assert start["meta"]["seed"] == 3
        assert start["schema"] == 1

        (span,) = [e for e in events if e["event"] == "span"]
        assert span["name"] == "solve"
        assert span["dur_ns"] >= 0
        assert span["attrs"] == {"circuit": "c17", "cost": 2.0}

        (metrics,) = [e for e in events if e["event"] == "metrics"]
        assert metrics["metrics"]["counters"]["dp.table_cells"] == 11
        assert metrics["metrics"]["gauges"]["dp.grid_size"] == 16
        hist = metrics["metrics"]["histograms"]["fault_sim.run_seconds"]
        assert hist["count"] == 1 and hist["sum"] == 0.25

        end = events[-1]
        assert end["n_spans"] == 1
        assert end["dur_ns"] >= span["dur_ns"]

    def test_every_line_is_self_contained_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.recording(RunRecorder(path)):
            for i in range(5):
                with obs.span(f"step{i}"):
                    pass
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_non_json_attrs_are_stringified(self, tmp_path):
        path = tmp_path / "run.jsonl"

        class Odd:
            def __repr__(self):
                return "<odd>"

        with obs.recording(RunRecorder(path, metadata={"obj": Odd()})):
            with obs.span("s", obj=Odd(), seq=(1, 2)):
                pass
        events = read_events(path)
        assert events[0]["meta"]["obj"] == "<odd>"
        (span,) = [e for e in events if e["event"] == "span"]
        assert span["attrs"] == {"obj": "<odd>", "seq": [1, 2]}


class TestSinklessMode:
    def test_metrics_only_recorder_writes_nothing(self, tmp_path):
        rec = RunRecorder(None)
        with obs.recording(rec):
            obs.count("c", 4)
            with obs.span("s"):
                pass
        assert rec.metrics.counter_value("c") == 4
        assert rec.n_spans == 1
        assert list(tmp_path.iterdir()) == []

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = RunRecorder(path)
        rec.close()
        rec.close()
        events = read_events(path)
        assert [e["event"] for e in events].count("run_end") == 1


class TestRecordingContext:
    def test_restores_previous_recorder(self):
        outer = RunRecorder(None)
        obs.set_recorder(outer)
        with obs.recording(RunRecorder(None)) as inner:
            assert obs.get_recorder() is inner
        assert obs.get_recorder() is outer
        obs.set_recorder(None)


class TestMetadataHelpers:
    def test_run_metadata_contents(self):
        meta = run_metadata(circuit="c17", seed=1)
        assert meta["circuit"] == "c17"
        assert meta["seed"] == 1
        assert "python" in meta and "platform" in meta
        assert "git_rev" in meta  # may be None outside a checkout

    def test_git_revision_handles_missing_repo(self, tmp_path):
        assert git_revision(tmp_path) is None
