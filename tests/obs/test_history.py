"""Benchmark history: rolling baselines + noise-aware regression gates."""

import json

import pytest

from repro.obs import history as hist


def _payload(speedup=3.0, seconds=1.0, bench="kernel_logic_sim", **extra):
    metrics = {
        "workload": "fake",
        "speedup": speedup,
        "seconds_compiled": seconds,
        "bit_identical": True,  # bool: never gated
        "coverage": 0.99,  # directionless: never gated
    }
    metrics.update(extra)
    return {
        "schema": 1,
        "mode": "quick",
        "kernel": "compiled",
        "benchmarks": {bench: metrics},
    }


def _seed_history(path, n=5, speedup=3.0, seconds=1.0):
    for i in range(n):
        hist.append_history(
            path, hist.entries_from_bench_perf(_payload(speedup, seconds), ts=float(i))
        )


class TestEntries:
    def test_one_entry_per_benchmark_with_gated_metrics_only(self):
        (entry,) = hist.entries_from_bench_perf(_payload(), ts=7.0)
        assert entry["schema"] == hist.HISTORY_SCHEMA
        assert entry["bench"] == "kernel_logic_sim"
        assert entry["mode"] == "quick"
        assert entry["kernel"] == "compiled"
        assert entry["ts"] == 7.0
        # Only direction-ful numerics survive: no workload/bools/coverage.
        assert set(entry["metrics"]) == {"speedup", "seconds_compiled"}

    def test_benchmark_without_gated_metrics_dropped(self):
        payload = {"benchmarks": {"odd": {"workload": "x", "count": 3}}}
        assert hist.entries_from_bench_perf(payload) == []


class TestHistoryIO:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "hist" / "history.jsonl"
        _seed_history(path, n=3)
        records = hist.load_history(path)
        assert len(records) == 3
        assert [r["ts"] for r in records] == [0.0, 1.0, 2.0]

    def test_missing_file_is_empty(self, tmp_path):
        assert hist.load_history(tmp_path / "nope.jsonl") == []

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=2)
        with path.open("a") as sink:
            sink.write('{"schema": 999, "bench": "future"}\n')
            sink.write("not json at all\n")
            sink.write('{"schema": 1, "bench": "x"}\n')  # no metrics
            sink.write('{"truncated": ')  # torn final line
        assert len(hist.load_history(path)) == 2


class TestRollingBaseline:
    def test_median_of_trailing_window(self):
        stats = hist.rolling_baseline([10, 10, 1, 2, 3], window=3)
        assert stats["baseline"] == 2
        assert stats["n"] == 3

    def test_rel_mad(self):
        stats = hist.rolling_baseline([90, 100, 110], window=5)
        assert stats["baseline"] == 100
        assert stats["rel_mad"] == pytest.approx(0.1)

    def test_empty(self):
        assert hist.rolling_baseline([])["n"] == 0


class TestCompare:
    def test_planted_20pct_slowdown_fails_clean_rerun_passes(self, tmp_path):
        # The acceptance scenario, end to end through the file formats.
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5, speedup=3.0, seconds=1.0)
        history = hist.load_history(path)

        clean = hist.entries_from_bench_perf(_payload(3.0, 1.0))
        assert hist.compare_to_history(history, clean).ok

        # >=20% regression on both directions: slower seconds, lower speedup.
        slow = hist.entries_from_bench_perf(_payload(3.0 / 1.25, 1.25))
        report = hist.compare_to_history(history, slow)
        assert not report.ok
        assert {c.metric for c in report.regressions} == {
            "speedup",
            "seconds_compiled",
        }
        for comparison in report.regressions:
            assert comparison.ratio == pytest.approx(1.25, rel=1e-6)

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5)
        history = hist.load_history(path)
        wobble = hist.entries_from_bench_perf(_payload(2.9, 1.05))
        assert hist.compare_to_history(history, wobble).ok

    def test_noisy_baseline_widens_gate(self):
        # rel_mad 0.1 -> margin max(0.15, 4*0.1) = 0.4: a 30% slowdown
        # that would fail a quiet baseline passes a noisy one.
        def entry(ts, seconds):
            return hist.entries_from_bench_perf(
                _payload(seconds=seconds), ts=ts
            )[0]

        noisy = [entry(float(i), s) for i, s in enumerate([0.9, 1.0, 1.1])]
        current = hist.entries_from_bench_perf(_payload(seconds=1.3))
        report = hist.compare_to_history(noisy, current)
        seconds = [c for c in report.checked if c.metric == "seconds_compiled"]
        assert seconds[0].margin == pytest.approx(0.4)
        assert not seconds[0].regressed

    def test_new_benchmark_skipped_not_failed(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=3)
        history = hist.load_history(path)
        fresh = hist.entries_from_bench_perf(_payload(bench="brand_new"))
        report = hist.compare_to_history(history, fresh)
        assert report.ok
        assert report.skipped

    def test_mode_kernel_mismatch_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=3)
        history = hist.load_history(path)
        full = _payload()
        full["mode"] = "full"
        report = hist.compare_to_history(
            history, hist.entries_from_bench_perf(full)
        )
        assert report.ok and report.skipped and not report.checked

    def test_relative_only_ignores_absolute_seconds(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5)
        history = hist.load_history(path)
        # Seconds doubled (another machine) but speedup held: CI mode passes.
        other_host = hist.entries_from_bench_perf(_payload(3.0, 2.0))
        report = hist.compare_to_history(history, other_host, relative_only=True)
        assert report.ok
        assert {c.metric for c in report.checked} == {"speedup"}

    def test_same_host_only_filters_foreign_history(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=3)
        foreign = hist.load_history(path)
        for record in foreign:
            record["host"] = {"python": "0.0", "platform": "plan9",
                              "machine": "pdp11", "cpus": 1}
        report = hist.compare_to_history(
            foreign,
            hist.entries_from_bench_perf(_payload()),
            same_host_only=True,
        )
        assert not report.checked and report.skipped

    def test_improvement_never_regresses(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5)
        history = hist.load_history(path)
        faster = hist.entries_from_bench_perf(_payload(9.0, 0.1))
        assert hist.compare_to_history(history, faster).ok


class TestRender:
    def test_mentions_counts_and_regressions(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5)
        history = hist.load_history(path)
        slow = hist.entries_from_bench_perf(_payload(1.0, 2.0))
        report = hist.compare_to_history(history, slow)
        text = hist.render_comparison(report)
        assert "regression" in text
        assert "kernel_logic_sim.speedup" in text

    def test_verbose_includes_passing(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed_history(path, n=5)
        history = hist.load_history(path)
        clean = hist.entries_from_bench_perf(_payload())
        text = hist.render_comparison(
            hist.compare_to_history(history, clean), verbose=True
        )
        assert "ok" in text


class TestHostFingerprint:
    def test_round_trips_through_json(self):
        fp = hist.host_fingerprint()
        assert hist.fingerprint_key(json.loads(json.dumps(fp))) == (
            hist.fingerprint_key(fp)
        )

    def test_key_is_stable_and_none_safe(self):
        assert hist.fingerprint_key(None) == hist.fingerprint_key({})
