"""The disabled observability path must be ~free on the hot loops.

Acceptance guard: with no recorder configured, the instrumentation the
fault simulator carries (``obs.span`` / ``obs.count`` / … calls) must add
less than 5% to a fault-simulation run.  Measured as: (number of obs API
calls one instrumented run makes) × (cost of one disabled-path call),
compared against the run's own wall time.
"""

from time import perf_counter

import pytest

from repro import obs
from repro.circuit.library import benchmark
from repro.sim.fault_sim import FaultSimulator
from repro.sim.patterns import UniformRandomSource

N_PATTERNS = 256


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


class CountingRecorder:
    """Recorder stand-in that only tallies how often obs is invoked."""

    def __init__(self):
        self.calls = 0

    def span(self, name, attrs=None):
        self.calls += 1
        return obs.NULL_SPAN

    def count(self, name, n=1.0):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1

    def event(self, name, **fields):
        self.calls += 1

    def _emit_span(self, span):
        pass


def _fault_sim_seconds(sim, stimulus) -> float:
    best = float("inf")
    for _ in range(3):
        start = perf_counter()
        sim.run(stimulus, N_PATTERNS)
        best = min(best, perf_counter() - start)
    return best


def _disabled_call_seconds() -> float:
    """Per-call cost of the disabled obs fast path (min over repeats)."""
    reps = 20_000
    best = float("inf")
    for _ in range(3):
        start = perf_counter()
        for _ in range(reps):
            obs.span("x")
            obs.count("x")
        best = min(best, perf_counter() - start)
    return best / (2 * reps)


def test_noop_instrumentation_overhead_below_5_percent():
    circuit = benchmark("wand16")
    sim = FaultSimulator(circuit)
    stimulus = UniformRandomSource(seed=1).generate(
        circuit.inputs, N_PATTERNS
    )
    sim.run(stimulus, N_PATTERNS)  # warm caches (cone orders, etc.)

    run_seconds = _fault_sim_seconds(sim, stimulus)

    # How many obs API calls does one instrumented run actually make?
    counting = CountingRecorder()
    obs.set_recorder(counting)
    try:
        sim.run(stimulus, N_PATTERNS)
    finally:
        obs.set_recorder(None)
    calls_per_run = counting.calls
    assert calls_per_run > 0  # the hot path *is* instrumented

    overhead = calls_per_run * _disabled_call_seconds()
    assert overhead < 0.05 * run_seconds, (
        f"no-op obs overhead {overhead * 1e6:.1f}µs is ≥5% of a "
        f"{run_seconds * 1e6:.1f}µs fault-sim run ({calls_per_run} calls)"
    )


def test_disabled_calls_allocate_nothing_per_call():
    # The disabled span path must hand back the shared singleton, not a
    # fresh object per call — that is what keeps it allocation-free.
    assert obs.span("a") is obs.span("b") is obs.NULL_SPAN
