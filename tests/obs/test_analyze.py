"""Trace analytics: self-time, critical path, phase attribution.

The acceptance fixture is a hand-built span tree with known durations,
so every aggregate is checked against numbers computed by hand.
"""

import pytest

from repro.obs.analyze import (
    aggregate_spans,
    critical_path,
    phase_table,
    render_critical_path,
    render_phases,
    render_self_time,
)


def _span(name, id, dur, parent=None, start=0, **attrs):
    record = {
        "event": "span",
        "name": name,
        "id": id,
        "start_ns": start,
        "dur_ns": dur,
        "tid": 0,
    }
    if parent is not None:
        record["parent"] = parent
    if attrs:
        record["attrs"] = attrs
    return record


@pytest.fixture()
def tree():
    """solve(100) -> dp(60) -> dp.table(40), solve -> sim(30); prepare(20).

    Hand-computed self times: solve 10, dp 20, dp.table 40, sim 30,
    prepare 20.
    """
    return [
        _span("solve", 1, 100, start=20, solver="dp"),
        _span("dp", 2, 60, parent=1, start=25),
        _span("dp.table", 3, 40, parent=2, start=30),
        _span("sim", 4, 30, parent=1, start=88),
        _span("prepare", 5, 20, start=0),
    ]


class TestAggregateSpans:
    def test_self_time_is_duration_minus_direct_children(self, tree):
        stats = aggregate_spans(tree)
        assert stats["solve"].self_ns == 100 - (60 + 30)
        assert stats["dp"].self_ns == 60 - 40
        assert stats["dp.table"].self_ns == 40  # leaf: self == total
        assert stats["sim"].self_ns == 30
        assert stats["prepare"].self_ns == 20

    def test_totals_and_counts(self, tree):
        # Two same-named spans aggregate into one row.
        tree.append(_span("sim", 6, 10, parent=1, start=50))
        stats = aggregate_spans(tree)
        assert stats["sim"].count == 2
        assert stats["sim"].total_ns == 40
        assert stats["sim"].min_ns == 10
        assert stats["sim"].max_ns == 30
        # The extra child reduces the parent's self time.
        assert stats["solve"].self_ns == 100 - (60 + 30 + 10)

    def test_self_time_clamped_when_children_overlap(self):
        # Parallel children can sum past the parent (other threads).
        spans = [
            _span("parent", 1, 100),
            _span("w0", 2, 80, parent=1),
            _span("w1", 3, 80, parent=1),
        ]
        assert aggregate_spans(spans)["parent"].self_ns == 0

    def test_torn_records_skipped(self, tree):
        tree.append({"event": "span", "name": "torn"})  # no dur_ns
        tree.append({"event": "span", "dur_ns": 5})  # no name
        stats = aggregate_spans(tree)
        assert "torn" not in stats
        assert len(stats) == 5


class TestCriticalPath:
    def test_descends_longest_child(self, tree):
        path = critical_path(tree)
        assert [step.name for step in path] == ["solve", "dp", "dp.table"]
        assert [step.dur_ns for step in path] == [100, 60, 40]
        assert [step.self_ns for step in path] == [10, 20, 40]

    def test_starts_at_longest_root(self, tree):
        assert critical_path(tree)[0].name == "solve"
        assert critical_path(tree)[0].attrs == {"solver": "dp"}

    def test_orphaned_child_treated_as_root(self):
        # Parent id 99 never completed (run died): child becomes a root.
        spans = [_span("orphan", 1, 50, parent=99), _span("other", 2, 10)]
        assert critical_path(spans)[0].name == "orphan"

    def test_empty(self):
        assert critical_path([]) == []
        assert "no spans" in render_critical_path([])

    def test_deterministic_under_reordering(self, tree):
        assert [s.span_id for s in critical_path(tree)] == [
            s.span_id for s in critical_path(list(reversed(tree)))
        ]


class TestPhaseTable:
    def test_shares_over_run_duration(self, tree):
        rows = phase_table(tree, run_dur_ns=200)
        by_name = {r.name: r for r in rows}
        assert set(by_name) == {"solve", "prepare"}  # roots only
        assert by_name["solve"].share == pytest.approx(0.5)
        assert by_name["prepare"].share == pytest.approx(0.1)

    def test_shares_over_root_sum_without_run_duration(self, tree):
        rows = phase_table(tree, run_dur_ns=None)
        by_name = {r.name: r for r in rows}
        assert by_name["solve"].share == pytest.approx(100 / 120)

    def test_sorted_by_total_descending(self, tree):
        rows = phase_table(tree, run_dur_ns=200)
        assert [r.name for r in rows] == ["solve", "prepare"]


class TestRendering:
    def test_self_time_table(self, tree):
        text = render_self_time(tree)
        lines = text.splitlines()
        # Sorted by self time: dp.table (40) first.
        assert lines[2].split()[0] == "dp.table"
        assert "solve" in text and "self %" in text

    def test_self_time_limit(self, tree):
        text = render_self_time(tree, limit=2)
        assert "3 more span names" in text

    def test_critical_path_render(self, tree):
        text = render_critical_path(tree)
        assert "solve" in text and "dp.table" in text
        assert "solver=dp" in text

    def test_phase_render(self, tree):
        text = render_phases(tree, 200)
        assert "phase attribution" in text
        assert "50.0%" in text
