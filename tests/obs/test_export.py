"""Chrome trace-event export: conversion + schema round-trip."""

import json

import pytest

from repro import obs
from repro.obs.export import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.recorder import RunRecorder
from repro.obs.trace_report import load_trace


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "run.jsonl"
    with obs.recording(RunRecorder(path, metadata={"circuit": "c17"})):
        with obs.span("solve", solver="dp"):
            with obs.span("dp.solve"):
                obs.count("dp.table_cells", 64)
        obs.event("note", detail="hello")
        obs.event(
            "parallel.chunk_telemetry", chunk=0, pid=4242, seconds=0.01
        )
        obs.event(
            "parallel.chunk_telemetry", chunk=1, pid=4243, seconds=0.02
        )
    return path


class TestChromeTrace:
    def test_round_trips_schema_check(self, trace_path):
        payload = chrome_trace(trace_path)
        assert validate_chrome_trace(payload) == []
        # And survives an actual JSON round trip.
        assert validate_chrome_trace(json.loads(json.dumps(payload))) == []

    def test_spans_become_complete_events(self, trace_path):
        events = chrome_trace(trace_path)["traceEvents"]
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(xs) == {"solve", "dp.solve"}
        assert xs["solve"]["args"] == {"solver": "dp"}
        assert xs["solve"]["dur"] >= xs["dp.solve"]["dur"]

    def test_events_become_instants(self, trace_path):
        events = chrome_trace(trace_path)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {
            "note",
            "parallel.chunk_telemetry",
        }

    def test_worker_pids_get_own_tracks(self, trace_path):
        events = chrome_trace(trace_path)["traceEvents"]
        chunk_pids = {
            e["pid"]
            for e in events
            if e["name"] == "parallel.chunk_telemetry"
        }
        assert chunk_pids == {1, 2}  # synthetic per-worker tracks, not 0
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "worker pid 4242" in names
        assert "worker pid 4243" in names

    def test_counters_emitted(self, trace_path):
        events = chrome_trace(trace_path)["traceEvents"]
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["args"]["dp.table_cells"] == 64

    def test_metadata_carried(self, trace_path):
        payload = chrome_trace(trace_path)
        assert payload["otherData"]["circuit"] == "c17"
        assert payload["displayTimeUnit"] == "ms"

    def test_torn_records_skipped(self, trace_path, tmp_path):
        mangled = tmp_path / "mangled.jsonl"
        mangled.write_text(
            trace_path.read_text() + '{"event": "span", "name": 3}\n'
        )
        payload = chrome_trace(mangled)
        assert validate_chrome_trace(payload) == []
        assert len([e for e in payload["traceEvents"] if e["ph"] == "X"]) == 2

    def test_accepts_loaded_trace(self, trace_path):
        assert validate_chrome_trace(chrome_trace(load_trace(trace_path))) == []


class TestWriteChromeTrace:
    def test_written_file_is_valid_json(self, trace_path, tmp_path):
        out = tmp_path / "out.trace.json"
        assert write_chrome_trace(trace_path, out) == out
        obj = json.loads(out.read_text())
        assert validate_chrome_trace(obj) == []


class TestValidate:
    def test_rejects_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) != []

    def test_reports_event_problems(self):
        bad = {
            "traceEvents": [
                {"name": 7, "ph": "X", "ts": 0, "pid": 0, "tid": 0, "dur": 1},
                {"name": "ok", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
                {"name": "ok", "ph": "X", "ts": -5, "pid": 0, "tid": 0, "dur": 1},
                {"name": "ok", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
            ]
        }
        errors = validate_chrome_trace(bad)
        assert len(errors) == 4
        assert any("name" in e for e in errors)
        assert any("phase" in e for e in errors)
        assert any("ts" in e for e in errors)
        assert any("dur" in e for e in errors)

    def test_accepts_minimal_valid(self):
        ok = {
            "traceEvents": [
                {"name": "a", "ph": "i", "ts": 0, "pid": 0, "tid": 0}
            ]
        }
        assert validate_chrome_trace(ok) == []
