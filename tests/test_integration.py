"""End-to-end integration tests: the full pipeline on real workloads.

These mirror how a downstream user consumes the library: load/generate a
circuit, build a TPI instance from BIST parameters, solve, insert, and
verify the measured coverage matches the analytical plan.
"""

import pytest

from repro.circuit import (
    benchmark,
    generators,
    parse_bench,
    write_bench,
)
from repro.core import (
    TPIProblem,
    apply_test_points,
    evaluate_placement,
    evaluate_solution,
    prepare_for_tpi,
    solve_dp_heuristic,
    solve_greedy,
    solve_tree,
)
from repro.sim import FaultSimulator, UniformRandomSource, collapse_faults
from repro.testability import expected_coverage, detection_probabilities


class TestTreePipeline:
    """Fanout-free circuit → exact DP → physical insertion → coverage."""

    @pytest.mark.parametrize("name", ["wand16", "wor16", "corridor8"])
    def test_full_flow(self, name):
        circuit = benchmark(name)
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_tree(problem, margin=1.5)
        assert solution.feasible

        # Analytical plan holds continuously.
        assert evaluate_placement(problem, solution.points).is_feasible()

        # Physical insertion preserves wiring discipline.
        insertion = apply_test_points(circuit, solution.points)
        insertion.circuit.validate()

        # Measured coverage confirms the plan.
        report = evaluate_solution(problem, solution, 4096)
        assert report.modified_coverage > 0.99
        assert report.modified_coverage >= report.baseline_coverage


class TestGeneralPipeline:
    @pytest.mark.parametrize("name", ["rprmix", "eqcmp12"])
    def test_heuristic_flow(self, name):
        circuit = prepare_for_tpi(benchmark(name))
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_dp_heuristic(problem)
        report = evaluate_solution(problem, solution, 4096)
        assert report.modified_coverage > 0.98
        assert report.coverage_gain >= 0.0

    def test_dp_heuristic_vs_greedy_shape(self):
        """The paper's headline comparison: both fix the circuit; the DP
        side uses structure (its cost is at worst moderately higher under
        its safety margin, never catastrophically so)."""
        circuit = prepare_for_tpi(benchmark("rprmix"))
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        dp = solve_dp_heuristic(problem)
        greedy = solve_greedy(problem)
        assert dp.feasible and greedy.feasible
        assert dp.cost <= 4 * greedy.cost  # sanity band, not a proof


class TestAnalyticalVsMeasured:
    def test_expected_coverage_tracks_measured(self):
        """COP-predicted coverage ≈ measured coverage on a tree circuit.

        COP is exact on trees, so the analytic expectation must match the
        Monte-Carlo average (several pattern-set realizations keep the
        statistical noise below the tolerance).
        """
        circuit = benchmark("rtree60")
        n = 1024
        probs = detection_probabilities(circuit)
        predicted = expected_coverage(probs, n)
        sim = FaultSimulator(circuit)
        fault_list = list(probs)
        measured = []
        for seed in range(5):
            stim = UniformRandomSource(seed=seed).generate(circuit.inputs, n)
            measured.append(sim.run(stim, n, faults=fault_list).coverage())
        mean_measured = sum(measured) / len(measured)
        assert predicted == pytest.approx(mean_measured, abs=0.03)


class TestBenchRoundTripPipeline:
    def test_solve_through_file_format(self, tmp_path):
        """Serialize → parse → solve gives the same placement."""
        circuit = generators.wide_and_cone(8)
        reparsed = parse_bench(write_bench(circuit), name=circuit.name)
        p1 = TPIProblem.from_test_length(circuit, n_patterns=512)
        p2 = TPIProblem.from_test_length(reparsed, n_patterns=512)
        s1 = solve_tree(p1, margin=1.5)
        s2 = solve_tree(p2, margin=1.5)
        assert s1.points == s2.points
        assert s1.cost == s2.cost


class TestDeterminism:
    def test_solvers_deterministic(self):
        circuit = benchmark("rprmix")
        problem = TPIProblem.from_test_length(circuit, n_patterns=2048)
        a = solve_dp_heuristic(problem)
        b = solve_dp_heuristic(problem)
        assert a.points == b.points and a.cost == b.cost

    def test_coverage_measurement_deterministic(self):
        circuit = benchmark("wand16")
        problem = TPIProblem.from_test_length(circuit, n_patterns=1024)
        solution = solve_tree(problem, margin=1.5)
        r1 = evaluate_solution(problem, solution, 1024)
        r2 = evaluate_solution(problem, solution, 1024)
        assert r1.modified_coverage == r2.modified_coverage
