"""Unit tests for structural transforms: function preservation is the law."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    GateType,
    collapse_buffers,
    factorize_to_two_input,
    generators,
    sweep_dead_logic,
)
from repro.sim import LogicSimulator, UniformRandomSource


def outputs_equal(c1, c2, n_patterns=256, seed=7):
    """Simulate both circuits on shared random stimulus; compare POs."""
    assert c1.inputs == c2.inputs
    stim = UniformRandomSource(seed=seed).generate(c1.inputs, n_patterns)
    v1 = LogicSimulator(c1).run(stim, n_patterns)
    v2 = LogicSimulator(c2).run(stim, n_patterns)
    assert c1.outputs == c2.outputs
    return all(v1[po] == v2[po] for po in c1.outputs)


def wide_gate_circuit(gate_type, width):
    b = CircuitBuilder(f"wide_{gate_type.value}")
    ins = b.inputs(*[f"x{i}" for i in range(width)])
    b.output(b.gate(gate_type, ins, name="y"))
    return b.build()


class TestFactorize:
    @pytest.mark.parametrize(
        "gate_type",
        [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR],
    )
    @pytest.mark.parametrize("width", [3, 4, 5, 8])
    def test_wide_gate_preserved(self, gate_type, width):
        original = wide_gate_circuit(gate_type, width)
        flat = factorize_to_two_input(original)
        assert all(len(g.fanins) <= 2 for g in flat.gates)
        assert outputs_equal(original, flat)

    def test_two_input_circuit_unchanged(self):
        c = generators.c17()
        flat = factorize_to_two_input(c)
        assert flat.stats() == c.stats()

    def test_mixed_circuit(self):
        original = generators.equality_comparator(9)
        flat = factorize_to_two_input(original)
        assert all(len(g.fanins) <= 2 for g in flat.gates)
        assert outputs_equal(original, flat)

    def test_output_names_preserved(self):
        original = wide_gate_circuit(GateType.NAND, 6)
        flat = factorize_to_two_input(original)
        assert flat.outputs == original.outputs


class TestSweep:
    def test_removes_dead_gates(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        y = b.and_(a, c, name="y")
        b.gate(GateType.NOT, [a], name="dead")
        b.output(y)
        circuit = b.build(validate=False)
        swept = sweep_dead_logic(circuit)
        assert "dead" not in swept
        assert "y" in swept
        assert swept.inputs == circuit.inputs  # PIs always kept

    def test_keeps_live_logic_intact(self):
        c = generators.ripple_carry_adder(4)
        swept = sweep_dead_logic(c)
        assert swept.stats() == c.stats()
        assert outputs_equal(c, swept)


class TestCollapseBuffers:
    def test_splices_out_buffers(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        f1 = b.buf(a, name="f1")
        y = b.and_(f1, c, name="y")
        b.output(y)
        circuit = b.build()
        out = collapse_buffers(circuit)
        assert "f1" not in out
        assert out.node("y").fanins == ("a", "b")
        assert outputs_equal(circuit, out)

    def test_output_buffer_kept(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        y = b.buf(a, name="y")
        b.output(y)
        circuit = b.build()
        out = collapse_buffers(circuit)
        assert "y" in out
        assert out.outputs == ["y"]

    def test_buffer_chains(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        f1 = b.buf(a)
        f2 = b.buf(f1)
        y = b.not_(f2, name="y")
        b.output(y)
        out = collapse_buffers(b.build())
        assert out.node("y").fanins == ("a",)
        assert out.gate_count() == 1
