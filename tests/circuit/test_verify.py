"""Tests for the equivalence checker."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    check_equivalence,
    factorize_to_two_input,
    generators,
)


def xor_pair():
    b = CircuitBuilder("x")
    a, c = b.inputs("a", "b")
    b.output(b.xor(a, c, name="y"))
    left = b.build()
    # De Morgan–style equivalent: (a AND NOT b) OR (NOT a AND b).
    b2 = CircuitBuilder("x")
    a, c = b2.inputs("a", "b")
    na = b2.not_(a)
    nc = b2.not_(c)
    b2.output(b2.or_(b2.and_(a, nc), b2.and_(na, c), name="y"))
    return left, b2.build()


class TestCheckEquivalence:
    def test_equivalent_pair_proved(self):
        left, right = xor_pair()
        result = check_equivalence(left, right)
        assert result.equivalent and result.exhaustive
        assert result.counterexample is None

    def test_mismatch_yields_counterexample(self):
        b = CircuitBuilder("x")
        a, c = b.inputs("a", "b")
        b.output(b.and_(a, c, name="y"))
        left = b.build()
        b2 = CircuitBuilder("x")
        a, c = b2.inputs("a", "b")
        b2.output(b2.or_(a, c, name="y"))
        right = b2.build()
        result = check_equivalence(left, right)
        assert not result.equivalent
        assignment, po = result.counterexample
        assert po == "y"
        # The counterexample really distinguishes the circuits.
        from repro.sim import simulate
        from repro.sim.bitops import pack_bits

        stim = {pi: assignment[pi] for pi in left.inputs}
        v1 = simulate(left, stim, 1)["y"]
        v2 = simulate(right, stim, 1)["y"]
        assert v1 != v2

    def test_interface_mismatch_rejected(self):
        left, _ = xor_pair()
        b = CircuitBuilder("other")
        a = b.input("a")
        b.output(b.not_(a, name="y"))
        with pytest.raises(ValueError, match="input interfaces"):
            check_equivalence(left, b.build())

    def test_random_fallback_for_wide_inputs(self):
        circuit = generators.equality_comparator(10)  # 20 inputs
        flat = factorize_to_two_input(circuit)
        result = check_equivalence(circuit, flat, exhaustive_limit=12)
        assert result.equivalent and not result.exhaustive

    def test_factorization_proved_equivalent(self):
        circuit = generators.equality_comparator(6)  # 12 inputs
        flat = factorize_to_two_input(circuit)
        result = check_equivalence(circuit, flat)
        assert result.equivalent and result.exhaustive
