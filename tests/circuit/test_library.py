"""Unit tests for the named benchmark registry."""

import pytest

from repro.circuit import BENCHMARKS, benchmark, benchmark_names, benchmark_suite


class TestRegistry:
    def test_all_constructible_and_valid(self):
        for name in benchmark_names():
            circuit = benchmark(name)
            circuit.validate()
            assert circuit.gate_count() > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark("nope")

    def test_suite_subset(self):
        suite = benchmark_suite(["c17", "wand16"])
        assert set(suite) == {"c17", "wand16"}

    def test_suite_full(self):
        suite = benchmark_suite()
        assert set(suite) == set(BENCHMARKS)

    def test_deterministic(self):
        a = benchmark("rdag200")
        b = benchmark("rdag200")
        assert a.node_names == b.node_names
