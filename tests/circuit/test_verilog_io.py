"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    CircuitError,
    GateType,
    check_equivalence,
    generators,
    parse_verilog,
    parse_verilog_file,
    write_verilog,
    write_verilog_file,
)

C17_VERILOG = """
// ISCAS c17 in structural Verilog
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  output G22, G23;
  wire G10, G11, G16, G19;
  nand g0 (G10, G1, G3);
  nand g1 (G11, G3, G6);
  nand g2 (G16, G2, G11);
  nand g3 (G19, G11, G7);
  nand g4 (G22, G10, G16);
  nand g5 (G23, G16, G19);
endmodule
"""


class TestParse:
    def test_c17(self):
        circuit = parse_verilog(C17_VERILOG)
        assert circuit.name == "c17"
        assert circuit.inputs == ["G1", "G2", "G3", "G6", "G7"]
        assert circuit.outputs == ["G22", "G23"]
        assert circuit.gate_count() == 6
        reference = generators.c17()
        assert check_equivalence(reference, circuit).equivalent

    def test_comments_stripped(self):
        text = C17_VERILOG.replace(
            "wire G10", "/* block\ncomment */ wire G10"
        )
        parse_verilog(text).validate()

    def test_out_of_order_instances(self):
        text = """
        module t (a, y);
          input a; output y;
          wire w;
          not g1 (y, w);
          buf g0 (w, a);
        endmodule
        """
        circuit = parse_verilog(text)
        assert circuit.depth() == 2

    def test_missing_module_rejected(self):
        with pytest.raises(CircuitError, match="module"):
            parse_verilog("wire w;\n")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(CircuitError, match="endmodule"):
            parse_verilog("module t (a); input a;")

    def test_undriven_net_rejected(self):
        text = "module t (a, y); input a; output y; and g (y, a, ghost); endmodule"
        with pytest.raises(CircuitError, match="undriven"):
            parse_verilog(text)

    def test_constant_literals(self):
        text = """
        module t (a, y, z);
          input a; output y, z;
          buf g0 (z, 1'b1);
          and g1 (y, a, 1'b0);
        endmodule
        """
        circuit = parse_verilog(text)
        assert circuit.node("z").gate_type is GateType.CONST1
        # The AND has a shared tie-0 node as one input.
        tie = [fi for fi in circuit.node("y").fanins if fi != "a"][0]
        assert circuit.node(tie).gate_type is GateType.CONST0


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make",
        [
            generators.c17,
            lambda: generators.ripple_carry_adder(4),
            lambda: generators.random_dag(8, 40, seed=2),
            lambda: generators.parity_tree(8),
        ],
    )
    def test_write_parse_equivalent(self, make):
        original = make()
        back = parse_verilog(write_verilog(original))
        assert back.inputs == original.inputs
        assert back.outputs == original.outputs
        assert check_equivalence(original, back).equivalent

    def test_const_cells_round_trip(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        z = b.const1(name="tie1")
        b.output(b.and_(a, z, name="y"))
        original = b.build()
        back = parse_verilog(write_verilog(original))
        assert check_equivalence(original, back).equivalent

    def test_file_round_trip(self, tmp_path):
        circuit = generators.c17()
        path = tmp_path / "c17.v"
        write_verilog_file(circuit, path)
        back = parse_verilog_file(path)
        assert back.name == "c17"
        assert check_equivalence(circuit, back).equivalent
