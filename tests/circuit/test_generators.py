"""Functional correctness of the benchmark circuit generators.

Arithmetic circuits must compute arithmetic; that is checked exhaustively
for small widths via pattern-parallel simulation.
"""

import itertools

import pytest

from repro.circuit import generators, is_fanout_free
from repro.sim import ExhaustiveSource, LogicSimulator


def exhaustive_values(circuit):
    """Simulate all input combinations; return {output: packed word} plus n."""
    n = len(circuit.inputs)
    n_patterns = 1 << n
    stim = ExhaustiveSource().generate(circuit.inputs, n_patterns)
    values = LogicSimulator(circuit).run(stim, n_patterns)
    return values, n_patterns


def bit(word, i):
    return (word >> i) & 1


class TestC17:
    def test_structure(self):
        c = generators.c17()
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.gate_count() == 6


class TestParity:
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_computes_parity(self, width):
        c = generators.parity_tree(width)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        for p in range(n_patterns):
            expected = bin(p).count("1") & 1
            assert bit(out, p) == expected

    def test_fanout_free(self):
        assert is_fanout_free(generators.parity_tree(16))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            generators.parity_tree(1)


class TestAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_adds(self, width):
        c = generators.ripple_carry_adder(width)
        values, n_patterns = exhaustive_values(c)
        # Input order: a0..aw-1, b0..bw-1, cin.
        for p in range(n_patterns):
            a = sum(bit(values[f"a{i}"], p) << i for i in range(width))
            b = sum(bit(values[f"b{i}"], p) << i for i in range(width))
            cin = bit(values["cin"], p)
            total = a + b + cin
            got = sum(
                bit(values[f"sum{i}"], p) << i for i in range(width)
            ) + (bit(values[c.outputs[-1]], p) << width)
            assert got == total


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3])
    def test_multiplies(self, width):
        c = generators.array_multiplier(width)
        values, n_patterns = exhaustive_values(c)
        outs = c.outputs
        for p in range(n_patterns):
            a = sum(bit(values[f"a{i}"], p) << i for i in range(width))
            b = sum(bit(values[f"b{i}"], p) << i for i in range(width))
            got = sum(bit(values[o], p) << i for i, o in enumerate(outs))
            assert got == a * b, f"{a}*{b}"


class TestComparators:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_equality(self, width):
        c = generators.equality_comparator(width)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        for p in range(n_patterns):
            a = sum(bit(values[f"a{i}"], p) << i for i in range(width))
            b = sum(bit(values[f"b{i}"], p) << i for i in range(width))
            assert bit(out, p) == (1 if a == b else 0)

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_magnitude(self, width):
        c = generators.magnitude_comparator(width)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        for p in range(n_patterns):
            a = sum(bit(values[f"a{i}"], p) << i for i in range(width))
            b = sum(bit(values[f"b{i}"], p) << i for i in range(width))
            assert bit(out, p) == (1 if a > b else 0), f"{a}>{b}"


class TestMuxDecoder:
    @pytest.mark.parametrize("select_bits", [1, 2])
    def test_mux_selects(self, select_bits):
        c = generators.mux_tree(select_bits)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        n_data = 1 << select_bits
        for p in range(n_patterns):
            sel = sum(
                bit(values[f"s{i}"], p) << i for i in range(select_bits)
            )
            expected = bit(values[f"d{sel}"], p)
            assert bit(out, p) == expected

    @pytest.mark.parametrize("select_bits", [1, 2, 3])
    def test_decoder_one_hot(self, select_bits):
        c = generators.decoder(select_bits)
        values, n_patterns = exhaustive_values(c)
        for p in range(n_patterns):
            en = bit(values["en"], p)
            sel = sum(
                bit(values[f"s{i}"], p) << i for i in range(select_bits)
            )
            for code in range(1 << select_bits):
                expected = 1 if (en and code == sel) else 0
                assert bit(values[f"y{code}"], p) == expected


class TestALU:
    def test_ops(self):
        width = 2
        c = generators.alu_slice(width)
        values, n_patterns = exhaustive_values(c)
        for p in range(n_patterns):
            a = sum(bit(values[f"a{i}"], p) << i for i in range(width))
            b = sum(bit(values[f"b{i}"], p) << i for i in range(width))
            op = (bit(values["op1"], p) << 1) | bit(values["op0"], p)
            y = sum(bit(values[f"y{i}"], p) << i for i in range(width))
            carry = bit(values[c.outputs[-1]], p)
            if op == 0:
                assert y == (a & b)
            elif op == 1:
                assert y == (a | b)
            elif op == 2:
                assert y == (a ^ b)
            else:
                total = a + b
                assert y == (total % (1 << width))
                assert carry == (total >> width)


class TestRandomGenerators:
    def test_random_tree_is_fanout_free_and_deterministic(self):
        c1 = generators.random_tree(25, seed=11)
        c2 = generators.random_tree(25, seed=11)
        assert is_fanout_free(c1)
        assert c1.node_names == c2.node_names
        assert c1.gate_count() >= 25  # inverters may add gates

    def test_random_tree_seeds_differ(self):
        c1 = generators.random_tree(25, seed=1)
        c2 = generators.random_tree(25, seed=2)
        assert c1.node_names != c2.node_names or [
            n.gate_type for n in c1.gates
        ] != [n.gate_type for n in c2.gates]

    def test_random_dag_valid_and_deterministic(self):
        c1 = generators.random_dag(12, 100, seed=4)
        c2 = generators.random_dag(12, 100, seed=4)
        c1.validate()
        assert c1.node_names == c2.node_names
        assert c1.gate_count() == 100

    def test_random_dag_has_reconvergence(self):
        from repro.circuit import has_reconvergent_fanout

        assert has_reconvergent_fanout(generators.random_dag(12, 100, seed=4))


class TestRPRCircuits:
    def test_wide_and_is_and(self):
        c = generators.wide_and_cone(8)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        # Only the all-ones pattern drives the output to 1.
        assert out.bit_count() == 1
        assert bit(out, n_patterns - 1) == 1

    def test_wide_or_is_or(self):
        c = generators.wide_or_cone(8)
        values, n_patterns = exhaustive_values(c)
        out = values[c.outputs[0]]
        # Only the all-zeros pattern keeps the output 0.
        assert out.bit_count() == n_patterns - 1
        assert bit(out, 0) == 0

    def test_corridor_structure(self):
        c = generators.rpr_corridor(6)
        assert c.depth() == 6
        assert is_fanout_free(c)

    def test_rpr_mixed_valid(self):
        c = generators.rpr_mixed(cone_width=4, corridor_length=3, n_blocks=2)
        c.validate()
        assert len(c.outputs) == 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            generators.wide_and_cone(1)
        with pytest.raises(ValueError):
            generators.rpr_corridor(0)
        with pytest.raises(ValueError):
            generators.random_tree(0)
        with pytest.raises(ValueError):
            generators.random_dag(1, 5)


class TestBarrelShifter:
    @pytest.mark.parametrize("width_log2", [1, 2])
    def test_rotates(self, width_log2):
        c = generators.barrel_shifter(width_log2)
        values, n_patterns = exhaustive_values(c)
        width = 1 << width_log2
        outs = c.outputs
        for p in range(n_patterns):
            data = [bit(values[f"d{i}"], p) for i in range(width)]
            shift = sum(
                bit(values[f"s{i}"], p) << i for i in range(width_log2)
            )
            for i in range(width):
                expected = data[(i - shift) % width]
                assert bit(values[outs[i]], p) == expected, (p, i, shift)

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.barrel_shifter(0)


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 4, 6])
    def test_grants_lowest_requester(self, width):
        c = generators.priority_encoder(width)
        values, n_patterns = exhaustive_values(c)
        for p in range(n_patterns):
            reqs = [bit(values[f"r{i}"], p) for i in range(width)]
            grants = [bit(values[f"g{i}"], p) for i in range(width)]
            expected = [0] * width
            for i, r in enumerate(reqs):
                if r:
                    expected[i] = 1
                    break
            assert grants == expected, (p, reqs)

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.priority_encoder(1)


class TestPopcount:
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_counts_ones(self, width):
        c = generators.popcount_tree(width)
        values, n_patterns = exhaustive_values(c)
        outs = c.outputs
        for p in range(n_patterns):
            ones = sum(bit(values[f"x{i}"], p) for i in range(width))
            got = sum(bit(values[o], p) << i for i, o in enumerate(outs))
            assert got == ones, (p, ones)


class TestGrayToBinary:
    @pytest.mark.parametrize("width", [2, 3, 5])
    def test_converts(self, width):
        c = generators.gray_to_binary(width)
        values, n_patterns = exhaustive_values(c)
        for p in range(n_patterns):
            gray = sum(bit(values[f"g{i}"], p) << i for i in range(width))
            binary = gray
            shift = 1
            while shift < width:
                binary ^= binary >> shift
                shift <<= 1
            got = sum(
                bit(values[f"b{i}"], p) << i for i in range(width)
            )
            assert got == binary, (p, gray)
