"""Unit tests for gate semantics: truth tables, probability algebra."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gates import (
    GateType,
    controlled_response,
    controlling_value,
    evaluate_gate,
    gate_function,
    inversion_parity,
    is_monotone,
    output_probability,
    side_input_sensitization_probability,
    supported_fanin,
)

BINARY_TRUTH = {
    GateType.AND: [0, 0, 0, 1],
    GateType.OR: [0, 1, 1, 1],
    GateType.NAND: [1, 1, 1, 0],
    GateType.NOR: [1, 0, 0, 0],
    GateType.XOR: [0, 1, 1, 0],
    GateType.XNOR: [1, 0, 0, 1],
}


class TestTruthTables:
    @pytest.mark.parametrize("gate_type", list(BINARY_TRUTH))
    def test_two_input_truth_table(self, gate_type):
        for idx, (a, b) in enumerate(itertools.product([0, 1], repeat=2)):
            # idx bit order: a is the outer loop → recompute explicitly
            expected = BINARY_TRUTH[gate_type][(a << 1) | b]
            got = evaluate_gate(gate_type, [a, b], 1)
            assert got == expected, f"{gate_type}({a},{b})"

    def test_not_buf(self):
        assert evaluate_gate(GateType.NOT, [0], 1) == 1
        assert evaluate_gate(GateType.NOT, [1], 1) == 0
        assert evaluate_gate(GateType.BUF, [0], 1) == 0
        assert evaluate_gate(GateType.BUF, [1], 1) == 1

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, [], 0b111) == 0
        assert evaluate_gate(GateType.CONST1, [], 0b111) == 0b111

    @pytest.mark.parametrize("gate_type", list(BINARY_TRUTH))
    def test_three_input_reduction(self, gate_type):
        """Wide symmetric gates behave as the fold of their base function."""
        for bits in itertools.product([0, 1], repeat=3):
            got = evaluate_gate(gate_type, list(bits), 1)
            if gate_type in (GateType.AND, GateType.NAND):
                base = bits[0] & bits[1] & bits[2]
            elif gate_type in (GateType.OR, GateType.NOR):
                base = bits[0] | bits[1] | bits[2]
            else:
                base = bits[0] ^ bits[1] ^ bits[2]
            if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR):
                base ^= 1
            assert got == base

    def test_packed_evaluation_matches_bitwise(self):
        mask = 0b1111
        a, b = 0b0011, 0b0101
        assert evaluate_gate(GateType.AND, [a, b], mask) == 0b0001
        assert evaluate_gate(GateType.NOR, [a, b], mask) == 0b1000
        assert evaluate_gate(GateType.XOR, [a, b], mask) == 0b0110

    def test_unknown_gate_type_raises(self):
        with pytest.raises(ValueError):
            evaluate_gate("bogus", [1, 1], 1)  # type: ignore[arg-type]


class TestGateFunction:
    def test_scalar_wrapper(self):
        f = gate_function(GateType.NAND)
        assert f([1, 1]) == 0
        assert f([0, 1]) == 1


class TestControllingValues:
    def test_and_family(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0
        assert controlled_response(GateType.AND) == 0
        assert controlled_response(GateType.NAND) == 1

    def test_or_family(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1
        assert controlled_response(GateType.OR) == 1
        assert controlled_response(GateType.NOR) == 0

    def test_xor_has_none(self):
        assert controlling_value(GateType.XOR) is None
        assert controlled_response(GateType.XNOR) is None

    def test_inversion_parity(self):
        assert inversion_parity(GateType.NAND) == 1
        assert inversion_parity(GateType.AND) == 0
        assert inversion_parity(GateType.NOT) == 1

    def test_monotone(self):
        assert is_monotone(GateType.AND)
        assert is_monotone(GateType.BUF)
        assert not is_monotone(GateType.NAND)
        assert not is_monotone(GateType.XOR)


class TestFaninRanges:
    def test_symmetric_unbounded(self):
        lo, hi = supported_fanin(GateType.AND)
        assert lo == 2 and hi is None

    def test_unary(self):
        assert supported_fanin(GateType.NOT) == (1, 1)

    def test_nullary(self):
        assert supported_fanin(GateType.CONST0) == (0, 0)


class TestOutputProbability:
    @pytest.mark.parametrize("gate_type", list(BINARY_TRUTH))
    @given(pa=st.floats(0, 1), pb=st.floats(0, 1))
    def test_matches_truth_table_expectation(self, gate_type, pa, pb):
        """P[out=1] must equal the exact expectation over independent inputs."""
        expected = 0.0
        for a, b in itertools.product([0, 1], repeat=2):
            w = (pa if a else 1 - pa) * (pb if b else 1 - pb)
            expected += w * evaluate_gate(gate_type, [a, b], 1)
        got = output_probability(gate_type, [pa, pb])
        assert got == pytest.approx(expected, abs=1e-12)

    def test_inverter(self):
        assert output_probability(GateType.NOT, [0.3]) == pytest.approx(0.7)

    def test_constants(self):
        assert output_probability(GateType.CONST0, []) == 0.0
        assert output_probability(GateType.CONST1, []) == 1.0

    def test_wide_xor_chain(self):
        # XOR of three fair inputs is fair.
        assert output_probability(GateType.XOR, [0.5, 0.5, 0.5]) == pytest.approx(0.5)


class TestSensitization:
    def test_and_needs_ones(self):
        assert side_input_sensitization_probability(
            GateType.AND, [0.5, 0.5]
        ) == pytest.approx(0.25)

    def test_nor_needs_zeros(self):
        assert side_input_sensitization_probability(
            GateType.NOR, [0.25]
        ) == pytest.approx(0.75)

    def test_xor_always_propagates(self):
        assert side_input_sensitization_probability(GateType.XOR, [0.9]) == 1.0

    def test_unary_trivial(self):
        assert side_input_sensitization_probability(GateType.NOT, []) == 1.0

    def test_const_raises(self):
        with pytest.raises(ValueError):
            side_input_sensitization_probability(GateType.CONST0, [])
