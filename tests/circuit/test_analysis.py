"""Unit tests for topology analysis: FFRs, reconvergence, tree checks."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    fanout_free_regions,
    generators,
    has_reconvergent_fanout,
    is_fanout_free,
    reconvergent_stems,
)


class TestFanoutFree:
    def test_tree_is_fanout_free(self):
        assert is_fanout_free(generators.random_tree(20, seed=1))

    def test_parity_tree_is_fanout_free(self):
        assert is_fanout_free(generators.parity_tree(16))

    def test_c17_is_not(self, c17):
        assert not is_fanout_free(c17)

    def test_diamond_is_not(self, diamond):
        assert not is_fanout_free(diamond)


class TestReconvergence:
    def test_diamond_reconverges(self, diamond):
        assert has_reconvergent_fanout(diamond)
        assert "s" in reconvergent_stems(diamond)

    def test_tree_does_not(self):
        c = generators.random_tree(30, seed=5)
        assert reconvergent_stems(c) == []

    def test_non_reconvergent_fanout(self):
        # A stem whose branches never meet again is fanout, not reconvergence.
        b = CircuitBuilder("t")
        a, c, d = b.inputs("a", "b", "c")
        s = b.and_(a, c, name="s")
        y1 = b.not_(s, name="y1")
        y2 = b.and_(s, d, name="y2")
        b.output(y1, y2)
        circuit = b.build()
        assert not is_fanout_free(circuit)
        assert not has_reconvergent_fanout(circuit)

    def test_c17_reconverges(self, c17):
        stems = reconvergent_stems(c17)
        assert "G11" in stems or "G16" in stems  # known c17 structure


class TestFFRDecomposition:
    def test_partition_property(self):
        """Every gate belongs to exactly one region."""
        for make in (generators.c17, lambda: generators.random_dag(10, 80, seed=3)):
            circuit = make()
            regions = fanout_free_regions(circuit)
            seen = {}
            for idx, region in enumerate(regions):
                for m in region.members:
                    assert m not in seen, f"{m} in two regions"
                    seen[m] = idx
            gate_names = {g.name for g in circuit.gates}
            assert set(seen) == gate_names

    def test_roots_are_stems_or_outputs(self):
        circuit = generators.random_dag(10, 80, seed=3)
        out_set = set(circuit.outputs)
        for region in fanout_free_regions(circuit):
            assert (
                region.root in out_set
                or circuit.fanout_count(region.root) != 1
            )

    def test_internal_members_have_single_fanout(self):
        circuit = generators.c17()
        for region in fanout_free_regions(circuit):
            for m in region.members:
                if m != region.root:
                    assert circuit.fanout_count(m) == 1

    def test_leaves_are_boundary(self):
        circuit = generators.c17()
        for region in fanout_free_regions(circuit):
            for leaf in region.leaves:
                node = circuit.node(leaf)
                assert node.is_input or leaf not in region.members

    def test_tree_gives_one_region_per_output(self):
        circuit = generators.parity_tree(8)
        regions = fanout_free_regions(circuit)
        assert len(regions) == 1
        assert regions[0].root == circuit.outputs[0]
        assert regions[0].size() == circuit.gate_count()

    def test_region_size_helper(self):
        region = fanout_free_regions(generators.parity_tree(4))[0]
        assert region.size() == len(region.members)
