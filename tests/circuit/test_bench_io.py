"""Unit tests for ISCAS .bench parsing and writing."""

import pytest

from repro.circuit import (
    CircuitError,
    GateType,
    generators,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)

SAMPLE = """
# sample circuit
INPUT(a)
INPUT(b)
OUTPUT(y)

n1 = NAND(a, b)
y  = NOT(n1)
"""


class TestParse:
    def test_basic(self):
        c = parse_bench(SAMPLE, name="sample")
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["y"]
        assert c.node("n1").gate_type is GateType.NAND
        assert c.node("y").gate_type is GateType.NOT

    def test_comments_and_blank_lines_ignored(self):
        c = parse_bench("# x\n\nINPUT(a)\nOUTPUT(y)\ny = BUFF(a) # trailing\n")
        assert c.node("y").gate_type is GateType.BUF

    def test_out_of_order_definitions(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(n1)\nn1 = BUF(a)\n"
        c = parse_bench(text)
        assert c.depth() == 2

    def test_aliases(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = INV(a)\n")
        assert c.node("y").gate_type is GateType.NOT

    def test_case_insensitive_keywords(self):
        c = parse_bench("input(a)\noutput(y)\ny = not(a)\n")
        assert c.outputs == ["y"]

    def test_dff_scan_abstraction(self):
        text = (
            "INPUT(a)\nOUTPUT(y)\n"
            "q = DFF(d)\n"
            "d = AND(a, q)\n"
            "y = NOT(q)\n"
        )
        c = parse_bench(text, scan=True)
        # Q pin becomes a pseudo input, D pin a pseudo output.
        assert "q" in c.inputs
        assert "d" in c.outputs

    def test_dff_rejected_without_scan(self):
        with pytest.raises(CircuitError, match="scan"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n", scan=False)

    def test_unknown_cell_rejected(self):
        with pytest.raises(CircuitError, match="unknown .bench cell"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_unparseable_line_rejected(self):
        with pytest.raises(CircuitError, match="unparseable"):
            parse_bench("INPUT(a)\nOUTPUT(a)\nthis is not bench\n")

    def test_undefined_signal_rejected(self):
        with pytest.raises(CircuitError, match="undefined signal 'ghost'"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(CircuitError, match="duplicate definition"):
            parse_bench(
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                "y = AND(a, b)\ny = OR(a, b)\n"
            )

    def test_combinational_cycle_rejected(self):
        with pytest.raises(CircuitError, match="cycle"):
            parse_bench(
                "INPUT(a)\nOUTPUT(y)\n"
                "p = AND(a, q)\nq = AND(a, p)\ny = BUF(p)\n"
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make",
        [
            generators.c17,
            lambda: generators.ripple_carry_adder(4),
            lambda: generators.rpr_mixed(cone_width=4, corridor_length=3),
            lambda: generators.random_dag(8, 40, seed=5),
        ],
    )
    def test_write_parse_identity(self, make):
        original = make()
        text = write_bench(original)
        back = parse_bench(text, name=original.name)
        assert back.inputs == original.inputs
        assert back.outputs == original.outputs
        assert back.stats() == original.stats()
        for node in original.nodes():
            if node.is_gate:
                assert back.node(node.name).gate_type is node.gate_type
                assert back.node(node.name).fanins == node.fanins

    def test_file_round_trip(self, tmp_path):
        c = generators.c17()
        path = tmp_path / "c17.bench"
        write_bench_file(c, path)
        back = parse_bench_file(path)
        assert back.name == "c17"
        assert back.stats() == c.stats()
