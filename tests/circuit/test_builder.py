"""Unit tests for the fluent CircuitBuilder."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType


class TestBuilder:
    def test_typed_helpers(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        y = b.or_(b.and_(a, c), b.xor(a, c))
        b.output(y)
        circuit = b.build()
        assert circuit.gate_count() == 3
        assert circuit.outputs == [y]

    def test_auto_names_unique(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "b")
        g1 = b.and_(a, c)
        g2 = b.and_(a, c)
        assert g1 != g2

    def test_explicit_names(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "b")
        y = b.nand(a, c, name="myname")
        assert y == "myname"
        b.output(y)
        assert "myname" in b.build()

    def test_unary_and_const_helpers(self):
        b = CircuitBuilder()
        a = b.input("a")
        n = b.not_(a)
        f = b.buf(n)
        z = b.const0()
        o = b.const1()
        y = b.or_(f, z, o)
        b.output(y)
        circuit = b.build()
        assert circuit.node(z).gate_type is GateType.CONST0
        assert circuit.node(o).gate_type is GateType.CONST1

    def test_build_validates(self):
        b = CircuitBuilder()
        b.input("a")
        with pytest.raises(CircuitError):
            b.build()  # no outputs

    def test_build_without_validation(self):
        b = CircuitBuilder()
        b.input("a")
        circuit = b.build(validate=False)
        assert circuit.outputs == []

    def test_circuit_property_peeks(self):
        b = CircuitBuilder()
        b.input("a")
        assert "a" in b.circuit

    def test_multi_output(self):
        b = CircuitBuilder()
        a, c = b.inputs("a", "b")
        g = b.and_(a, c)
        b.output(g, a)
        circuit = b.build()
        assert circuit.outputs == [g, "a"]
