"""Unit tests for the Circuit netlist DAG."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType


def build_simple():
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.mark_output("g2")
    return c


class TestConstruction:
    def test_inputs_and_gates(self):
        c = build_simple()
        assert c.inputs == ["a", "b"]
        assert [g.name for g in c.gates] == ["g1", "g2"]
        assert c.outputs == ["g2"]
        assert len(c) == 4
        assert c.gate_count() == 2

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="duplicate"):
            c.add_input("a")
        with pytest.raises(CircuitError, match="duplicate"):
            c.add_gate("a", GateType.NOT, ["a"])

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().add_input("")

    def test_unknown_fanin_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="unknown node"):
            c.add_gate("g", GateType.AND, ["a", "zz"])

    def test_arity_enforced(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_gate("g", GateType.AND, ["a"])  # AND needs ≥ 2
        with pytest.raises(CircuitError):
            c.add_gate("g", GateType.NOT, ["a", "a"])  # NOT needs exactly 1

    def test_mark_output_unknown(self):
        with pytest.raises(CircuitError):
            Circuit().mark_output("x")

    def test_mark_output_idempotent(self):
        c = build_simple()
        c.mark_output("g2")
        assert c.outputs == ["g2"]

    def test_unmark_output(self):
        c = build_simple()
        c.unmark_output("g2")
        assert c.outputs == []
        with pytest.raises(CircuitError):
            c.unmark_output("g2")


class TestDerivedStructure:
    def test_topological_order(self):
        c = build_simple()
        order = c.topological_order()
        assert order.index("a") < order.index("g1") < order.index("g2")
        assert order.index("b") < order.index("g1")

    def test_levels_and_depth(self):
        c = build_simple()
        levels = c.levels()
        assert levels["a"] == 0 and levels["b"] == 0
        assert levels["g1"] == 1 and levels["g2"] == 2
        assert c.depth() == 2

    def test_fanouts(self):
        c = build_simple()
        assert c.fanouts("a") == [("g1", 0)]
        assert c.fanouts("g1") == [("g2", 0)]
        assert c.fanouts("g2") == []
        assert c.fanout_count("a") == 1
        assert not c.is_stem("a")

    def test_stem_detection(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g1", GateType.NOT, ["a"])
        c.add_gate("g2", GateType.NOT, ["a"])
        c.mark_output("g1")
        c.mark_output("g2")
        assert c.is_stem("a")
        assert sorted(c.fanouts("a")) == [("g1", 0), ("g2", 0)]

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g1", GateType.AND, ["a", "a"])
        c.add_gate("g2", GateType.AND, ["g1", "a"])
        c.replace_fanin("g1", 1, "g2")  # creates g1 -> g2 -> g1
        c.mark_output("g2")
        with pytest.raises(CircuitError, match="cycle"):
            c.topological_order()

    def test_replace_fanin_errors(self):
        c = build_simple()
        with pytest.raises(CircuitError):
            c.replace_fanin("a", 0, "b")  # not a gate
        with pytest.raises(CircuitError):
            c.replace_fanin("g1", 5, "b")  # no such pin
        with pytest.raises(CircuitError):
            c.replace_fanin("g1", 0, "zz")  # unknown driver


class TestCones:
    def test_fanin_cone(self):
        c = build_simple()
        assert c.fanin_cone("g2") == {"a", "b", "g1", "g2"}
        assert c.fanin_cone("a") == {"a"}

    def test_fanout_cone(self):
        c = build_simple()
        assert c.fanout_cone("a") == {"a", "g1", "g2"}
        assert c.fanout_cone("g2") == {"g2"}


class TestUtility:
    def test_validate_requires_outputs(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="no primary outputs"):
            c.validate()

    def test_floating_nodes(self):
        c = build_simple()
        c.add_gate("dead", GateType.NOT, ["a"])
        assert c.floating_nodes() == ["dead"]

    def test_copy_is_independent(self):
        c = build_simple()
        d = c.copy("t2")
        d.add_gate("extra", GateType.NOT, ["a"])
        assert "extra" in d and "extra" not in c
        assert d.name == "t2"

    def test_fresh_name(self):
        c = build_simple()
        assert c.fresh_name("new") == "new"
        assert c.fresh_name("g1") == "g1_1"

    def test_stats(self):
        c = build_simple()
        s = c.stats()
        assert s == {
            "inputs": 2,
            "outputs": 1,
            "gates": 2,
            "nodes": 4,
            "depth": 2,
            "stems": 0,
        }

    def test_mutation_invalidates_caches(self):
        c = build_simple()
        assert c.depth() == 2
        c.add_gate("g3", GateType.NOT, ["g2"])
        c.mark_output("g3")
        assert c.depth() == 3
        assert ("g3", 0) in c.fanouts("g2")
