"""Shared fixtures: small reference circuits and TPI problem factories.

Also installs a per-test wall-clock timeout (SIGALRM based, no external
plugin needed): a hung solver loop fails its own test instead of wedging
the whole suite.  Tune with ``REPRO_TEST_TIMEOUT`` (seconds; 0 disables).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.circuit import CircuitBuilder, GateType, generators

_TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Abort any single test that runs longer than the timeout."""
    supported = (
        _TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not supported:
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test exceeded the {_TEST_TIMEOUT_S}s per-test timeout",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def and2():
    """y = a AND b."""
    b = CircuitBuilder("and2")
    a, c = b.inputs("a", "b")
    b.output(b.and_(a, c, name="y"))
    return b.build()


@pytest.fixture
def or2():
    """y = a OR b."""
    b = CircuitBuilder("or2")
    a, c = b.inputs("a", "b")
    b.output(b.or_(a, c, name="y"))
    return b.build()


@pytest.fixture
def chain3():
    """y = NOT(AND(a, OR(b, c))) — a 3-gate fanout-free chain."""
    b = CircuitBuilder("chain3")
    a, c, d = b.inputs("a", "b", "c")
    o = b.or_(c, d, name="o1")
    n = b.and_(a, o, name="a1")
    b.output(b.not_(n, name="y"))
    return b.build()


@pytest.fixture
def diamond():
    """Reconvergent diamond: s fans out to two paths that AND back together."""
    b = CircuitBuilder("diamond")
    a, c = b.inputs("a", "b")
    s = b.and_(a, c, name="s")
    p = b.not_(s, name="p")
    q = b.buf(s, name="q")
    b.output(b.and_(p, q, name="y"))
    return b.build()


@pytest.fixture
def c17():
    return generators.c17()


@pytest.fixture
def wand8():
    return generators.wide_and_cone(8)


@pytest.fixture
def small_tree():
    return generators.random_tree(10, seed=42)
