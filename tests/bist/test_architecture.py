"""Tests for the end-to-end BIST loop and aliasing accounting."""

import pytest

from repro.bist import BISTArchitecture, run_bist
from repro.circuit import benchmark, generators
from repro.core import TPIProblem, apply_test_points, solve_tree
from repro.sim import LFSRSource, UniformRandomSource


class TestRunBist:
    def test_partition_invariant(self, c17):
        arch = BISTArchitecture(n_patterns=256, misr_width=16)
        report = run_bist(c17, arch)
        assert len(report.signature_detected) + len(report.aliased) == len(
            report.output_detected
        )
        assert report.signature_coverage <= report.output_coverage

    def test_c17_full_coverage_wide_misr(self, c17):
        arch = BISTArchitecture(n_patterns=512, misr_width=24)
        report = run_bist(c17, arch)
        assert report.output_coverage == 1.0
        assert report.aliasing_rate <= 0.01
        assert report.signature_coverage >= 0.99

    def test_golden_signature_deterministic(self, c17):
        arch = BISTArchitecture(n_patterns=128, misr_width=16)
        r1 = run_bist(c17, arch)
        r2 = run_bist(c17, arch)
        assert r1.golden_signature == r2.golden_signature
        assert r1.signature_detected == r2.signature_detected

    def test_lfsr_stimulus_supported(self, c17):
        arch = BISTArchitecture(
            n_patterns=256, misr_width=16, source=LFSRSource(degree=20)
        )
        report = run_bist(c17, arch)
        assert report.output_coverage > 0.9

    def test_narrow_misr_aliases_more(self):
        """Shrinking the signature raises (or keeps) the aliasing rate on
        average; a 2-bit MISR against many detected faults must alias."""
        circuit = generators.random_dag(10, 120, seed=5)
        wide = run_bist(circuit, BISTArchitecture(n_patterns=128, misr_width=24))
        narrow = run_bist(circuit, BISTArchitecture(n_patterns=128, misr_width=2))
        assert len(narrow.output_detected) == len(wide.output_detected)
        assert narrow.aliasing_rate >= wide.aliasing_rate

    def test_aliasing_rate_tracks_two_to_minus_k(self):
        """Empirical aliasing ≈ 2^-k for a small k on a busy circuit."""
        circuit = generators.random_dag(10, 120, seed=5)
        report = run_bist(
            circuit, BISTArchitecture(n_patterns=128, misr_width=3)
        )
        expected = 2**-3
        assert report.aliasing_rate == pytest.approx(expected, abs=0.12)

    def test_empty_fault_list(self, c17):
        arch = BISTArchitecture(n_patterns=64, misr_width=8)
        report = run_bist(c17, arch, faults=[])
        assert report.output_coverage == 1.0
        assert report.signature_coverage == 1.0


class TestBistWithTestPoints:
    def test_modified_circuit_through_bist(self):
        """The full story: TPI fixes coverage, BIST still sees it after
        compaction."""
        circuit = benchmark("wand16")
        problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
        solution = solve_tree(problem, margin=1.5)
        insertion = apply_test_points(circuit, solution.points)
        arch = BISTArchitecture(
            n_patterns=4096, misr_width=24, source=UniformRandomSource(seed=2)
        )
        live = [m for m in insertion.fault_map.values() if m is not None]
        report = run_bist(insertion.circuit, arch, faults=live)
        assert report.output_coverage > 0.99
        assert report.signature_coverage > 0.98
