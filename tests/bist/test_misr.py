"""Unit tests for the MISR signature register."""

import random

import pytest

from repro.bist import MISR, signature_of_responses


class TestMISR:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            MISR(1)

    def test_deterministic(self):
        a, b = MISR(8), MISR(8)
        for d in [3, 5, 250, 0, 7]:
            assert a.clock(d) == b.clock(d)

    def test_zero_stream_from_zero_state_stays_zero(self):
        misr = MISR(8, seed=0)
        for _ in range(100):
            assert misr.clock(0) == 0

    def test_data_sensitivity(self):
        """A single-bit difference in one cycle changes the signature."""
        a, b = MISR(16), MISR(16)
        rng = random.Random(1)
        stream = [rng.getrandbits(16) for _ in range(64)]
        for d in stream:
            a.clock(d)
            b.clock(d)
        assert a.state == b.state
        a2, b2 = MISR(16), MISR(16)
        for i, d in enumerate(stream):
            a2.clock(d)
            b2.clock(d ^ (1 << 3) if i == 10 else d)
        assert a2.state != b2.state

    def test_reset(self):
        misr = MISR(8)
        misr.clock(255)
        misr.reset()
        assert misr.state == 0

    def test_state_bounded(self):
        misr = MISR(4)
        rng = random.Random(0)
        for _ in range(200):
            assert 0 <= misr.clock(rng.getrandbits(4)) < 16


class TestSignatureOfResponses:
    def test_matches_manual_clocking(self):
        responses = {"y0": 0b1011, "y1": 0b0110}
        sig = signature_of_responses(responses, ["y0", "y1"], 4, width=4)
        misr = MISR(4)
        for p in range(4):
            data = ((responses["y0"] >> p) & 1) | (((responses["y1"] >> p) & 1) << 1)
            misr.clock(data)
        assert sig == misr.state

    def test_output_folding(self):
        """More outputs than stages fold onto stages modulo the width."""
        responses = {"a": 0b1, "b": 0b0, "c": 0b1}
        sig = signature_of_responses(responses, ["a", "b", "c"], 1, width=2)
        # Stage 0 receives a XOR c = 0; stage 1 receives b = 0.
        misr = MISR(2)
        misr.clock(0)
        assert sig == misr.state

    def test_distinguishes_streams(self):
        good = {"y": 0b10110010}
        bad = {"y": 0b10110011}
        s1 = signature_of_responses(good, ["y"], 8, width=8)
        s2 = signature_of_responses(bad, ["y"], 8, width=8)
        assert s1 != s2

    def test_seed_changes_signature(self):
        responses = {"y": 0b1010}
        s1 = signature_of_responses(responses, ["y"], 4, width=8, seed=0)
        s2 = signature_of_responses(responses, ["y"], 4, width=8, seed=1)
        assert s1 != s2
