"""Worker telemetry: per-chunk counters merged exactly once into the parent.

The contract under test: every chunk of a parallel fault-sim run ships
back a telemetry record (pid, parent run id, attempt, counter deltas),
the parent merges exactly one record per chunk — across retries, pool
respawns, and in-parent degradation — under the ``worker.`` namespace,
and none of it ever changes the simulation results.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.circuit import generators
from repro.obs.recorder import RunRecorder
from repro.resilience import ChaosSpec
from repro.sim import FaultSimulator, UniformRandomSource, run_parallel
from repro.sim.parallel import MIN_FAULTS_PER_JOB

JOBS = 4


def _workload(seed=0, n_gates=40, n_patterns=128):
    circuit = generators.random_dag(5, n_gates, seed=seed)
    stimulus = UniformRandomSource(seed=seed).generate(
        circuit.inputs, n_patterns
    )
    return circuit, stimulus, n_patterns


def _traced_run(tmp_path, jobs=JOBS, **kwargs):
    """run_parallel under a file recorder; returns (result, trace bits)."""
    circuit, stimulus, n_patterns = _workload()
    path = tmp_path / "run.jsonl"
    recorder = RunRecorder(path)
    previous = obs.set_recorder(recorder)
    try:
        result = run_parallel(
            circuit, stimulus, n_patterns, jobs=jobs, **kwargs
        )
    finally:
        obs.set_recorder(previous)
        recorder.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    counters = next(
        r for r in records if r.get("event") == "metrics"
    )["metrics"]["counters"]
    events = [r for r in records if r.get("event") == "event"]
    return result, counters, events, recorder.run_id


def _serial_reference(**kwargs):
    circuit, stimulus, n_patterns = _workload()
    return FaultSimulator(circuit).run(stimulus, n_patterns, **kwargs)


def _chunk_events(events):
    return [e for e in events if e["name"] == "parallel.chunk_telemetry"]


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    previous = obs.set_recorder(None)
    yield
    obs.set_recorder(previous)


@pytest.fixture(scope="module")
def n_faults():
    circuit, _stim, _n = _workload()
    faults = FaultSimulator(circuit)._resolve_faults(None, True)
    assert len(faults) >= MIN_FAULTS_PER_JOB * JOBS, (
        "workload too small to actually fan out"
    )
    return len(faults)


class TestCleanRun:
    def test_one_telemetry_event_per_chunk_with_attribution(self, tmp_path):
        _result, counters, events, run_id = _traced_run(tmp_path)
        chunk_events = _chunk_events(events)
        assert sorted(e["chunk"] for e in chunk_events) == list(range(JOBS))
        for e in chunk_events:
            assert e["run_id"] == run_id
            assert isinstance(e["pid"], int) and e["pid"] != os.getpid()
            assert e["in_parent"] is False
            assert e["attempt"] == 0
            assert e["seconds"] >= 0
            assert e["counters"]["fault_sim.runs"] == 1.0
        assert counters["parallel.chunks_merged"] == JOBS

    def test_counters_merged_exactly_once(self, tmp_path, n_faults):
        _result, counters, _events, _rid = _traced_run(tmp_path)
        # Every fault simulated once across all workers: the namespaced
        # totals reconstruct the whole run, no double counting.
        assert counters["worker.fault_sim.faults"] == n_faults
        assert counters["worker.fault_sim.runs"] == JOBS
        # Worker-side gate-eval counts agree with the payload-side tally
        # the parent recorded independently.
        assert counters["worker.fault_sim.gate_evals"] == (
            counters["fault_sim.gate_evals"]
        )
        # Namespacing keeps parent-level counts at run granularity.
        assert counters["fault_sim.runs"] == 1.0
        assert counters["fault_sim.faults"] == n_faults

    def test_worker_summaries_roll_up_chunks(self, tmp_path):
        _result, _counters, events, run_id = _traced_run(tmp_path)
        summaries = [
            e for e in events if e["name"] == "parallel.worker_summary"
        ]
        assert summaries, "no per-worker rollups emitted"
        assert sum(s["chunks"] for s in summaries) == JOBS
        for s in summaries:
            assert s["run_id"] == run_id
            assert s["counters"]["fault_sim.runs"] == s["chunks"]

    def test_results_bit_identical_to_serial(self, tmp_path):
        result, _c, _e, _r = _traced_run(tmp_path)
        serial = _serial_reference()
        assert result.detection_word == serial.detection_word
        assert result.first_detect == serial.first_detect

    def test_coverage_mode_also_reports(self, tmp_path):
        _result, counters, events, _rid = _traced_run(
            tmp_path, mode="coverage"
        )
        assert len(_chunk_events(events)) == JOBS
        assert counters["parallel.chunks_merged"] == JOBS


class TestChaosPaths:
    def test_crash_retry_merges_once(self, tmp_path, n_faults):
        chaos = ChaosSpec(seed=0, forced=((0, "crash"),))
        result, counters, events, _rid = _traced_run(tmp_path, chaos=chaos)
        assert counters["parallel.retries"] >= 1
        chunk_events = _chunk_events(events)
        assert sorted(e["chunk"] for e in chunk_events) == list(range(JOBS))
        (chunk0,) = [e for e in chunk_events if e["chunk"] == 0]
        assert chunk0["attempt"] == 1  # the retry's telemetry, once
        assert counters["worker.fault_sim.faults"] == n_faults
        serial = _serial_reference()
        assert result.detection_word == serial.detection_word
        assert result.first_detect == serial.first_detect

    def test_corrupt_payload_telemetry_discarded_with_it(
        self, tmp_path, n_faults
    ):
        # The corrupt attempt built a telemetry record too — rejecting
        # the payload must reject the telemetry, or faults double-count.
        chaos = ChaosSpec(seed=0, forced=((1, "corrupt"),))
        _result, counters, events, _rid = _traced_run(tmp_path, chaos=chaos)
        assert counters["parallel.retries"] >= 1
        assert len(_chunk_events(events)) == JOBS
        assert counters["worker.fault_sim.faults"] == n_faults
        assert counters["parallel.chunks_merged"] == JOBS

    def test_degraded_chunk_reports_in_parent(self, tmp_path, n_faults):
        # max_attempts=1: the crashed chunk goes straight to the parent.
        chaos = ChaosSpec(seed=0, forced=((2, "crash"),))
        result, counters, events, run_id = _traced_run(
            tmp_path, chaos=chaos, max_attempts=1
        )
        # The crash kills the shared pool, so sibling chunks in flight may
        # degrade with it — at least the crashed chunk always does.
        assert counters["parallel.degraded"] >= 1.0
        (chunk2,) = [e for e in _chunk_events(events) if e["chunk"] == 2]
        assert chunk2["in_parent"] is True
        assert chunk2["pid"] == os.getpid()
        assert chunk2["run_id"] == run_id
        # The degraded chunk's counters flow through the same merge:
        # totals still cover every fault exactly once.
        assert counters["worker.fault_sim.faults"] == n_faults
        assert counters["parallel.chunks_merged"] == JOBS
        serial = _serial_reference()
        assert result.detection_word == serial.detection_word
        assert result.first_detect == serial.first_detect


class TestDisabledObservability:
    def test_runs_without_recorder(self):
        circuit, stimulus, n_patterns = _workload()
        assert obs.get_recorder() is None
        result = run_parallel(circuit, stimulus, n_patterns, jobs=JOBS)
        serial = _serial_reference()
        assert result.detection_word == serial.detection_word
