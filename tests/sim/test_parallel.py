"""Equivalence and protocol tests for parallel + fault-dropping simulation.

The contract under test: every performance mode — coverage-only fault
dropping (`run_coverage`), process-parallel fan-out (`run_parallel`), and
their combination — produces results bit-identical to the plain serial
`FaultSimulator.run`, down to first-detect indices and fault ordering.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import generators
from repro.errors import BudgetExceededError, SimulationError
from repro.resilience import Budget
from repro.sim import (
    FaultSimResult,
    FaultSimulator,
    UniformRandomSource,
    run_parallel,
    split_chunks,
)
from repro.sim.parallel import MIN_FAULTS_PER_JOB


def _workload(seed, n_gates=30, n_patterns=192):
    circuit = generators.random_dag(5, n_gates, seed=seed)
    stimulus = UniformRandomSource(seed=seed).generate(
        circuit.inputs, n_patterns
    )
    return circuit, stimulus, n_patterns


class TestFaultDroppingEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), block=st.sampled_from([8, 64, 256]))
    def test_run_coverage_matches_exact(self, seed, block):
        circuit, stimulus, n = _workload(seed)
        exact = FaultSimulator(circuit).run(stimulus, n)
        dropped = FaultSimulator(circuit).run_coverage(
            stimulus, n, block=block
        )
        assert dropped.coverage_only
        assert dropped.coverage() == exact.coverage()
        assert dropped.first_detect == exact.first_detect
        # Same faults in the same (input) order.
        assert list(dropped.detection_word) == list(exact.detection_word)
        # Partial words agree with the exact words on the bits they carry.
        for fault, word in dropped.detection_word.items():
            assert bool(word) == bool(exact.detection_word[fault])

    def test_coverage_curve_matches_exact(self):
        circuit, stimulus, n = _workload(3)
        exact = FaultSimulator(circuit).run(stimulus, n)
        dropped = FaultSimulator(circuit).run_coverage(stimulus, n, block=16)
        assert dropped.coverage_curve() == exact.coverage_curve()

    def test_block_boundary_first_detects(self):
        # A block size that divides the budget unevenly still yields exact
        # first-detect indices across every block boundary.
        circuit, stimulus, n = _workload(11, n_patterns=100)
        exact = FaultSimulator(circuit).run(stimulus, n)
        dropped = FaultSimulator(circuit).run_coverage(stimulus, n, block=7)
        assert dropped.first_detect == exact.first_detect

    def test_detection_probability_refused(self):
        circuit, stimulus, n = _workload(0)
        dropped = FaultSimulator(circuit).run_coverage(stimulus, n)
        fault = next(iter(dropped.detection_word))
        with pytest.raises(SimulationError, match="coverage-only"):
            dropped.detection_probability(fault)

    def test_budget_charged_per_block(self):
        circuit, stimulus, n = _workload(0)
        with pytest.raises(BudgetExceededError) as err:
            FaultSimulator(circuit).run_coverage(
                stimulus, n, budget=Budget(max_patterns=8), block=16
            )
        assert err.value.resource == "patterns"


class TestParallelEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_exact_mode_bit_identical(self, jobs):
        circuit, stimulus, n = _workload(1)
        serial = FaultSimulator(circuit).run(stimulus, n)
        parallel = run_parallel(circuit, stimulus, n, jobs=jobs, mode="exact")
        assert parallel.detection_word == serial.detection_word
        assert parallel.first_detect == serial.first_detect
        assert list(parallel.detection_word) == list(serial.detection_word)
        assert not parallel.coverage_only

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_coverage_mode_matches_exact(self, jobs):
        circuit, stimulus, n = _workload(2)
        serial = FaultSimulator(circuit).run(stimulus, n)
        parallel = run_parallel(
            circuit, stimulus, n, jobs=jobs, mode="coverage"
        )
        assert parallel.coverage_only
        assert parallel.coverage() == serial.coverage()
        assert parallel.first_detect == serial.first_detect

    def test_explicit_fault_list_order_preserved(self):
        circuit, stimulus, n = _workload(4)
        sim = FaultSimulator(circuit)
        faults = sim._resolve_faults(None, True)[::-1]  # reversed order
        serial = FaultSimulator(circuit).run(stimulus, n, faults=faults)
        parallel = run_parallel(circuit, stimulus, n, faults=faults, jobs=4)
        assert list(parallel.detection_word) == list(faults)
        assert parallel.detection_word == serial.detection_word

    def test_small_fault_list_runs_serially(self):
        # Below MIN_FAULTS_PER_JOB * jobs the pool cannot pay for itself;
        # the call must silently produce the serial result.
        circuit, stimulus, n = _workload(5)
        sim = FaultSimulator(circuit)
        faults = sim._resolve_faults(None, True)[: MIN_FAULTS_PER_JOB]
        serial = FaultSimulator(circuit).run(stimulus, n, faults=faults)
        parallel = run_parallel(
            circuit, stimulus, n, faults=faults, jobs=8, mode="exact"
        )
        assert parallel.detection_word == serial.detection_word

    def test_jobs_one_is_serial(self):
        circuit, stimulus, n = _workload(6)
        serial = FaultSimulator(circuit).run(stimulus, n)
        same = run_parallel(circuit, stimulus, n, jobs=1)
        assert same.detection_word == serial.detection_word

    def test_unknown_mode_rejected(self):
        circuit, stimulus, n = _workload(0)
        with pytest.raises(SimulationError, match="mode"):
            run_parallel(circuit, stimulus, n, jobs=2, mode="fast")

    def test_worker_budget_surfaces_in_parent(self):
        circuit, stimulus, n = _workload(7, n_gates=40, n_patterns=256)
        with pytest.raises(BudgetExceededError) as err:
            run_parallel(
                circuit,
                stimulus,
                n,
                jobs=2,
                mode="coverage",
                budget=Budget(max_patterns=4),
            )
        assert err.value.resource == "patterns"


class TestCubeShardedNumpy:
    """The numpy kernel's B-axis cube sharding across worker processes."""

    @pytest.mark.parametrize("mode", ["exact", "coverage"])
    def test_bit_identical_to_interp_serial(self, mode):
        pytest.importorskip("numpy")
        circuit, stimulus, n = _workload(8, n_gates=60, n_patterns=256)
        serial = FaultSimulator(circuit, kernel="interp").run(stimulus, n)
        parallel = run_parallel(
            circuit, stimulus, n, jobs=3, mode=mode, kernel="numpy"
        )
        assert parallel.first_detect == serial.first_detect
        assert list(parallel.detection_word) == list(serial.detection_word)
        if mode == "exact":
            assert parallel.detection_word == serial.detection_word

    def test_worker_priming_wraps_shipped_matrices(self):
        np = pytest.importorskip("numpy")
        from repro.sim import npsim
        from repro.sim import parallel as par_mod
        from repro.sim.parallel import _init_worker

        circuit, stimulus, n = _workload(9)
        sim = FaultSimulator(circuit, kernel="numpy")
        state = sim._logic.run(stimulus, n)
        assert isinstance(state, npsim.PackedState)
        saved = par_mod._WORKER_STATE
        try:
            _init_worker(
                circuit, stimulus, n, "exact", 64, None, None,
                kernel="numpy", good_matrix=state.values,
            )
            primed = par_mod._WORKER_STATE["good_values"]
            # The worker wraps the shipped array directly — same buffer,
            # no int-word repacking.
            assert isinstance(primed, npsim.PackedState)
            assert primed.values is state.values
            assert primed.plan is npsim.get_plan(circuit)
        finally:
            par_mod._WORKER_STATE = saved

    def test_chaos_churn_keeps_result_identical(self):
        pytest.importorskip("numpy")
        from repro.resilience.chaos import ChaosSpec

        circuit, stimulus, n = _workload(10, n_gates=60, n_patterns=256)
        serial = FaultSimulator(circuit, kernel="numpy").run(stimulus, n)
        churned = run_parallel(
            circuit,
            stimulus,
            n,
            jobs=4,
            mode="exact",
            kernel="numpy",
            chaos=ChaosSpec(seed=5, crash=0.3, corrupt=0.3),
        )
        assert churned.detection_word == serial.detection_word
        assert churned.first_detect == serial.first_detect


class TestSplitChunks:
    @settings(max_examples=25, deadline=None)
    @given(n_items=st.integers(0, 50), n_chunks=st.integers(1, 9))
    def test_partition_properties(self, n_items, n_chunks):
        items = list(range(n_items))
        chunks = split_chunks(items, n_chunks)
        # Concatenation restores the input: contiguous, order-preserving.
        assert [x for c in chunks for x in c] == items
        # Near-equal: sizes differ by at most one; no empty chunks.
        if chunks:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1
            assert min(sizes) >= 1
        assert len(chunks) <= n_chunks

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            split_chunks([1, 2], 0)


class TestFaultSimResultCaching:
    def test_cached_counts_consistent(self):
        circuit, stimulus, n = _workload(8)
        result = FaultSimulator(circuit).run(stimulus, n)
        by_scan = sum(1 for w in result.detection_word.values() if w)
        assert result.n_detected() == by_scan
        assert result.n_detected() == by_scan  # cached second query
        assert result.coverage() == by_scan / len(result.detection_word)
        assert result.coverage_at(n) == result.coverage()
        assert result.coverage_at(0) == 0.0

    def test_empty_fault_list(self):
        result = FaultSimResult(n_patterns=8)
        assert result.coverage() == 1.0
        assert result.coverage_at(4) == 1.0

    def test_curve_monotone_and_bounded(self):
        circuit, stimulus, n = _workload(9)
        result = FaultSimulator(circuit).run(stimulus, n)
        curve = result.coverage_curve()
        covs = [c for _n, c in curve]
        assert covs == sorted(covs)
        assert curve[-1] == (n, result.coverage())
