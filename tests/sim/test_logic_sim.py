"""Unit and property tests for pattern-parallel logic simulation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, GateType, generators
from repro.circuit.gates import gate_function
from repro.sim import (
    ExhaustiveSource,
    LogicSimulator,
    UniformRandomSource,
    signal_probabilities_by_simulation,
    simulate,
)


class TestBasicSimulation:
    def test_and_gate(self, and2):
        values = simulate(and2, {"a": 0b1100, "b": 0b1010}, 4)
        assert values["y"] == 0b1000

    def test_chain(self, chain3):
        # y = NOT(a AND (b OR c))
        stim = {"a": 0b1111, "b": 0b1100, "c": 0b1010}
        values = simulate(chain3, stim, 4)
        assert values["o1"] == 0b1110
        assert values["a1"] == 0b1110
        assert values["y"] == 0b0001

    def test_missing_inputs_default_zero(self, and2):
        values = simulate(and2, {"a": 0b11}, 2)
        assert values["y"] == 0

    def test_run_outputs_subset(self, c17):
        sim = LogicSimulator(c17)
        stim = UniformRandomSource(seed=0).generate(c17.inputs, 16)
        outs = sim.run_outputs(stim, 16)
        assert set(outs) == set(c17.outputs)


class TestForces:
    def test_node_force_overrides_gate(self, chain3):
        sim = LogicSimulator(chain3)
        stim = {"a": 0b1111, "b": 0b0000, "c": 0b0000}
        values = sim.run(stim, 4, node_forces={"o1": 0b1111})
        assert values["o1"] == 0b1111
        assert values["a1"] == 0b1111

    def test_input_force(self, and2):
        sim = LogicSimulator(and2)
        values = sim.run({"a": 0, "b": 0b11}, 2, node_forces={"a": 0b11})
        assert values["y"] == 0b11

    def test_connection_force_hits_single_pin(self, diamond):
        sim = LogicSimulator(diamond)
        stim = {"a": 0b11, "b": 0b11}
        base = sim.run(stim, 2)
        # Force only the branch into q; p still sees the true s.
        forced = sim.run(stim, 2, connection_forces={("q", 0): 0b00})
        assert forced["q"] == 0
        assert forced["p"] == base["p"]


class TestAgainstScalarEvaluation:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_dag_matches_per_pattern_eval(self, seed):
        """Packed simulation equals naive per-pattern evaluation."""
        circuit = generators.random_dag(6, 25, seed=seed)
        n_patterns = 32
        stim = UniformRandomSource(seed=seed).generate(circuit.inputs, n_patterns)
        values = simulate(circuit, stim, n_patterns)
        for p in range(0, n_patterns, 7):
            scalar = {
                pi: (stim[pi] >> p) & 1 for pi in circuit.inputs
            }
            for name in circuit.topological_order():
                node = circuit.node(name)
                if node.is_gate:
                    fn = gate_function(node.gate_type)
                    scalar[name] = fn([scalar[fi] for fi in node.fanins])
                assert (values[name] >> p) & 1 == scalar[name], name


class TestSignalProbabilityEstimation:
    def test_independent_inputs(self, and2):
        stim = UniformRandomSource(seed=2).generate(and2.inputs, 1 << 14)
        probs = signal_probabilities_by_simulation(and2, stim, 1 << 14)
        assert probs["y"] == pytest.approx(0.25, abs=0.02)

    def test_exhaustive_exact(self, wand8):
        n = 1 << 8
        stim = ExhaustiveSource().generate(wand8.inputs, n)
        probs = signal_probabilities_by_simulation(wand8, stim, n)
        assert probs[wand8.outputs[0]] == pytest.approx(1 / 256)
