"""Compiled kernels: bit-identity to the interpreter, caching, pickling.

The compiled paths (``kernel="compiled"``) must be indistinguishable from
the interpreted ground truth (``kernel="interp"``) — exact word equality
for simulation, exact float equality for the COP passes, identical dict
insertion orders throughout.  These property tests pin that on random
circuits, random stimuli, and random placements, and additionally cover
the cache machinery: structural-hash keying, revision-mismatch errors,
registry invalidation, and the source-only pickle round-trip the parallel
workers rely on.
"""

import pickle
import random

import pytest

from repro import obs
from repro.circuit.generators import random_dag, random_tree, rpr_mixed
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.core import TPIProblem
from repro.core.incremental import IncrementalEvaluator
from repro.core.problem import TestPoint, TestPointType
from repro.core.virtual import evaluate_placement
from repro.errors import SimulationError
from repro.obs.recorder import RunRecorder
from repro.sim import FaultSimulator, LogicSimulator, run_parallel
from repro.sim.compile import (
    CompiledCircuit,
    clear_registry,
    generate_cone_source,
    generate_logic_source,
    get_compiled,
    invalidate,
    registry_size,
    resolve_kernel,
    seed_registry,
)
from repro.sim.faults import all_stuck_at_faults
from repro.sim.patterns import UniformRandomSource
from repro.testability.cop import cop_measures

N_PATTERNS = 256


def _circuits():
    yield random_tree(25, seed=3)
    yield random_dag(6, 35, seed=4)
    yield random_dag(10, 60, seed=5)
    yield rpr_mixed(cone_width=4, corridor_length=3, n_blocks=2)


def _stimulus(circuit, seed=0):
    return UniformRandomSource(seed=seed).generate(circuit.inputs, N_PATTERNS)


# ---------------------------------------------------------------------------
# Bit-identity: logic simulation
# ---------------------------------------------------------------------------


def test_logic_sim_matches_interp_exactly():
    for circuit in _circuits():
        stim = _stimulus(circuit)
        interp = LogicSimulator(circuit, kernel="interp").run(stim, N_PATTERNS)
        compiled = LogicSimulator(circuit, kernel="compiled").run(
            stim, N_PATTERNS
        )
        assert compiled == interp
        assert list(compiled) == list(interp)  # same insertion order


def test_logic_sim_sparse_stimulus_defaults_missing_inputs_to_zero():
    circuit = random_dag(8, 30, seed=9)
    stim = _stimulus(circuit, seed=2)
    sparse = {pi: w for pi, w in list(stim.items())[::2]}
    interp = LogicSimulator(circuit, kernel="interp").run(sparse, N_PATTERNS)
    compiled = LogicSimulator(circuit, kernel="compiled").run(
        sparse, N_PATTERNS
    )
    assert compiled == interp


def test_forced_runs_fall_back_to_interp_and_stay_correct():
    circuit = random_dag(6, 25, seed=11)
    stim = _stimulus(circuit)
    gate = next(
        n for n in circuit.topological_order() if circuit.node(n).is_gate
    )
    for sim in (
        LogicSimulator(circuit, kernel="compiled"),
        LogicSimulator(circuit, kernel="interp"),
    ):
        forced = sim.run(stim, N_PATTERNS, node_forces={gate: 0})
        assert forced[gate] == 0


# ---------------------------------------------------------------------------
# Bit-identity: fault simulation
# ---------------------------------------------------------------------------


def test_fault_sim_matches_interp_exactly():
    for circuit in _circuits():
        stim = _stimulus(circuit, seed=1)
        interp = FaultSimulator(circuit, kernel="interp")
        compiled = FaultSimulator(circuit, kernel="compiled")
        faults = all_stuck_at_faults(circuit)
        good = LogicSimulator(circuit, kernel="interp").run(stim, N_PATTERNS)
        for fault in faults:
            assert compiled.simulate_fault(
                fault, good, N_PATTERNS
            ) == interp.simulate_fault(fault, good, N_PATTERNS)
        ri = interp.run(stim, N_PATTERNS, faults=faults)
        rc = compiled.run(stim, N_PATTERNS, faults=faults)
        assert rc.detection_word == ri.detection_word
        assert rc.first_detect == ri.first_detect


def test_fault_responses_match_interp_exactly():
    circuit = random_dag(8, 45, seed=6)
    stim = _stimulus(circuit, seed=3)
    interp = FaultSimulator(circuit, kernel="interp")
    compiled = FaultSimulator(circuit, kernel="compiled")
    good = LogicSimulator(circuit, kernel="interp").run(stim, N_PATTERNS)
    for fault in all_stuck_at_faults(circuit):
        di = interp.simulate_fault_responses(fault, good, N_PATTERNS)
        dc = compiled.simulate_fault_responses(fault, good, N_PATTERNS)
        assert dc == di
        assert list(dc) == list(di)


def test_run_coverage_matches_interp_exactly():
    for circuit in _circuits():
        stim = _stimulus(circuit, seed=4)
        ri = FaultSimulator(circuit, kernel="interp").run_coverage(
            stim, N_PATTERNS, block=16
        )
        rc = FaultSimulator(circuit, kernel="compiled").run_coverage(
            stim, N_PATTERNS, block=16
        )
        assert rc.detection_word == ri.detection_word
        assert rc.first_detect == ri.first_detect
        assert rc.coverage() == ri.coverage()


def test_run_parallel_kernel_equivalence():
    circuit = random_dag(10, 80, seed=7)
    stim = _stimulus(circuit, seed=5)
    faults = all_stuck_at_faults(circuit)
    serial = FaultSimulator(circuit, kernel="interp").run(
        stim, N_PATTERNS, faults=faults
    )
    for mode in ("exact", "coverage"):
        par = run_parallel(
            circuit,
            stim,
            N_PATTERNS,
            faults=faults,
            jobs=2,
            mode=mode,
            kernel="compiled",
        )
        assert par.first_detect == serial.first_detect
        assert par.coverage() == serial.coverage()


# ---------------------------------------------------------------------------
# Bit-identity: COP passes and placement evaluation
# ---------------------------------------------------------------------------


def test_cop_measures_match_interp_exactly():
    rng = random.Random(17)
    for circuit in _circuits():
        probs = {pi: rng.random() for pi in circuit.inputs}
        for stem_combine in ("or", "max"):
            ri = cop_measures(
                circuit, probs, stem_combine=stem_combine, kernel="interp"
            )
            rc = cop_measures(
                circuit, probs, stem_combine=stem_combine, kernel="compiled"
            )
            assert rc.probability == ri.probability
            assert rc.observability == ri.observability
            assert rc.branch_observability == ri.branch_observability
            assert list(rc.probability) == list(ri.probability)
            assert list(rc.observability) == list(ri.observability)
            assert list(rc.branch_observability) == list(
                ri.branch_observability
            )


def _random_placement(circuit, rng):
    kinds = [
        TestPointType.OBSERVATION,
        TestPointType.CONTROL_AND,
        TestPointType.CONTROL_OR,
        TestPointType.CONTROL_RANDOM,
    ]
    nodes = list(circuit.topological_order())
    points = []
    for _ in range(rng.randrange(0, 6)):
        node = rng.choice(nodes)
        kind = rng.choice(kinds)
        fanouts = circuit.fanouts(node)
        if fanouts and rng.random() < 0.4:
            sink, pin = rng.choice(fanouts)
            points.append(TestPoint(node=node, kind=kind, branch=(sink, pin)))
        else:
            points.append(TestPoint(node=node, kind=kind))
    return points


def test_evaluate_placement_matches_interp_exactly():
    rng = random.Random(23)
    for circuit in _circuits():
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=4096, escape_budget=0.001
        )
        for _ in range(8):
            points = _random_placement(circuit, rng)
            try:
                interp = evaluate_placement(problem, points, kernel="interp")
            except ValueError:
                continue  # doubly-controlled wire: rejected by both paths
            compiled = evaluate_placement(problem, points, kernel="compiled")
            for attr in (
                "stem_pre",
                "stem_post",
                "wire_obs",
                "branch_pre",
                "branch_post",
                "branch_obs",
                "stem_post_obs",
            ):
                a = getattr(interp, attr)
                b = getattr(compiled, attr)
                assert b == a, attr
                assert list(b) == list(a), attr
            assert compiled.points == interp.points


def test_incremental_evaluator_on_compiled_base_stays_bit_identical():
    circuit = random_dag(8, 40, seed=13)
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=4096, escape_budget=0.001
    )
    rng = random.Random(5)
    inc = IncrementalEvaluator(problem, kernel="compiled")
    for _ in range(6):
        points = _random_placement(circuit, rng)
        try:
            reference = evaluate_placement(problem, points, kernel="interp")
        except ValueError:
            continue
        got = inc.evaluate(points)
        assert got.stem_pre == reference.stem_pre
        assert got.wire_obs == reference.wire_obs
        assert got.branch_obs == reference.branch_obs


# ---------------------------------------------------------------------------
# Kernel selection and the circuit revision counter
# ---------------------------------------------------------------------------


def test_resolve_kernel_rejects_unknown_modes():
    assert resolve_kernel(None) in ("compiled", "interp")
    assert resolve_kernel("interp") == "interp"
    with pytest.raises(SimulationError):
        resolve_kernel("jit")


def test_circuit_revision_bumps_on_every_mutation():
    circuit = Circuit("rev")
    r0 = circuit.revision
    circuit.add_input("a")
    circuit.add_input("b")
    assert circuit.revision > r0
    r1 = circuit.revision
    circuit.add_gate("g", GateType.AND, ["a", "b"])
    assert circuit.revision > r1
    r2 = circuit.revision
    circuit.mark_output("g")
    assert circuit.revision > r2


def test_structural_hash_is_structure_keyed():
    a = random_dag(6, 20, seed=21)
    b = random_dag(6, 20, seed=21)
    c = random_dag(6, 20, seed=22)
    assert a.structural_hash() == b.structural_hash()
    assert a.structural_hash() != c.structural_hash()
    before = a.structural_hash()
    out = a.outputs[0]
    a.unmark_output(out)
    assert a.structural_hash() != before


@pytest.mark.parametrize("kernel", ["compiled", "interp"])
def test_simulators_raise_on_mutated_circuit(kernel):
    circuit = random_tree(15, seed=8)
    stim = _stimulus(circuit)
    logic = LogicSimulator(circuit, kernel=kernel)
    fsim = FaultSimulator(circuit, kernel=kernel)
    good = logic.run(stim, N_PATTERNS)
    fault = all_stuck_at_faults(circuit)[0]
    fsim.simulate_fault(fault, good, N_PATTERNS)
    circuit.add_input("late_pi")  # structural mutation
    with pytest.raises(SimulationError):
        logic.run(stim, N_PATTERNS)
    with pytest.raises(SimulationError):
        fsim.simulate_fault(fault, good, N_PATTERNS)


def test_mutated_circuit_gets_fresh_registry_entry():
    clear_registry()
    circuit = random_tree(12, seed=2)
    stim = _stimulus(circuit)
    LogicSimulator(circuit, kernel="compiled").run(stim, N_PATTERNS)
    first = get_compiled(circuit)
    circuit.add_input("extra")
    second = get_compiled(circuit)
    assert second is not first
    assert second.structural_hash != first.structural_hash


def test_invalidate_and_clear_registry():
    clear_registry()
    circuit = random_tree(10, seed=1)
    LogicSimulator(circuit, kernel="compiled").run(
        _stimulus(circuit), N_PATTERNS
    )
    assert registry_size() == 1
    assert invalidate(circuit)
    assert not invalidate(circuit)
    LogicSimulator(circuit, kernel="compiled").run(
        _stimulus(circuit), N_PATTERNS
    )
    assert registry_size() == 1
    clear_registry()
    assert registry_size() == 0


def test_structurally_identical_circuits_share_kernels():
    clear_registry()
    a = random_dag(5, 15, seed=30)
    b = random_dag(5, 15, seed=30)
    stim = _stimulus(a)
    LogicSimulator(a, kernel="compiled").run(stim, N_PATTERNS)
    LogicSimulator(b, kernel="compiled").run(stim, N_PATTERNS)
    assert registry_size() == 1


# ---------------------------------------------------------------------------
# Pickle / worker-rebuild strategy
# ---------------------------------------------------------------------------


def test_compiled_circuit_pickles_sources_not_code():
    clear_registry()
    circuit = random_dag(6, 25, seed=15)
    sim = FaultSimulator(circuit, kernel="compiled")
    stim = _stimulus(circuit)
    sim.run(stim, N_PATTERNS)  # populates logic + cone kernels
    entry = get_compiled(circuit)
    assert entry.compiled_keys()  # callables materialized here
    clone = pickle.loads(pickle.dumps(entry))
    assert isinstance(clone, CompiledCircuit)
    assert clone.sources == entry.sources
    assert clone.cone_meta == entry.cone_meta
    assert clone.compiled_keys() == []  # code objects did not travel


def test_seed_registry_rebuilds_from_sources_without_regenerating():
    clear_registry()
    circuit = random_dag(6, 25, seed=16)
    sim = FaultSimulator(circuit, kernel="compiled")
    stim = _stimulus(circuit)
    reference = sim.run(stim, N_PATTERNS)
    entry = get_compiled(circuit)
    sources = dict(entry.sources)
    cone_meta = dict(entry.cone_meta)

    clear_registry()  # simulate a fresh worker process
    recorder = RunRecorder(None)
    previous = obs.set_recorder(recorder)
    try:
        seeded = seed_registry(circuit, sources, cone_meta)
        assert seeded.sources == sources
        assert seeded.compiled_keys() == []  # lazy until first use
        rebuilt = FaultSimulator(circuit, kernel="compiled").run(
            stim, N_PATTERNS
        )
        counters = recorder.metrics.snapshot()["counters"]
    finally:
        obs.set_recorder(previous)
        recorder.close()
    assert rebuilt.detection_word == reference.detection_word
    assert rebuilt.first_detect == reference.first_detect
    # Kernels were re-exec'd from the shipped sources, never re-generated.
    assert counters.get("kernel.compiles", 0) > 0
    assert "kernel.source_gens" not in counters


def test_kernel_obs_counters_record_compiles_and_cache_hits():
    clear_registry()
    circuit = random_tree(10, seed=19)
    stim = _stimulus(circuit)
    recorder = RunRecorder(None)
    previous = obs.set_recorder(recorder)
    try:
        sim = LogicSimulator(circuit, kernel="compiled")
        sim.run(stim, N_PATTERNS)
        # Second simulator on the same structure: registry hit, no compile.
        LogicSimulator(circuit, kernel="compiled").run(stim, N_PATTERNS)
        counters = recorder.metrics.snapshot()["counters"]
    finally:
        obs.set_recorder(previous)
        recorder.close()
    assert counters["kernel.compiles"] == 1
    assert counters["kernel.source_gens"] == 1
    assert counters["kernel.cache_hits"] >= 1


# ---------------------------------------------------------------------------
# Generated-source sanity
# ---------------------------------------------------------------------------


def test_generated_sources_are_straight_line_python():
    circuit = random_dag(5, 20, seed=25)
    logic_src = generate_logic_source(circuit)
    assert logic_src.startswith("def kernel(")
    compile(logic_src, "<test>", "exec")  # syntactically valid
    assert "evaluate_gate" not in logic_src  # no interpreted dispatch
    start = circuit.outputs[0]
    sim = FaultSimulator(circuit, kernel="interp")
    cone_src, n_gates = generate_cone_source(
        circuit, start, sim._cone_order(start), "detect"
    )
    compile(cone_src, "<test>", "exec")
    assert n_gates == len(sim._cone_order(start)) - 1
