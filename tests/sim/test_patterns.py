"""Unit tests for stimulus sources."""

import pytest

from repro.sim import (
    ExhaustiveSource,
    ExplicitSource,
    LFSRSource,
    UniformRandomSource,
    WeightedRandomSource,
)

INPUTS = ["a", "b", "c"]


class TestUniform:
    def test_deterministic(self):
        s = UniformRandomSource(seed=9)
        assert s.generate(INPUTS, 64) == s.generate(INPUTS, 64)

    def test_distinct_streams_per_input(self):
        words = UniformRandomSource(seed=9).generate(INPUTS, 256)
        assert words["a"] != words["b"]

    def test_roughly_fair(self):
        words = UniformRandomSource(seed=1).generate(INPUTS, 8192)
        for w in words.values():
            assert w.bit_count() / 8192 == pytest.approx(0.5, abs=0.03)


class TestWeighted:
    def test_respects_weights(self):
        src = WeightedRandomSource(weights={"a": 0.9, "b": 0.1}, seed=3)
        words = src.generate(INPUTS, 8192)
        assert words["a"].bit_count() / 8192 == pytest.approx(0.9, abs=0.03)
        assert words["b"].bit_count() / 8192 == pytest.approx(0.1, abs=0.03)
        assert words["c"].bit_count() / 8192 == pytest.approx(0.5, abs=0.03)

    def test_default_weight(self):
        src = WeightedRandomSource(default_weight=0.25, seed=3)
        words = src.generate(["x"], 8192)
        assert words["x"].bit_count() / 8192 == pytest.approx(0.25, abs=0.03)


class TestLFSRSource:
    def test_deterministic(self):
        s = LFSRSource(degree=16, seed=0x1234)
        assert s.generate(INPUTS, 128) == s.generate(INPUTS, 128)

    def test_nonconstant(self):
        words = LFSRSource().generate(INPUTS, 512)
        for w in words.values():
            assert 0 < w.bit_count() < 512


class TestExhaustive:
    def test_counts(self):
        words = ExhaustiveSource().generate(INPUTS, 8)
        # Input i toggles with period 2^(i+1).
        assert words["a"] == 0b10101010
        assert words["b"] == 0b11001100
        assert words["c"] == 0b11110000

    def test_wrong_pattern_count_rejected(self):
        with pytest.raises(ValueError):
            ExhaustiveSource().generate(INPUTS, 7)


class TestExplicit:
    def test_packs_given_vectors(self):
        src = ExplicitSource([{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1}])
        words = src.generate(["a", "b"], 3)
        assert words["a"] == 0b101
        assert words["b"] == 0b010  # missing keys default to 0

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSource([{"a": 1}]).generate(["a"], 2)
