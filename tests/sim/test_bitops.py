"""Unit and property tests for packed bit-vector helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    bit_get,
    bit_set,
    ones_mask,
    pack_bits,
    pack_patterns,
    popcount,
    random_word,
    unpack_bits,
    unpack_patterns,
    weighted_random_word,
)


class TestMasks:
    def test_ones_mask(self):
        assert ones_mask(0) == 0
        assert ones_mask(1) == 1
        assert ones_mask(8) == 255

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ones_mask(-1)


class TestBitAccess:
    def test_get_set(self):
        w = 0b1010
        assert bit_get(w, 1) == 1
        assert bit_get(w, 0) == 0
        assert bit_set(w, 0, 1) == 0b1011
        assert bit_set(w, 3, 0) == 0b0010
        assert bit_set(w, 1, 1) == w  # already set

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(ones_mask(100)) == 100


class TestPacking:
    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_pack_unpack_roundtrip(self, bits):
        word = pack_bits(bits)
        assert unpack_bits(word, len(bits)) == bits

    def test_pack_patterns_transposes(self):
        patterns = [[1, 0], [0, 1], [1, 1]]
        words = pack_patterns(patterns, 2)
        assert words[0] == 0b101  # signal 0: patterns 0, 2
        assert words[1] == 0b110  # signal 1: patterns 1, 2

    def test_pack_patterns_shape_check(self):
        with pytest.raises(ValueError):
            pack_patterns([[1, 0], [1]], 2)

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=3, max_size=3),
            max_size=16,
        )
    )
    def test_pack_unpack_patterns_roundtrip(self, patterns):
        words = pack_patterns(patterns, 3)
        assert unpack_patterns(words, len(patterns)) == patterns


class TestNdarrayBridge:
    """uint64 ndarray ↔ bignum word bridge used by the numpy backend."""

    np = pytest.importorskip("numpy")

    @given(st.integers(0, (1 << 200) - 1), st.integers(0, 200))
    def test_word_roundtrip(self, word, n_patterns):
        from repro.sim import ndarray_to_word, ones_mask, word_to_ndarray

        arr = word_to_ndarray(word, n_patterns)
        assert ndarray_to_word(arr) == word & ones_mask(n_patterns)

    @pytest.mark.parametrize("n_patterns", [0, 1, 63, 64, 65, 128, 129])
    def test_word_count_and_shape(self, n_patterns):
        from repro.sim import word_count, word_to_ndarray

        arr = word_to_ndarray(0, n_patterns)
        assert arr.shape == (word_count(n_patterns),)
        assert arr.dtype == self.np.dtype("<u8")

    def test_view_is_read_only(self):
        from repro.sim import word_to_ndarray

        arr = word_to_ndarray(0b1011, 64)
        with pytest.raises((ValueError, RuntimeError)):
            arr[0] = 1

    def test_high_bits_masked(self):
        from repro.sim import ndarray_to_word, word_to_ndarray

        # Bits above n_patterns never leak into the array.
        assert ndarray_to_word(word_to_ndarray(0b111, 2)) == 0b11

    @given(st.lists(st.integers(0, 1), max_size=130))
    def test_pack_bits_ndarray_matches_bignum(self, bits):
        from repro.sim.bitops import (
            ndarray_to_word,
            pack_bits,
            pack_bits_ndarray,
            unpack_bits,
            unpack_bits_ndarray,
        )

        arr = pack_bits_ndarray(bits)
        assert ndarray_to_word(arr) == pack_bits(bits)
        assert unpack_bits_ndarray(arr, len(bits)) == bits
        assert unpack_bits(pack_bits(bits), len(bits)) == bits

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=3, max_size=3),
            max_size=70,
        )
    )
    def test_pack_patterns_ndarray_matches_bignum(self, patterns):
        from repro.sim.bitops import (
            ndarray_to_word,
            pack_patterns,
            pack_patterns_ndarray,
            word_count,
        )

        mat = pack_patterns_ndarray(patterns, 3)
        words = pack_patterns(patterns, 3)
        assert mat.shape == (3, word_count(len(patterns)))
        for s in range(3):
            assert ndarray_to_word(mat[s]) == words[s]

    def test_pack_patterns_ndarray_shape_check(self):
        from repro.sim.bitops import pack_patterns_ndarray

        with pytest.raises(ValueError):
            pack_patterns_ndarray([[1, 0], [1]], 2)


class TestRandomWords:
    def test_deterministic_by_seed(self):
        a = random_word(128, random.Random(5))
        b = random_word(128, random.Random(5))
        assert a == b

    def test_bounded(self):
        w = random_word(64, random.Random(0))
        assert 0 <= w < (1 << 64)

    def test_zero_patterns(self):
        assert random_word(0, random.Random(0)) == 0
        assert weighted_random_word(0, 0.5, random.Random(0)) == 0

    @pytest.mark.parametrize("weight", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_weighted_word_statistics(self, weight):
        n = 1 << 14
        w = weighted_random_word(n, weight, random.Random(3))
        density = w.bit_count() / n
        assert density == pytest.approx(weight, abs=0.03)

    def test_weighted_extremes_exact(self):
        n = 256
        assert weighted_random_word(n, 0.0, random.Random(0)) == 0
        assert weighted_random_word(n, 1.0, random.Random(0)) == ones_mask(n)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            weighted_random_word(8, 1.5, random.Random(0))
