"""Unit and property tests for packed bit-vector helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    bit_get,
    bit_set,
    ones_mask,
    pack_bits,
    pack_patterns,
    popcount,
    random_word,
    unpack_bits,
    unpack_patterns,
    weighted_random_word,
)


class TestMasks:
    def test_ones_mask(self):
        assert ones_mask(0) == 0
        assert ones_mask(1) == 1
        assert ones_mask(8) == 255

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ones_mask(-1)


class TestBitAccess:
    def test_get_set(self):
        w = 0b1010
        assert bit_get(w, 1) == 1
        assert bit_get(w, 0) == 0
        assert bit_set(w, 0, 1) == 0b1011
        assert bit_set(w, 3, 0) == 0b0010
        assert bit_set(w, 1, 1) == w  # already set

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(ones_mask(100)) == 100


class TestPacking:
    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_pack_unpack_roundtrip(self, bits):
        word = pack_bits(bits)
        assert unpack_bits(word, len(bits)) == bits

    def test_pack_patterns_transposes(self):
        patterns = [[1, 0], [0, 1], [1, 1]]
        words = pack_patterns(patterns, 2)
        assert words[0] == 0b101  # signal 0: patterns 0, 2
        assert words[1] == 0b110  # signal 1: patterns 1, 2

    def test_pack_patterns_shape_check(self):
        with pytest.raises(ValueError):
            pack_patterns([[1, 0], [1]], 2)

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=3, max_size=3),
            max_size=16,
        )
    )
    def test_pack_unpack_patterns_roundtrip(self, patterns):
        words = pack_patterns(patterns, 3)
        assert unpack_patterns(words, len(patterns)) == patterns


class TestRandomWords:
    def test_deterministic_by_seed(self):
        a = random_word(128, random.Random(5))
        b = random_word(128, random.Random(5))
        assert a == b

    def test_bounded(self):
        w = random_word(64, random.Random(0))
        assert 0 <= w < (1 << 64)

    def test_zero_patterns(self):
        assert random_word(0, random.Random(0)) == 0
        assert weighted_random_word(0, 0.5, random.Random(0)) == 0

    @pytest.mark.parametrize("weight", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_weighted_word_statistics(self, weight):
        n = 1 << 14
        w = weighted_random_word(n, weight, random.Random(3))
        density = w.bit_count() / n
        assert density == pytest.approx(weight, abs=0.03)

    def test_weighted_extremes_exact(self):
        n = 256
        assert weighted_random_word(n, 0.0, random.Random(0)) == 0
        assert weighted_random_word(n, 1.0, random.Random(0)) == ones_mask(n)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            weighted_random_word(8, 1.5, random.Random(0))
