"""Unit tests for the stuck-at fault model and equivalence collapsing."""

import pytest

from repro.circuit import CircuitBuilder, GateType, generators
from repro.sim import Fault, all_stuck_at_faults, collapse_faults


class TestFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            Fault("n", 2)

    def test_describe(self):
        assert Fault("n1", 0).describe() == "n1 s-a-0"
        assert Fault("n1", 1, branch=("g2", 1)).describe() == "n1->g2.1 s-a-1"

    def test_ordering_stems_before_branches(self):
        stem = Fault("n", 0)
        branch = Fault("n", 0, branch=("g", 0))
        assert sorted([branch, stem]) == [stem, branch]

    def test_is_branch(self):
        assert not Fault("n", 0).is_branch
        assert Fault("n", 0, branch=("g", 0)).is_branch


class TestEnumeration:
    def test_fanout_free_counts(self):
        # A fanout-free circuit has 2 faults per node, no branch faults.
        c = generators.parity_tree(8)
        faults = all_stuck_at_faults(c)
        assert len(faults) == 2 * len(c.node_names)
        assert not any(f.is_branch for f in faults)

    def test_stem_adds_branch_faults(self, diamond):
        faults = all_stuck_at_faults(diamond)
        branch_faults = [f for f in faults if f.is_branch]
        # s drives p and q: 2 branches × 2 polarities.
        assert len(branch_faults) == 4
        assert all(f.node == "s" for f in branch_faults)

    def test_const_cells_single_fault(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        z = b.const0(name="z")
        b.output(b.or_(a, z, name="y"))
        faults = all_stuck_at_faults(b.build())
        z_faults = [f for f in faults if f.node == "z"]
        assert z_faults == [Fault("z", 1)]


class TestCollapsing:
    def test_and_gate_rule(self, and2):
        collapsed = collapse_faults(and2)
        cls = collapsed.class_of
        # a/0, b/0, y/0 all equivalent.
        assert cls[Fault("a", 0)] == cls[Fault("b", 0)] == cls[Fault("y", 0)]
        # a/1, b/1, y/1 all distinct.
        reps = {cls[Fault("a", 1)], cls[Fault("b", 1)], cls[Fault("y", 1)]}
        assert len(reps) == 3
        assert collapsed.size() == 4  # 6 faults → 4 classes

    def test_or_gate_rule(self, or2):
        cls = collapse_faults(or2).class_of
        assert cls[Fault("a", 1)] == cls[Fault("b", 1)] == cls[Fault("y", 1)]
        assert cls[Fault("a", 0)] != cls[Fault("b", 0)]

    def test_inverter_chain_collapses_fully(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        n1 = b.not_(a, name="n1")
        n2 = b.not_(n1, name="n2")
        b.output(n2)
        collapsed = collapse_faults(b.build())
        # 6 faults on the chain collapse to 2 classes.
        assert collapsed.size() == 2
        cls = collapsed.class_of
        assert cls[Fault("a", 0)] == cls[Fault("n1", 1)] == cls[Fault("n2", 0)]

    def test_nand_inverts_polarity(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        y = b.nand(a, c, name="y")
        b.output(y)
        cls = collapse_faults(b.build()).class_of
        assert cls[Fault("a", 0)] == cls[Fault("y", 1)]

    def test_xor_no_collapse(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.xor(a, c, name="y"))
        collapsed = collapse_faults(b.build())
        assert collapsed.size() == 6  # nothing merges

    def test_fanout_blocks_collapse_through_stem(self, diamond):
        """Stem faults do not merge with branch faults structurally."""
        collapsed = collapse_faults(diamond)
        cls = collapsed.class_of
        # s stem s-a-0 is NOT merged with y/0 through q automatically;
        # the q branch fault is the one equivalent through the BUF.
        q_branch0 = Fault("s", 0, branch=("q", 0))
        assert cls[q_branch0] == cls[Fault("q", 0)]
        assert cls[Fault("s", 0)] != cls[Fault("q", 0)]

    def test_representative_is_member(self, c17):
        collapsed = collapse_faults(c17)
        for fault, rep in collapsed.class_of.items():
            assert collapsed.class_of[rep] == rep
        assert set(collapsed.representatives) == set(collapsed.class_of.values())

    def test_c17_collapse_ratio(self, c17):
        faults = all_stuck_at_faults(c17)
        collapsed = collapse_faults(c17)
        assert collapsed.size() < len(faults)
        assert collapsed.size() == 22  # classic published figure for c17


class TestCheckpointFaults:
    def test_checkpoint_theorem_holds_empirically(self):
        """A pattern set detecting all checkpoint faults detects all faults.

        Verified exhaustively on irredundant structured circuits (the
        theorem's premise — every checkpoint fault detectable — fails on
        random DAGs): a pattern subset covering the checkpoint list must
        also cover the full fault list.
        """
        from repro.circuit import generators
        from repro.sim import ExhaustiveSource, FaultSimulator, checkpoint_faults

        for circuit in (
            generators.c17(),
            generators.ripple_carry_adder(3),
            generators.mux_tree(2),
            generators.decoder(3),
            generators.equality_comparator(4),
        ):
            n = 1 << len(circuit.inputs)
            stim = ExhaustiveSource().generate(circuit.inputs, n)
            sim = FaultSimulator(circuit)
            cps = checkpoint_faults(circuit)
            cp_result = sim.run(stim, n, faults=cps)
            assert all(
                w for w in cp_result.detection_word.values()
            ), f"{circuit.name}: premise violated (redundant checkpoint)"
            full_result = sim.run(stim, n, collapse=False)
            # Build a minimal pattern set greedily covering checkpoints.
            chosen = []
            covered = set()
            for fault in cps:
                word = cp_result.detection_word[fault]
                if not word or fault in covered:
                    continue
                p = (word & -word).bit_length() - 1
                chosen.append(p)
                for other in cps:
                    if (cp_result.detection_word[other] >> p) & 1:
                        covered.add(other)
            detectable_cps = [f for f in cps if cp_result.detection_word[f]]
            assert set(detectable_cps) <= covered
            pattern_mask = 0
            for p in chosen:
                pattern_mask |= 1 << p
            # Every detectable fault in the FULL list must be hit by the
            # chosen checkpoint-covering patterns.
            for fault, word in full_result.detection_word.items():
                if word:
                    assert word & pattern_mask, fault.describe()

    def test_smaller_than_collapsed_on_fanout_free(self):
        from repro.circuit import generators
        from repro.sim import checkpoint_faults, collapse_faults

        circuit = generators.wide_and_cone(16)
        cps = checkpoint_faults(circuit)
        collapsed = collapse_faults(circuit)
        # Fanout-free AND tree: checkpoints are exactly the PI faults.
        assert len(cps) == 2 * len(circuit.inputs)
        assert len(cps) <= collapsed.size() + 2

    def test_xor_outputs_kept(self):
        from repro.circuit import generators
        from repro.sim import Fault, checkpoint_faults

        circuit = generators.parity_tree(4)
        cps = checkpoint_faults(circuit)
        gate_names = {g.name for g in circuit.gates}
        assert any(f.node in gate_names for f in cps)
