"""Thread safety of the compiled-kernel registry.

The registry is process-global; concurrent simulators (thread-pooled
incremental evaluators, guard shadow checks racing production runs) hit
``get_compiled`` / ``function`` / ``clear_registry`` simultaneously.
The contract: no exceptions, one shared entry per structure, kernels
compiled exactly once per process, results identical to serial.
"""

from __future__ import annotations

import threading

from repro.circuit import generators
from repro.sim import FaultSimulator, LogicSimulator, UniformRandomSource
from repro.sim.compile import (
    clear_registry,
    get_compiled,
    registry_size,
    seed_registry,
)


def _run_threads(n, fn):
    errors = []

    def wrapped(i):
        try:
            fn(i)
        except Exception as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    barrier = threading.Barrier(n)

    def synced(i):
        barrier.wait()
        wrapped(i)

    threads = [
        threading.Thread(target=synced, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestRegistryConcurrency:
    def test_concurrent_get_compiled_shares_one_entry(self):
        clear_registry()
        circuit = generators.c17()
        entries = [None] * 16
        _run_threads(16, lambda i: entries.__setitem__(i, get_compiled(circuit)))
        assert all(e is entries[0] for e in entries)
        assert registry_size() == 1
        clear_registry()

    def test_concurrent_logic_sim_identical_results(self):
        clear_registry()
        circuit = generators.random_dag(5, 40, seed=8)
        n = 128
        stimulus = UniformRandomSource(seed=1).generate(circuit.inputs, n)
        reference = LogicSimulator(circuit, kernel="interp").run(stimulus, n)
        results = [None] * 12

        def work(i):
            sim = LogicSimulator(circuit, kernel="compiled")
            results[i] = sim.run(stimulus, n)

        _run_threads(12, work)
        assert all(r == reference for r in results)
        # The logic kernel was generated once, not once per thread.
        entry = get_compiled(circuit)
        assert list(entry.sources).count("logic") == 1
        clear_registry()

    def test_concurrent_fault_sim_over_distinct_circuits(self):
        clear_registry()
        circuits = [generators.random_dag(4, 20, seed=s) for s in range(8)]
        stimuli = [
            UniformRandomSource(seed=s).generate(c.inputs, 64)
            for s, c in enumerate(circuits)
        ]
        expected = [
            FaultSimulator(c, kernel="interp").run(st, 64).detection_word
            for c, st in zip(circuits, stimuli)
        ]
        results = [None] * 8

        def work(i):
            sim = FaultSimulator(circuits[i], kernel="compiled")
            results[i] = sim.run(stimuli[i], 64).detection_word

        _run_threads(8, work)
        assert results == expected
        clear_registry()

    def test_concurrent_seed_and_clear_never_crashes(self):
        clear_registry()
        circuit = generators.c17()
        sources = dict(
            get_compiled(circuit).sources
        ) or {"logic": "def kernel(stim, mask):\n    return {}\n"}

        def work(i):
            for _ in range(50):
                if i % 3 == 0:
                    clear_registry()
                elif i % 3 == 1:
                    seed_registry(circuit, sources)
                else:
                    get_compiled(circuit)

        _run_threads(9, work)
        clear_registry()
