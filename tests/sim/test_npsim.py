"""Word-parallel numpy backend: exact equality against the interpreter.

The numpy engine promises *bit-identical* results to the interpreted
arbiter on every pass — logic, fault propagation (with and without fault
dropping), both COP sweeps, and virtual placement evaluation.  These
tests hold it to that promise with exact ``==`` comparisons (no float
tolerance anywhere), exercise the packed-state Mapping semantics and the
plan registry, and verify the Guard shadow machinery catches a planted
numpy divergence the same way it catches a miscompiled kernel.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.circuit import generators
from repro.core import TestPoint, TestPointType, TPIProblem, evaluate_placement
from repro.errors import DivergenceError, SimulationError
from repro.sim import (
    FaultSimulator,
    LogicSimulator,
    all_stuck_at_faults,
    resolve_kernel,
)
from repro.sim import npsim
from repro.sim.backend import get_backend
from repro.sim.npsim import (
    PackedState,
    clear_plans,
    get_plan,
    plan_registry_size,
)
from repro.testability.cop import cop_measures
from repro.verify.guard import Guard

BACKENDS = ("interp", "compiled", "numpy")

PLACEABLE = (
    TestPointType.OBSERVATION,
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
    TestPointType.CONTROL_RANDOM,
)


def _stim(circuit, n_patterns, seed=0):
    rng = random.Random(seed)
    return {i: rng.getrandbits(n_patterns) for i in circuit.inputs}


def _circuits():
    return [
        generators.c17(),
        generators.wide_and_cone(8),
        generators.random_dag(5, 40, seed=11),
        generators.random_tree(12, seed=3),
    ]


class TestKernelResolution:
    def test_numpy_is_a_kernel_mode(self):
        from repro.sim import KERNEL_MODES

        assert "numpy" in KERNEL_MODES
        assert resolve_kernel("numpy") == "numpy"

    def test_unavailable_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(npsim, "HAVE_NUMPY", False)
        with pytest.raises(SimulationError):
            resolve_kernel("numpy")

    def test_backend_availability_tracks_numpy(self, monkeypatch):
        backend = get_backend("numpy")
        assert backend.available()
        monkeypatch.setattr(npsim, "HAVE_NUMPY", False)
        assert not backend.available()


class TestPlanRegistry:
    def test_plans_are_cached_per_circuit(self):
        circuit = generators.c17()
        clear_plans()
        a = get_plan(circuit)
        b = get_plan(circuit)
        assert a is b
        assert plan_registry_size() == 1

    def test_clear_plans_resets(self):
        circuit = generators.c17()
        get_plan(circuit)
        clear_plans()
        assert plan_registry_size() == 0

    def test_structural_twins_share_a_plan(self):
        a = generators.random_dag(4, 20, seed=9)
        b = generators.random_dag(4, 20, seed=9)
        clear_plans()
        assert get_plan(a) is get_plan(b)


class TestPackedState:
    def _state(self, n_patterns=70):
        circuit = generators.c17()
        stim = _stim(circuit, n_patterns, seed=4)
        state = LogicSimulator(circuit, kernel="numpy").run(stim, n_patterns)
        return circuit, stim, state

    def test_run_returns_packed_state(self):
        _, _, state = self._state()
        assert isinstance(state, PackedState)

    def test_mapping_protocol_matches_interp(self):
        circuit, stim, state = self._state()
        interp = LogicSimulator(circuit, kernel="interp").run(stim, 70)
        assert len(state) == len(interp)
        assert set(state) == set(interp)
        for name in interp:
            assert state[name] == interp[name], name

    def test_equality_with_plain_dict(self):
        circuit, stim, state = self._state()
        interp = LogicSimulator(circuit, kernel="interp").run(stim, 70)
        assert state == dict(interp)
        assert dict(state) == dict(interp)
        assert not (state == {**interp, circuit.outputs[0]: -1})

    def test_missing_name_raises(self):
        _, _, state = self._state()
        with pytest.raises(KeyError):
            state["no-such-net"]

    def test_unhashable(self):
        _, _, state = self._state()
        with pytest.raises(TypeError):
            hash(state)


class TestLogicEquality:
    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 200, 1024])
    def test_all_backends_bit_identical(self, n_patterns):
        for circuit in _circuits():
            stim = _stim(circuit, n_patterns, seed=n_patterns)
            ref = LogicSimulator(circuit, kernel="interp").run(
                stim, n_patterns
            )
            for kernel in ("compiled", "numpy"):
                got = LogicSimulator(circuit, kernel=kernel).run(
                    stim, n_patterns
                )
                assert dict(got) == dict(ref), (circuit.name, kernel)

    def test_forces_fall_back_to_interp(self):
        # Node forces take the interpreted path regardless of backend;
        # results must still agree with an explicit interp run.
        circuit = generators.c17()
        stim = _stim(circuit, 64)
        node = circuit.node_names[-1]
        forces = {node: 0}
        got = LogicSimulator(circuit, kernel="numpy").run(
            stim, 64, node_forces=forces
        )
        ref = LogicSimulator(circuit, kernel="interp").run(
            stim, 64, node_forces=forces
        )
        assert dict(got) == dict(ref)


class TestFaultSimEquality:
    @pytest.mark.parametrize("n_patterns", [1, 64, 65, 900])
    def test_exact_mode(self, n_patterns):
        for circuit in _circuits():
            stim = _stim(circuit, n_patterns, seed=n_patterns + 1)
            faults = all_stuck_at_faults(circuit)
            ref = FaultSimulator(circuit, kernel="interp").run(
                stim, n_patterns, faults=faults
            )
            for kernel in ("compiled", "numpy"):
                got = FaultSimulator(circuit, kernel=kernel).run(
                    stim, n_patterns, faults=faults
                )
                assert got.detection_word == ref.detection_word, kernel
                assert got.first_detect == ref.first_detect, kernel

    @pytest.mark.parametrize("block", [32, 64, 128])
    def test_coverage_mode_with_fault_dropping(self, block):
        n_patterns = 700
        for circuit in _circuits():
            stim = _stim(circuit, n_patterns, seed=block)
            faults = all_stuck_at_faults(circuit)
            ref = FaultSimulator(circuit, kernel="interp").run_coverage(
                stim, n_patterns, faults=faults, block=block
            )
            for kernel in ("compiled", "numpy"):
                got = FaultSimulator(circuit, kernel=kernel).run_coverage(
                    stim, n_patterns, faults=faults, block=block
                )
                assert got.first_detect == ref.first_detect, kernel

    def test_per_output_responses(self):
        circuit = generators.random_dag(5, 40, seed=11)
        n_patterns = 130
        stim = _stim(circuit, n_patterns, seed=2)
        sims = {
            k: FaultSimulator(circuit, kernel=k) for k in BACKENDS
        }
        goods = {
            k: LogicSimulator(circuit, kernel=k).run(stim, n_patterns)
            for k in BACKENDS
        }
        for fault in all_stuck_at_faults(circuit):
            ref = sims["interp"].simulate_fault_responses(
                fault, goods["interp"], n_patterns
            )
            for kernel in ("compiled", "numpy"):
                got = sims[kernel].simulate_fault_responses(
                    fault, goods[kernel], n_patterns
                )
                assert got == ref, (fault, kernel)

    def test_cone_gate_evals_match_compiled(self):
        # Per-fault propagation evaluates whole cones like the compiled
        # kernels (the interpreter's event-driven walk legitimately
        # skips dead gates, so its count differs).
        circuit = generators.random_dag(5, 40, seed=11)
        stim = _stim(circuit, 128, seed=7)
        faults = all_stuck_at_faults(circuit)
        comp = FaultSimulator(circuit, kernel="compiled")
        nump = FaultSimulator(circuit, kernel="numpy")
        good_c = LogicSimulator(circuit, kernel="compiled").run(stim, 128)
        good_n = LogicSimulator(circuit, kernel="numpy").run(stim, 128)
        for fault in faults:
            comp.simulate_fault(fault, good_c, 128)
            nump.simulate_fault(fault, good_n, 128)
        assert nump.gate_evals == comp.gate_evals

    def test_batched_run_counts_full_sweep_evals(self):
        # run() on a wide fault list takes the batched full-circuit pass,
        # whose honest work metric is gate rows × fault machines — at
        # least the summed cone sizes the compiled kernels would walk.
        circuit = generators.random_dag(5, 40, seed=11)
        stim = _stim(circuit, 128, seed=7)
        faults = all_stuck_at_faults(circuit)
        comp = FaultSimulator(circuit, kernel="compiled")
        nump = FaultSimulator(circuit, kernel="numpy")
        comp.run(stim, 128, faults=faults)
        nump.run(stim, 128, faults=faults)
        assert nump.gate_evals >= comp.gate_evals

    def test_accepts_plain_dict_good_values(self):
        # Parallel workers ship plain dicts, not PackedState; the numpy
        # path must repack transparently.
        circuit = generators.c17()
        stim = _stim(circuit, 96, seed=5)
        good = dict(LogicSimulator(circuit, kernel="interp").run(stim, 96))
        sim_np = FaultSimulator(circuit, kernel="numpy")
        sim_it = FaultSimulator(circuit, kernel="interp")
        for fault in all_stuck_at_faults(circuit):
            assert sim_np.simulate_fault(
                fault, good, 96
            ) == sim_it.simulate_fault(fault, good, 96), fault


class TestBatchedFaultSim:
    """The fault-parallel batched sweep: one strategy, same answers."""

    def _sites(self, plan, state, faults):
        sites = []
        for f in faults:
            if f.branch is None:
                sites.append((plan.row[f.node], state.stuck_row(f.value)))
            else:
                sink, pin = f.branch
                forced = state.inject_branch(
                    sink, pin, state.stuck_row(f.value)
                ).copy()
                sites.append((plan.row[sink], forced))
        return sites

    @pytest.mark.parametrize("n_patterns", [64, 100, 200])
    def test_matches_per_cone_walks(self, n_patterns):
        circuit = generators.random_dag(5, 40, seed=11)
        plan = get_plan(circuit)
        stim = _stim(circuit, n_patterns, seed=3)
        state = LogicSimulator(circuit, kernel="numpy").run(stim, n_patterns)
        good = dict(state)
        faults = all_stuck_at_faults(circuit)
        detect, evals = npsim.propagate_batch(
            state, self._sites(plan, state, faults)
        )
        assert evals > 0
        interp = FaultSimulator(circuit, kernel="interp")
        words = npsim.rows_to_words(detect)
        for fault, word in zip(faults, words):
            assert word == interp.simulate_fault(
                fault, good, n_patterns
            ), fault

    def test_chunking_is_result_invariant(self):
        circuit = generators.random_dag(5, 40, seed=11)
        plan = get_plan(circuit)
        n_patterns = 130
        stim = _stim(circuit, n_patterns, seed=5)
        state = LogicSimulator(circuit, kernel="numpy").run(stim, n_patterns)
        sites = self._sites(plan, state, all_stuck_at_faults(circuit))
        full, evals_full = npsim.propagate_batch(state, sites)
        # ~4 fault machines per chunk forces many site-sorted chunks.
        tiny_budget = 8 * plan.n_rows * state.values.shape[1] * 4
        tiny, evals_tiny = npsim.propagate_batch(
            state, sites, chunk_bytes=tiny_budget
        )
        assert np.array_equal(full, tiny)
        # Site-sorted chunks block-copy their fault-free prefix rows, so
        # splitting can only shed evaluations, never add them.
        assert 0 < evals_tiny <= evals_full

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 50),
        tile=st.sampled_from([1, 2, 3, 5]),
        n_patterns=st.sampled_from([130, 192, 323]),
    )
    def test_tile_seams_bit_identical(self, seed, tile, n_patterns):
        # Word-axis tiling must commute with evaluation: any tile width
        # (including widths that straddle the last partial word) yields
        # the untiled detection matrix and gate-eval count exactly.
        circuit = generators.random_dag(5, 40, seed=seed)
        plan = get_plan(circuit)
        stim = _stim(circuit, n_patterns, seed=seed + 1)
        state = LogicSimulator(circuit, kernel="numpy").run(stim, n_patterns)
        sites = self._sites(plan, state, all_stuck_at_faults(circuit))
        # Pin the per-chunk fault capacity so tiling is the only thing
        # that varies (capacity is per-tile-footprint by default).
        rows = plan.n_rows + npsim.batch_staging_rows(plan)
        budget = 8 * rows * tile * 24
        full, evals_full = npsim.propagate_batch(
            state, sites, chunk_bytes=budget * max(state.values.shape[1], 1),
            tile_words=state.values.shape[1],
        )
        tiled, evals_tiled = npsim.propagate_batch(
            state, sites, chunk_bytes=budget, tile_words=tile
        )
        assert np.array_equal(full, tiled)

    def test_tiled_run_matches_interp_end_to_end(self):
        # Force tiles *and* chunks through a tiny memory budget and the
        # fault simulator must still reproduce the interpreted run and
        # coverage results exactly, first-detects included.
        from repro.sim.fault_sim import BatchPolicy

        circuit = generators.random_dag(5, 40, seed=13)
        plan = get_plan(circuit)
        n_patterns = 300
        stim = _stim(circuit, n_patterns, seed=4)
        rows = plan.n_rows + npsim.batch_staging_rows(plan)
        policy = BatchPolicy(
            min_faults=1, min_capacity=1, chunk_bytes=8 * rows * 2 * 5
        )
        ref = FaultSimulator(circuit, kernel="interp")
        sim = FaultSimulator(circuit, kernel="numpy", batch_policy=policy)
        res = sim.run(stim, n_patterns)
        exact = ref.run(stim, n_patterns)
        assert res.detection_word == exact.detection_word
        assert res.first_detect == exact.first_detect
        cov = FaultSimulator(
            circuit, kernel="numpy", batch_policy=policy
        ).run_coverage(stim, n_patterns, block=64)
        ref_cov = ref.run_coverage(stim, n_patterns, block=64)
        assert cov.first_detect == ref_cov.first_detect
        assert cov.detection_word == ref_cov.detection_word

    def test_capacity_charges_staging_rows(self):
        # Regression: capacity once counted only the faulty value cube,
        # letting wide-output circuits overshoot the memory budget by
        # the staged output block.  Pin the exact boundary: a budget of
        # precisely K machines' full footprint holds K, one byte less
        # holds K - 1, and cube-only accounting would still claim K fit.
        circuit = generators.random_dag(5, 40, seed=3)
        plan = get_plan(circuit)
        staging = npsim.batch_staging_rows(plan)
        assert staging == len(plan.outputs) + 3
        words, K = 4, 7
        n_patterns = words * 64
        footprint = 8 * (plan.n_rows + staging) * words
        capacity = lambda budget: npsim.batch_capacity(
            plan, n_patterns, chunk_bytes=budget, tile_words=words
        )
        assert capacity(footprint * K) == K
        assert capacity(footprint * K - 1) == K - 1
        assert 8 * plan.n_rows * words * K <= footprint * K - 1

    def test_strategy_picked_only_for_wide_fault_lists(self, monkeypatch):
        circuit = generators.c17()
        stim = _stim(circuit, 64)
        calls = []
        real = npsim.propagate_batch

        def spy(state, sites, chunk_bytes=npsim.BATCH_CHUNK_BYTES):
            calls.append(len(sites))
            return real(state, sites, chunk_bytes)

        monkeypatch.setattr(npsim, "propagate_batch", spy)
        faults = all_stuck_at_faults(circuit)
        sim = FaultSimulator(circuit, kernel="numpy")
        sim.run(stim, 64, faults=faults[:4])
        assert calls == []  # short list: per-cone walks
        sim.run(stim, 64, faults=faults)
        assert calls == [len(faults)]

    def test_batch_declined_outside_its_regime(self):
        sim = FaultSimulator(generators.c17(), kernel="numpy")
        assert sim._np_batch_ok(1000, 64)
        assert sim._np_batch_ok(1000, 1024)
        assert not sim._np_batch_ok(8, 64)  # too few faults
        # Wide patterns stay eligible: the sweep tiles the word axis, so
        # chunk capacity no longer collapses with the pattern budget.
        assert sim._np_batch_ok(1000, 65536)
        assert sim._np_batch_ok(1000, 1 << 26)

    def test_batch_policy_pins_the_decision(self):
        from repro.sim.fault_sim import BatchPolicy

        circuit = generators.c17()
        # The old fixed-width regime: cap the batch at 16 words and wide
        # pattern runs fall back to per-cone walks again.
        capped = FaultSimulator(
            circuit, kernel="numpy", batch_policy=BatchPolicy(max_words=16)
        )
        assert capped._np_batch_ok(1000, 1024)
        assert not capped._np_batch_ok(1000, 65536)
        # A higher fault floor declines lists the default accepts.
        picky = FaultSimulator(
            circuit, kernel="numpy", batch_policy=BatchPolicy(min_faults=64)
        )
        assert not picky._np_batch_ok(32, 64)
        assert picky._np_batch_ok(64, 64)

    def test_batch_policy_from_env(self, monkeypatch):
        from repro.sim.fault_sim import BatchPolicy

        monkeypatch.setenv("REPRO_NP_BATCH_MIN_FAULTS", "5")
        monkeypatch.setenv("REPRO_NP_BATCH_MAX_WORDS", "8")
        monkeypatch.setenv("REPRO_NP_BATCH_CHUNK_BYTES", str(1 << 20))
        policy = BatchPolicy.from_env()
        assert policy.min_faults == 5
        assert policy.max_words == 8
        assert policy.chunk_bytes == 1 << 20
        monkeypatch.setenv("REPRO_NP_BATCH_MAX_WORDS", "none")
        assert BatchPolicy.from_env().max_words is None
        monkeypatch.setenv("REPRO_NP_BATCH_MAX_WORDS", "0")
        assert BatchPolicy.from_env().max_words is None


class TestCopEquality:
    @pytest.mark.parametrize("stem_combine", ["or", "max"])
    def test_measures_bit_identical(self, stem_combine):
        for circuit in _circuits():
            ref = cop_measures(
                circuit, kernel="interp", stem_combine=stem_combine
            )
            for kernel in ("compiled", "numpy"):
                got = cop_measures(
                    circuit, kernel=kernel, stem_combine=stem_combine
                )
                assert got.probability == ref.probability, kernel
                assert got.observability == ref.observability, kernel
                assert got.branch_observability == (
                    ref.branch_observability
                ), kernel

    def test_overrides_fall_back_to_interp(self):
        circuit = generators.c17()
        node = circuit.node_names[-1]
        ref = cop_measures(
            circuit, kernel="interp", probability_overrides={node: 0.25}
        )
        got = cop_measures(
            circuit, kernel="numpy", probability_overrides={node: 0.25}
        )
        assert got.probability == ref.probability


def _random_points(circuit, seed, max_points=3):
    rng = random.Random(seed)
    points = []
    controlled = set()
    for _ in range(rng.randint(0, max_points)):
        node = rng.choice(circuit.node_names)
        kind = rng.choice(PLACEABLE)
        branch = None
        fanouts = circuit.fanouts(node)
        if fanouts and rng.random() < 0.4:
            branch = rng.choice(fanouts)
        site = (node, branch)
        if kind.is_control:
            if site in controlled:
                continue
            controlled.add(site)
        point = TestPoint(node, kind, branch=branch)
        if point not in points:
            points.append(point)
    return points


def _placement_payload(ev):
    return (
        ev.stem_pre,
        ev.stem_post,
        ev.wire_obs,
        ev.branch_pre,
        ev.branch_post,
        ev.branch_obs,
        ev.stem_post_obs,
    )


class TestPlacementEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_placements_bit_identical(self, seed):
        circuit = generators.random_dag(5, 35, seed=seed)
        problem = TPIProblem.from_test_length(circuit, n_patterns=64)
        points = _random_points(circuit, seed * 31 + 7)
        ref = evaluate_placement(problem, points, kernel="interp")
        for kernel in ("compiled", "numpy"):
            got = evaluate_placement(problem, points, kernel=kernel)
            assert _placement_payload(got) == _placement_payload(ref), kernel

    def test_empty_placement(self):
        circuit = generators.c17()
        problem = TPIProblem.from_test_length(circuit, n_patterns=64)
        ref = evaluate_placement(problem, [], kernel="interp")
        got = evaluate_placement(problem, [], kernel="numpy")
        assert _placement_payload(got) == _placement_payload(ref)

    def test_incremental_base_pass_accepts_numpy(self):
        from repro.core.incremental import IncrementalEvaluator

        circuit = generators.random_dag(4, 20, seed=2)
        problem = TPIProblem.from_test_length(circuit, n_patterns=64)
        ref = IncrementalEvaluator(problem, kernel="interp").evaluate(())
        got = IncrementalEvaluator(problem, kernel="numpy").evaluate(())
        assert got.wire_obs == ref.wire_obs
        assert got.stem_pre == ref.stem_pre


class TestGuardOnNumpy:
    def test_clean_run_under_full_shadowing(self, tmp_path):
        circuit = generators.c17()
        stim = _stim(circuit, 64)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        sim = FaultSimulator(circuit, kernel="numpy", guard=guard)
        result = sim.run(stim, 64)
        assert guard.checks > 0
        assert guard.divergences == 0
        arbiter = FaultSimulator(circuit, kernel="interp").run(stim, 64)
        assert result.detection_word == arbiter.detection_word

    def test_planted_cone_divergence_raises(self, tmp_path, monkeypatch):
        circuit = generators.c17()
        stim = _stim(circuit, 64)
        real = npsim.propagate_cone

        def corrupt(state, cone, injected, want_diffs):
            detect, diffs = real(state, cone, injected, want_diffs)
            return detect ^ 1, diffs  # flip pattern 0's verdict

        monkeypatch.setattr(npsim, "propagate_cone", corrupt)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        sim = FaultSimulator(circuit, kernel="numpy", guard=guard)
        # A short fault list keeps run() on the per-cone strategy.
        faults = all_stuck_at_faults(circuit)[:4]
        with pytest.raises(DivergenceError) as info:
            sim.run(stim, 64, faults=faults)
        assert info.value.kind == "fault_sim.cone"
        assert guard.divergences == 1

    def test_planted_batch_divergence_raises(self, tmp_path, monkeypatch):
        circuit = generators.c17()
        stim = _stim(circuit, 64)
        real = npsim.propagate_batch

        def corrupt(state, sites, chunk_bytes=npsim.BATCH_CHUNK_BYTES):
            detect, evals = real(state, sites, chunk_bytes)
            detect[:, 0] ^= np.uint64(1)
            return detect, evals

        monkeypatch.setattr(npsim, "propagate_batch", corrupt)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        sim = FaultSimulator(circuit, kernel="numpy", guard=guard)
        # c17's full collapsed list is wide enough for the batched pass.
        with pytest.raises(DivergenceError) as info:
            sim.run(stim, 64)
        assert info.value.kind == "fault_sim.cone"
        assert guard.divergences == 1

    def test_cop_shadow_records_numpy_kernel(self, tmp_path):
        circuit = generators.random_dag(4, 12, seed=5)
        guard = Guard(fraction=1.0, seed=0, bundle_dir=tmp_path)
        cop_measures(circuit, kernel="numpy", guard=guard)
        assert guard.checks >= 1
        assert guard.divergences == 0


class TestBackendProperties:
    """Hypothesis sweep: every backend agrees on every measure."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        n_patterns=st.sampled_from([1, 17, 64, 65, 192]),
    )
    def test_fault_coverage_and_first_detect(self, seed, n_patterns):
        circuit = generators.random_dag(4, 25, seed=seed)
        stim = _stim(circuit, n_patterns, seed=seed)
        faults = all_stuck_at_faults(circuit)
        ref = FaultSimulator(circuit, kernel="interp").run_coverage(
            stim, n_patterns, faults=faults, block=64
        )
        for kernel in ("compiled", "numpy"):
            got = FaultSimulator(circuit, kernel=kernel).run_coverage(
                stim, n_patterns, faults=faults, block=64
            )
            assert got.first_detect == ref.first_detect, kernel
            assert got.n_detected() == ref.n_detected(), kernel

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_cop_and_placement(self, seed):
        circuit = generators.random_dag(4, 25, seed=seed)
        ref_cop = cop_measures(circuit, kernel="interp")
        problem = TPIProblem.from_test_length(circuit, n_patterns=64)
        points = _random_points(circuit, seed ^ 0xBEEF)
        ref_ev = evaluate_placement(problem, points, kernel="interp")
        for kernel in ("compiled", "numpy"):
            got_cop = cop_measures(circuit, kernel=kernel)
            assert got_cop.probability == ref_cop.probability, kernel
            assert got_cop.observability == ref_cop.observability, kernel
            got_ev = evaluate_placement(problem, points, kernel=kernel)
            assert _placement_payload(got_ev) == (
                _placement_payload(ref_ev)
            ), kernel


class TestParallelNumpy:
    def test_jobs_chunking_matches_serial(self):
        from repro.sim import run_parallel

        circuit = generators.random_dag(5, 40, seed=11)
        n_patterns = 400
        stim = _stim(circuit, n_patterns, seed=9)
        faults = all_stuck_at_faults(circuit)
        serial = FaultSimulator(circuit, kernel="interp").run(
            stim, n_patterns, faults=faults
        )
        par = run_parallel(
            circuit, stim, n_patterns,
            faults=faults, jobs=2, kernel="numpy",
        )
        assert par.detection_word == serial.detection_word
        assert par.first_detect == serial.first_detect

    def test_jobs_coverage_matches_serial(self):
        from repro.sim import run_parallel

        circuit = generators.random_dag(5, 40, seed=11)
        n_patterns = 400
        stim = _stim(circuit, n_patterns, seed=10)
        faults = all_stuck_at_faults(circuit)
        serial = FaultSimulator(circuit, kernel="interp").run_coverage(
            stim, n_patterns, faults=faults, block=64
        )
        par = run_parallel(
            circuit, stim, n_patterns,
            faults=faults, jobs=2, kernel="numpy",
            mode="coverage", block=64,
        )
        assert par.first_detect == serial.first_detect
