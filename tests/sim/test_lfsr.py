"""Unit tests for the LFSR pattern generator."""

import pytest

from repro.sim import LFSR, PRIMITIVE_TAPS, primitive_taps


class TestTapsTable:
    def test_all_degrees_present(self):
        assert set(PRIMITIVE_TAPS) == set(range(2, 33))

    def test_highest_tap_is_degree(self):
        for degree, taps in PRIMITIVE_TAPS.items():
            assert max(taps) == degree

    def test_lookup(self):
        assert primitive_taps(16) == (16, 5, 3, 2)
        with pytest.raises(KeyError):
            primitive_taps(99)

    @pytest.mark.parametrize("degree", range(2, 13))
    def test_primitivity_via_period(self, degree):
        """A primitive polynomial gives the full 2^n - 1 period."""
        lfsr = LFSR(degree, seed=1)
        seen = set()
        state = lfsr.state
        for _ in range(lfsr.period()):
            assert state not in seen
            seen.add(state)
            state = lfsr.step()
        assert state == 1  # back to the seed
        assert len(seen) == lfsr.period()
        assert 0 not in seen


class TestLFSR:
    def test_seed_validation(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)
        with pytest.raises(ValueError):
            LFSR(1)

    def test_custom_taps_must_reach_degree(self):
        with pytest.raises(ValueError):
            LFSR(8, taps=(5, 3))

    def test_state_bits(self):
        lfsr = LFSR(4, seed=0b1010)
        assert lfsr.state_bits() == [0, 1, 0, 1]

    def test_sequence_yields_then_advances(self):
        lfsr = LFSR(5, seed=3)
        states = list(lfsr.sequence(4))
        assert states[0] == 3
        assert len(set(states)) == 4

    def test_never_zero(self):
        lfsr = LFSR(6)
        for _ in range(200):
            assert lfsr.step() != 0

    def test_packed_input_words_shape(self):
        lfsr = LFSR(8)
        words = lfsr.packed_input_words(5, 100)
        assert len(words) == 5
        for w in words:
            assert 0 <= w < (1 << 100)

    def test_packed_words_roughly_fair(self):
        lfsr = LFSR(16)
        words = lfsr.packed_input_words(4, 4096)
        for w in words:
            assert w.bit_count() / 4096 == pytest.approx(0.5, abs=0.05)
