"""Chaos hardening: injected worker failures must never change results.

Every test compares a `run_parallel` call under deterministic fault
injection (`ChaosSpec`) against the plain serial `FaultSimulator.run`:
the contract is bit-identical detection words and first-detect indices
no matter what the workers do, with the recovery visible in the
`parallel.retries` / `parallel.degraded` observability counters.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.circuit import generators
from repro.obs.recorder import RunRecorder
from repro.resilience import ChaosSpec
from repro.sim import FaultSimulator, UniformRandomSource, run_parallel


def _workload(seed=0, n_gates=30, n_patterns=128):
    circuit = generators.random_dag(5, n_gates, seed=seed)
    stimulus = UniformRandomSource(seed=seed).generate(
        circuit.inputs, n_patterns
    )
    return circuit, stimulus, n_patterns


def _serial(circuit, stimulus, n):
    return FaultSimulator(circuit).run(stimulus, n)


def _assert_identical(parallel, serial):
    assert parallel.detection_word == serial.detection_word
    assert parallel.first_detect == serial.first_detect
    assert parallel.n_patterns == serial.n_patterns


class _Counters:
    """Context manager capturing obs counters for one block."""

    def __enter__(self):
        self.recorder = RunRecorder(None)
        self.previous = obs.set_recorder(self.recorder)
        return self

    def __exit__(self, *exc):
        obs.set_recorder(self.previous)
        self.snapshot = self.recorder.metrics.snapshot().get("counters", {})
        self.recorder.close()
        return False

    def value(self, name):
        return self.snapshot.get(name, 0.0)


class TestChaosSpec:
    def test_deterministic_action(self):
        spec = ChaosSpec(seed=3, crash=0.25, hang=0.25)
        actions = [spec.action(i, 0) for i in range(50)]
        assert actions == [spec.action(i, 0) for i in range(50)]
        assert any(actions)  # 50% total probability: some chunk is hit

    def test_first_attempt_only(self):
        spec = ChaosSpec(seed=0, forced=((0, "crash"),))
        assert spec.action(0, 0) == "crash"
        assert spec.action(0, 1) is None

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(crash=0.7, hang=0.7)

    def test_forced_action_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(forced=((0, "explode"),))


class TestCrashAndHang:
    def test_worker_crash_and_hung_chunk_seed0(self):
        """The acceptance scenario: crash + hang, seed 0, bit-identical."""
        circuit, stimulus, n = _workload(seed=0)
        serial = _serial(circuit, stimulus, n)
        chaos = ChaosSpec(
            seed=0, forced=((0, "crash"), (1, "hang")), hang_seconds=5.0
        )
        with _Counters() as counters:
            parallel = run_parallel(
                circuit,
                stimulus,
                n,
                jobs=2,
                chaos=chaos,
                chunk_timeout=0.75,
            )
        _assert_identical(parallel, serial)
        assert (
            counters.value("parallel.retries")
            + counters.value("parallel.degraded")
            > 0
        )

    def test_seeded_random_crashes(self):
        circuit, stimulus, n = _workload(seed=1)
        serial = _serial(circuit, stimulus, n)
        parallel = run_parallel(
            circuit, stimulus, n, jobs=2,
            chaos=ChaosSpec(seed=7, crash=0.5),
        )
        _assert_identical(parallel, serial)


class TestCorruptAndSpurious:
    def test_corrupt_payload_retried(self):
        circuit, stimulus, n = _workload(seed=2)
        serial = _serial(circuit, stimulus, n)
        with _Counters() as counters:
            parallel = run_parallel(
                circuit, stimulus, n, jobs=2,
                chaos=ChaosSpec(seed=0, forced=((0, "corrupt"),)),
            )
        _assert_identical(parallel, serial)
        assert counters.value("parallel.retries") >= 1

    def test_spurious_exception_retried(self):
        circuit, stimulus, n = _workload(seed=3)
        serial = _serial(circuit, stimulus, n)
        with _Counters() as counters:
            parallel = run_parallel(
                circuit, stimulus, n, jobs=2,
                chaos=ChaosSpec(seed=0, forced=((1, "spurious"),)),
            )
        _assert_identical(parallel, serial)
        assert counters.value("parallel.retries") >= 1

    def test_everything_at_once(self):
        circuit, stimulus, n = _workload(seed=4)
        serial = _serial(circuit, stimulus, n)
        chaos = ChaosSpec(
            seed=11,
            forced=((0, "crash"), (1, "corrupt"), (2, "spurious")),
            hang_seconds=5.0,
        )
        parallel = run_parallel(
            circuit, stimulus, n, jobs=3, chaos=chaos, chunk_timeout=2.0
        )
        _assert_identical(parallel, serial)


class TestDegradation:
    def test_persistent_failure_degrades_to_serial(self):
        """Chaos on every attempt: chunks degrade, result still exact."""
        circuit, stimulus, n = _workload(seed=5)
        serial = _serial(circuit, stimulus, n)
        chaos = ChaosSpec(
            seed=0,
            forced=((0, "corrupt"),),
            first_attempt_only=False,  # retries fail too
        )
        with _Counters() as counters:
            parallel = run_parallel(
                circuit, stimulus, n, jobs=2, chaos=chaos, max_attempts=2
            )
        _assert_identical(parallel, serial)
        assert counters.value("parallel.degraded") >= 1

    def test_coverage_mode_under_chaos(self):
        circuit, stimulus, n = _workload(seed=6)
        serial = _serial(circuit, stimulus, n)
        parallel = run_parallel(
            circuit, stimulus, n, jobs=2, mode="coverage",
            chaos=ChaosSpec(seed=0, forced=((1, "crash"),)),
        )
        assert parallel.first_detect == serial.first_detect
        assert parallel.coverage() == serial.coverage()


class TestSweepSurvivesChaos:
    def test_sweep_checkpoint_intact_after_chaotic_coverage(self, tmp_path):
        """A sweep using chaotic parallel coverage loses no checkpoint data."""
        from repro.analysis.experiments import run_circuit_sweep
        from repro.circuit.bench_io import write_bench

        paths = []
        for i in range(3):
            c = generators.random_dag(4, 12, seed=i)
            p = tmp_path / f"c{i}.bench"
            p.write_text(write_bench(c))
            paths.append(p)
        ckpt = tmp_path / "sweep.jsonl"
        outcomes = run_circuit_sweep(
            paths, ckpt, n_patterns=64, measure_coverage=True, jobs=2
        )
        assert all(o.ok for o in outcomes)
        resumed = run_circuit_sweep(paths, ckpt, n_patterns=64)
        assert [o.circuit for o in resumed] == [o.circuit for o in outcomes]
