"""Unit and property tests for the pattern-parallel fault simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, generators
from repro.circuit.gates import gate_function
from repro.sim import (
    ExhaustiveSource,
    Fault,
    FaultSimulator,
    UniformRandomSource,
    all_stuck_at_faults,
    collapse_faults,
    fault_coverage,
)


def brute_force_detection(circuit, fault, stimulus, n_patterns):
    """Reference: per-pattern scalar simulation of good and faulty circuits."""
    detected = 0
    for p in range(n_patterns):
        scalar_in = {pi: (stimulus.get(pi, 0) >> p) & 1 for pi in circuit.inputs}

        def run(faulty):
            values = dict(scalar_in)
            for name in circuit.topological_order():
                node = circuit.node(name)
                if node.is_gate:
                    fanins = []
                    for pin, fi in enumerate(node.fanins):
                        v = values[fi]
                        if (
                            faulty
                            and fault.branch is not None
                            and fault.branch == (name, pin)
                        ):
                            v = fault.value
                        fanins.append(v)
                    values[name] = gate_function(node.gate_type)(fanins)
                if faulty and fault.branch is None and name == fault.node:
                    values[name] = fault.value
            return [values[po] for po in circuit.outputs]

        if run(False) != run(True):
            detected |= 1 << p
    return detected


class TestAgainstBruteForce:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_random_dag_all_faults(self, seed):
        circuit = generators.random_dag(5, 12, seed=seed)
        n_patterns = 16
        stim = UniformRandomSource(seed=seed).generate(circuit.inputs, n_patterns)
        sim = FaultSimulator(circuit)
        result = sim.run(stim, n_patterns, collapse=False)
        for fault, word in result.detection_word.items():
            expected = brute_force_detection(circuit, fault, stim, n_patterns)
            assert word == expected, fault.describe()

    def test_c17_known_full_coverage(self, c17):
        n = 1 << 5
        stim = ExhaustiveSource().generate(c17.inputs, n)
        result = FaultSimulator(c17).run(stim, n)
        assert result.coverage() == 1.0  # c17 has no redundant faults


class TestEquivalenceInvariant:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_equivalent_faults_same_detection_word(self, seed):
        """Structural equivalence implies identical detection behaviour."""
        circuit = generators.random_dag(6, 20, seed=seed)
        n_patterns = 32
        stim = UniformRandomSource(seed=seed).generate(circuit.inputs, n_patterns)
        sim = FaultSimulator(circuit)
        result = sim.run(stim, n_patterns, collapse=False)
        collapsed = collapse_faults(circuit)
        for fault, rep in collapsed.class_of.items():
            assert result.detection_word[fault] == result.detection_word[rep], (
                fault.describe(),
                rep.describe(),
            )


class TestResultAccounting:
    def test_first_detect_and_curve(self, wand8):
        n = 1 << 8
        stim = ExhaustiveSource().generate(wand8.inputs, n)
        result = FaultSimulator(wand8).run(stim, n, collapse=False)
        # Output s-a-0 is detected only by the all-ones (last) pattern.
        out = wand8.outputs[0]
        assert result.first_detect[Fault(out, 0)] == n - 1
        curve = result.coverage_curve()
        assert curve[-1][1] == result.coverage()
        # Monotone non-decreasing.
        values = [cov for _n, cov in curve]
        assert values == sorted(values)

    def test_coverage_at(self, wand8):
        n = 1 << 8
        stim = ExhaustiveSource().generate(wand8.inputs, n)
        result = FaultSimulator(wand8).run(stim, n)
        assert result.coverage_at(n) == result.coverage()
        assert result.coverage_at(1) <= result.coverage_at(n // 2)

    def test_undetected_fault_listed(self):
        # AND output observed only: input s-a-1 needs the other input at 1.
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.and_(a, c, name="y"))
        circuit = b.build()
        stim = {"a": 0b01, "b": 0b00}  # b never 1 → a faults unobservable
        result = FaultSimulator(circuit).run(stim, 2, collapse=False)
        assert Fault("a", 0) in set(result.undetected_faults())

    def test_detection_probability(self, wand8):
        n = 1 << 8
        stim = ExhaustiveSource().generate(wand8.inputs, n)
        result = FaultSimulator(wand8).run(stim, n, collapse=False)
        out = wand8.outputs[0]
        assert result.detection_probability(Fault(out, 0)) == pytest.approx(1 / n)
        assert result.detection_probability(Fault(out, 1)) == pytest.approx(1 - 1 / n)

    def test_empty_fault_list(self, and2):
        result = FaultSimulator(and2).run({"a": 1, "b": 1}, 1, faults=[])
        assert result.coverage() == 1.0


class TestConvenience:
    def test_fault_coverage_wrapper(self, c17):
        stim = UniformRandomSource(seed=1).generate(c17.inputs, 256)
        cov = fault_coverage(c17, stim, 256)
        assert 0.9 <= cov <= 1.0

    def test_unexcitable_fault_zero_word(self, and2):
        sim = FaultSimulator(and2)
        good = {"a": 0b11, "b": 0b11, "y": 0b11}
        # y stuck at 1 while y is already 1 everywhere → never excited.
        assert sim.simulate_fault(Fault("y", 1), good, 2) == 0
