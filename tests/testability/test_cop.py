"""Unit and property tests for COP probabilities and observabilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, generators
from repro.sim import ExhaustiveSource, FaultSimulator, UniformRandomSource, simulate
from repro.testability import cop_measures, observabilities, signal_probabilities


class TestSignalProbabilities:
    def test_and_chain(self, chain3):
        probs = signal_probabilities(chain3)
        assert probs["o1"] == pytest.approx(0.75)
        assert probs["a1"] == pytest.approx(0.375)
        assert probs["y"] == pytest.approx(0.625)

    def test_custom_input_probabilities(self, and2):
        probs = signal_probabilities(and2, {"a": 1.0, "b": 0.25})
        assert probs["y"] == pytest.approx(0.25)

    def test_overrides_propagate(self, chain3):
        probs = signal_probabilities(chain3, overrides={"o1": 1.0})
        assert probs["o1"] == 1.0
        assert probs["a1"] == pytest.approx(0.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_exact_on_trees(self, seed):
        """On fanout-free circuits COP equals the exhaustive-simulation truth."""
        circuit = generators.random_tree(8, seed=seed)
        n_inputs = len(circuit.inputs)
        if n_inputs > 12:
            return
        n = 1 << n_inputs
        stim = ExhaustiveSource().generate(circuit.inputs, n)
        values = simulate(circuit, stim, n)
        probs = signal_probabilities(circuit)
        for name, word in values.items():
            assert probs[name] == pytest.approx(word.bit_count() / n, abs=1e-9)

    def test_approximate_under_reconvergence(self, diamond):
        """The diamond's output is constant 0 but COP reports > 0 — the
        classic independence-assumption error that motivates exact-on-trees."""
        probs = signal_probabilities(diamond)
        n = 4
        stim = ExhaustiveSource().generate(diamond.inputs, n)
        true_p = simulate(diamond, stim, n)["y"].bit_count() / n
        assert true_p == 0.0
        assert probs["y"] > 0.0


class TestObservabilities:
    def test_output_fully_observable(self, chain3):
        cop = cop_measures(chain3)
        assert cop.observability["y"] == 1.0

    def test_and_side_input_attenuates(self, and2):
        cop = cop_measures(and2)
        # a observable iff b == 1 (prob 0.5).
        assert cop.observability["a"] == pytest.approx(0.5)
        assert cop.branch_observability[("a", "y", 0)] == pytest.approx(0.5)

    def test_chain_observability(self, chain3):
        cop = cop_measures(chain3)
        # b propagates through OR (c must be 0: 0.5) then AND (a must be 1: 0.5).
        assert cop.observability["b"] == pytest.approx(0.25)

    def test_xor_propagates_always(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.xor(a, c, name="y"))
        cop = cop_measures(b.build())
        assert cop.observability["a"] == 1.0

    def test_stem_combination_modes(self, diamond):
        probs = signal_probabilities(diamond)
        or_obs, _ = observabilities(diamond, probs, stem_combine="or")
        max_obs, _ = observabilities(diamond, probs, stem_combine="max")
        assert max_obs["s"] <= or_obs["s"] + 1e-12

    def test_invalid_mode(self, diamond):
        probs = signal_probabilities(diamond)
        with pytest.raises(ValueError):
            observabilities(diamond, probs, stem_combine="bogus")

    def test_observed_injection(self, chain3):
        probs = signal_probabilities(chain3)
        base, _ = observabilities(chain3, probs)
        boosted, _ = observabilities(chain3, probs, observed={"o1": 1.0})
        assert boosted["o1"] == 1.0
        assert boosted["b"] > base["b"]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_exact_detection_on_trees(self, seed):
        """excitation × observability = true detection prob on trees."""
        circuit = generators.random_tree(7, seed=seed)
        if len(circuit.inputs) > 11:
            return
        n = 1 << len(circuit.inputs)
        stim = ExhaustiveSource().generate(circuit.inputs, n)
        result = FaultSimulator(circuit).run(stim, n, collapse=False)
        cop = cop_measures(circuit)
        for fault, word in result.detection_word.items():
            true_d = word.bit_count() / n
            p1 = cop.probability[fault.node]
            excite = p1 if fault.value == 0 else 1.0 - p1
            model_d = excite * cop.observability[fault.node]
            assert model_d == pytest.approx(true_d, abs=1e-9), fault.describe()


class TestCOPResultHelpers:
    def test_controllability_accessors(self, and2):
        cop = cop_measures(and2)
        assert cop.one_controllability("y") == pytest.approx(0.25)
        assert cop.zero_controllability("y") == pytest.approx(0.75)
