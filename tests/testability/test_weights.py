"""Tests for weighted-random input optimization."""

import pytest

from repro.circuit import benchmark, generators
from repro.sim import FaultSimulator, WeightedRandomSource
from repro.testability import optimize_weights


class TestOptimizeWeights:
    def test_wide_and_gets_high_weights(self):
        """An AND cone needs 1-heavy inputs; the optimizer must find that."""
        circuit = generators.wide_and_cone(16)
        result = optimize_weights(circuit, n_patterns=4096)
        assert result.expected_coverage > 0.95
        assert result.gain > 0.5
        high = [w for _n, w in result.biased_inputs() if w > 0.5]
        assert len(high) >= 12

    def test_wide_or_gets_low_weights(self):
        circuit = generators.wide_or_cone(16)
        result = optimize_weights(circuit, n_patterns=4096)
        assert result.expected_coverage > 0.95
        low = [w for _n, w in result.biased_inputs() if w < 0.5]
        assert len(low) >= 12

    def test_correlation_resistance_immune_to_weights(self):
        """eqcmp needs input *correlations*; no weight assignment helps."""
        circuit = benchmark("eqcmp12")
        result = optimize_weights(circuit, n_patterns=4096)
        assert result.gain < 0.05

    def test_easy_circuit_stays_fair(self):
        circuit = generators.parity_tree(8)
        result = optimize_weights(circuit, n_patterns=1024)
        assert result.biased_inputs() == []
        assert result.expected_coverage == pytest.approx(
            result.baseline_expected_coverage
        )

    def test_predicted_tracks_measured_on_tree(self):
        """Optimized weights must deliver measured coverage near prediction
        on a fanout-free circuit (COP exact; average over realizations)."""
        circuit = generators.wide_and_cone(12)
        result = optimize_weights(circuit, n_patterns=2048)
        sim = FaultSimulator(circuit)
        coverages = []
        for seed in range(4):
            src = WeightedRandomSource(weights=result.weights, seed=seed)
            stim = src.generate(circuit.inputs, 2048)
            coverages.append(sim.run(stim, 2048).coverage())
        mean = sum(coverages) / len(coverages)
        assert mean == pytest.approx(result.expected_coverage, abs=0.12)

    def test_weights_stay_in_palette(self):
        circuit = generators.wide_and_cone(8)
        result = optimize_weights(circuit, n_patterns=512)
        palette = {0.125, 0.25, 0.5, 0.75, 0.875}
        assert set(result.weights.values()) <= palette

    def test_deterministic(self):
        circuit = benchmark("rprmix")
        a = optimize_weights(circuit, n_patterns=1024)
        b = optimize_weights(circuit, n_patterns=1024)
        assert a.weights == b.weights
