"""Unit tests for SCOAP measures."""

import pytest

from repro.circuit import CircuitBuilder, generators
from repro.sim import Fault
from repro.testability import scoap_measures


class TestControllability:
    def test_inputs_cost_one(self, and2):
        s = scoap_measures(and2)
        assert s.cc0["a"] == 1 and s.cc1["a"] == 1

    def test_and_gate(self, and2):
        s = scoap_measures(and2)
        assert s.cc1["y"] == 3  # both inputs at 1: 1 + 1 + 1
        assert s.cc0["y"] == 2  # one input at 0: 1 + 1

    def test_nand_swaps(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.nand(a, c, name="y"))
        s = scoap_measures(b.build())
        assert s.cc0["y"] == 3
        assert s.cc1["y"] == 2

    def test_xor(self):
        b = CircuitBuilder("t")
        a, c = b.inputs("a", "b")
        b.output(b.xor(a, c, name="y"))
        s = scoap_measures(b.build())
        assert s.cc1["y"] == 3  # one input 1, other 0
        assert s.cc0["y"] == 3

    def test_deep_and_tree_grows(self):
        c = generators.wide_and_cone(8)
        s = scoap_measures(c)
        assert s.cc1[c.outputs[0]] == 8 + 7  # 8 inputs + 7 gates
        assert s.cc0[c.outputs[0]] <= 4

    def test_constants(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        z = b.const0(name="z")
        b.output(b.or_(a, z, name="y"))
        s = scoap_measures(b.build())
        assert s.cc0["z"] == 1
        assert s.cc1["z"] >= 10**8  # unreachable


class TestObservability:
    def test_output_is_zero(self, and2):
        s = scoap_measures(and2)
        assert s.co["y"] == 0

    def test_and_side_cost(self, and2):
        s = scoap_measures(and2)
        # To observe a: set b=1 (cost 1) + 1 level = 2.
        assert s.co["a"] == 2

    def test_chain_accumulates(self, chain3):
        s = scoap_measures(chain3)
        # b: through OR needs c=0 (1), +1; through AND needs a=1 (1), +1;
        # NOT +1 → 5.
        assert s.co["b"] == 5

    def test_stem_takes_cheapest_branch(self, diamond):
        s = scoap_measures(diamond)
        assert s.co["s"] <= min(s.co["p"], s.co["q"]) + 3


class TestTestability:
    def test_fault_effort(self, and2):
        s = scoap_measures(and2)
        # y s-a-0 needs CC1(y) + CO(y) = 3 + 0.
        assert s.testability("y", 0) == 3
        assert s.testability("a", 1) == s.cc0["a"] + s.co["a"]

    def test_hard_fault_ranks_harder(self):
        c = generators.wide_and_cone(16)
        s = scoap_measures(c)
        out = c.outputs[0]
        easy = s.testability(out, 1)
        hard = s.testability(out, 0)
        assert hard > easy
