"""Unit tests for the test-length ↔ threshold ↔ confidence arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Fault
from repro.testability import (
    escape_probability,
    expected_coverage,
    required_test_length,
    required_threshold,
)
from repro.testability import test_length_for_fault_set as length_for_fault_set


class TestEscapeProbability:
    def test_basics(self):
        assert escape_probability(0.5, 1) == 0.5
        assert escape_probability(0.5, 2) == 0.25
        assert escape_probability(1.0, 5) == 0.0
        assert escape_probability(0.0, 5) == 1.0
        assert escape_probability(0.3, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            escape_probability(1.5, 10)
        with pytest.raises(ValueError):
            escape_probability(0.5, -1)


class TestRequiredTestLength:
    def test_known_value(self):
        # d=0.5, 99% confidence: log(0.01)/log(0.5) ≈ 6.64.
        assert required_test_length(0.5, 0.99) == pytest.approx(6.6438, abs=1e-3)

    def test_edges(self):
        assert required_test_length(0.0, 0.9) == math.inf
        assert required_test_length(1.0, 0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_test_length(0.5, 1.0)

    @given(
        d=st.floats(1e-6, 1 - 1e-6),
        conf=st.floats(0.01, 0.999),
    )
    def test_inverse_of_escape(self, d, conf):
        n = required_test_length(d, conf)
        # Applying ceil(n) patterns meets the confidence.
        assert escape_probability(d, math.ceil(n)) <= (1 - conf) + 1e-9


class TestRequiredThreshold:
    def test_round_trip_with_escape(self):
        theta = required_threshold(4096, 0.001)
        assert escape_probability(theta, 4096) == pytest.approx(0.001, rel=1e-6)

    def test_monotone_in_patterns(self):
        assert required_threshold(1024, 0.01) > required_threshold(8192, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_threshold(0, 0.01)
        with pytest.raises(ValueError):
            required_threshold(100, 0.0)


class TestAggregate:
    def test_expected_coverage(self):
        probs = {Fault("a", 0): 1.0, Fault("a", 1): 0.0}
        assert expected_coverage(probs, 100) == pytest.approx(0.5)
        assert expected_coverage({}, 100) == 1.0

    def test_expected_coverage_grows_with_patterns(self):
        probs = {Fault("a", 0): 0.01, Fault("b", 0): 0.001}
        assert expected_coverage(probs, 1000) > expected_coverage(probs, 10)

    def test_length_for_fault_set(self):
        probs = {Fault("a", 0): 0.5, Fault("b", 0): 0.01}
        n = length_for_fault_set(probs, 0.99)
        assert n == pytest.approx(required_test_length(0.01, 0.99))
        assert length_for_fault_set({}, 0.99) == 0.0

    def test_undetectable_gives_inf(self):
        assert length_for_fault_set({Fault("a", 0): 0.0}, 0.9) == math.inf
