"""Unit tests for detection-probability estimation and RPR identification."""

import pytest

from repro.circuit import generators
from repro.sim import ExhaustiveSource, Fault, FaultSimulator
from repro.testability import (
    cop_measures,
    detection_probabilities,
    fault_detection_probability,
    random_pattern_resistant_faults,
    worst_fault,
)


class TestDetectionProbability:
    def test_wide_and_output_fault(self):
        c = generators.wide_and_cone(8)
        cop = cop_measures(c)
        out = c.outputs[0]
        assert fault_detection_probability(Fault(out, 0), cop) == pytest.approx(
            1 / 256
        )
        assert fault_detection_probability(Fault(out, 1), cop) == pytest.approx(
            255 / 256
        )

    def test_branch_fault_uses_branch_observability(self, diamond):
        cop = cop_measures(diamond)
        d_branch = fault_detection_probability(
            Fault("s", 0, branch=("p", 0)), cop
        )
        d_stem = fault_detection_probability(Fault("s", 0), cop)
        assert 0.0 <= d_branch <= d_stem + 1e-12

    def test_full_map(self, c17):
        probs = detection_probabilities(c17)
        from repro.sim import all_stuck_at_faults

        assert set(probs) == set(all_stuck_at_faults(c17))
        assert all(0.0 <= d <= 1.0 for d in probs.values())

    def test_matches_measured_on_tree(self):
        """COP detection equals exhaustive-measured detection on a tree."""
        c = generators.wide_and_cone(8)
        n = 256
        stim = ExhaustiveSource().generate(c.inputs, n)
        measured = FaultSimulator(c).run(stim, n, collapse=False)
        model = detection_probabilities(c)
        for fault, word in measured.detection_word.items():
            assert model[fault] == pytest.approx(word.bit_count() / n, abs=1e-9)


class TestRPRIdentification:
    def test_wide_and_faults_flagged(self):
        c = generators.wide_and_cone(16)
        rpr = random_pattern_resistant_faults(c, threshold=0.001)
        out = c.outputs[0]
        assert Fault(out, 0) in rpr
        assert Fault(out, 1) not in rpr

    def test_easy_circuit_clean(self):
        c = generators.parity_tree(8)
        assert random_pattern_resistant_faults(c, threshold=0.01) == []

    def test_worst_fault(self):
        c = generators.wide_and_cone(8)
        probs = detection_probabilities(c)
        worst = worst_fault(probs)
        assert probs[worst] == min(probs.values())

    def test_worst_fault_empty_raises(self):
        with pytest.raises(ValueError):
            worst_fault({})
