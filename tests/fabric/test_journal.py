"""The result journal: durable, torn-tolerant, exactly-once.

Every test here is about one invariant: a job's commit record exists in
the journal exactly once, no matter how the file was torn, reopened,
or offered duplicates.
"""

from __future__ import annotations

import json

from repro.fabric import Job, ResultJournal


def _job(n=0):
    return Job.build(
        "sweep_circuit", f"circuit:{n}", {"n": n}, payload={"i": n}, index=n
    )


class TestCommit:
    def test_commit_and_query(self, tmp_path):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            job = _job()
            assert not journal.is_done(job.job_id)
            assert journal.commit(job, {"status": "ok"}) is True
            assert journal.is_done(job.job_id)
            assert journal.result_for(job.job_id) == {"status": "ok"}

    def test_duplicate_commit_refused(self, tmp_path, counters):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            job = _job()
            journal.commit(job, {"status": "ok"})
            with counters() as ctrs:
                assert journal.commit(job, {"status": "other"}) is False
            assert ctrs.value("fabric.duplicates_rejected") == 1
            # The first result stands; nothing extra was written.
            assert journal.result_for(job.job_id) == {"status": "ok"}
        lines = path.read_text().splitlines()
        assert len(lines) == 1

    def test_exactly_once_across_reopen(self, tmp_path):
        path = tmp_path / "j.journal"
        job = _job()
        with ResultJournal(path) as journal:
            journal.commit(job, {"status": "ok"})
        with ResultJournal(path) as reopened:
            assert reopened.is_done(job.job_id)
            assert reopened.commit(job, {"status": "replayed"}) is False
            assert reopened.result_for(job.job_id) == {"status": "ok"}

    def test_seq_is_monotonic_across_reopen(self, tmp_path):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.commit(_job(0), {"status": "ok"})
        with ResultJournal(path) as journal:
            journal.commit(_job(1), {"status": "ok"})
        seqs = [
            json.loads(line)["seq"] for line in path.read_text().splitlines()
        ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestQuarantine:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.journal"
        job = _job()
        errors = [{"type": "RuntimeError", "message": "boom"}]
        with ResultJournal(path) as journal:
            assert journal.record_quarantine(
                job, attempts=3, errors=errors, artifact="/tmp/q"
            )
            assert journal.is_done(job.job_id)
            assert journal.result_for(job.job_id) is None
        with ResultJournal(path) as reopened:
            record = reopened.quarantined[job.job_id]
            assert record["attempts"] == 3
            assert record["errors"] == errors
            assert record["artifact"] == "/tmp/q"
            # Poison stays poison: commits after quarantine are refused.
            assert reopened.commit(job, {"status": "ok"}) is False


class TestCrashRecovery:
    def test_torn_tail_is_repaired_and_skipped(self, tmp_path):
        path = tmp_path / "j.journal"
        job = _job()
        with ResultJournal(path) as journal:
            journal.commit(job, {"status": "ok"})
        # A crash mid-append tears the last line (no trailing newline).
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "commit", "job_id": "torn-victim", "re')
        with ResultJournal(path) as recovered:
            assert recovered.torn_lines == 1
            assert recovered.is_done(job.job_id)
            assert not recovered.is_done("torn-victim")
            # The append position was realigned: a fresh commit decodes.
            other = _job(1)
            recovered.commit(other, {"status": "ok"})
        with ResultJournal(path) as final:
            assert final.is_done(other.job_id)
            assert final.torn_lines == 1

    def test_recover_append_realigns_partial_line(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = ResultJournal(path)
        journal.commit(_job(0), {"status": "ok"})
        # Simulate a failed append that left a partial fragment.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "commit", "jo')
        journal.recover_append()
        journal.commit(_job(1), {"status": "ok"})
        journal.close()
        with ResultJournal(path) as recovered:
            assert recovered.torn_lines == 1
            assert recovered.is_done(_job(0).job_id)
            assert recovered.is_done(_job(1).job_id)

    def test_foreign_records_preserved_and_ignored(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text(
            json.dumps({"circuit": "c0", "status": "ok"}) + "\n"
        )
        with ResultJournal(path) as journal:
            assert journal.foreign_records == 1
            job = _job()
            journal.commit(job, {"status": "ok"})
        # The foreign line is still there, verbatim, first.
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"circuit": "c0", "status": "ok"}
        assert len(lines) == 2

    def test_empty_and_missing_files(self, tmp_path):
        missing = ResultJournal(tmp_path / "nope.journal")
        assert missing.committed == {}
        empty_path = tmp_path / "empty.journal"
        empty_path.write_text("")
        empty = ResultJournal(empty_path)
        assert empty.committed == {}
        assert empty.torn_lines == 0


class TestFirstCommitWins:
    def test_replay_keeps_the_earlier_record(self, tmp_path):
        # A pre-fix writer (or byte-level corruption undone by fsck)
        # could leave two commit lines for one job; replay must trust
        # the earlier one.
        path = tmp_path / "j.journal"
        job = _job()
        base = {
            "schema": "fabric-journal/1",
            "type": "commit",
            "job_id": job.job_id,
            "kind": job.kind,
            "content_key": job.content_key,
            "config_digest": job.config_digest,
        }
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({**base, "seq": 0, "result": {"v": 1}}) + "\n")
            handle.write(json.dumps({**base, "seq": 1, "result": {"v": 2}}) + "\n")
        with ResultJournal(path) as journal:
            assert journal.result_for(job.job_id) == {"v": 1}
