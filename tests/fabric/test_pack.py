"""Evidence packs: every tampering direction detectable offline.

``build_pack`` + ``verify_pack`` must detect all three tamper moves —
modified bytes, deleted files, added files — from the pack alone, and a
pack must never vouch for a store entry the store itself would reject.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.analysis import experiments as exps
from repro.fabric.pack import (
    MANIFEST_NAME,
    PACK_SCHEMA,
    build_pack,
    verify_pack,
)
from repro.fabric.store import ResultStore

N_PATTERNS = 64


@pytest.fixture
def campaign(tmp_path, bench_paths):
    """A finished store-backed campaign: (journal, store_dir, outcomes)."""
    journal = tmp_path / "campaign.journal"
    store = tmp_path / "store"
    outcomes = [
        asdict(o)
        for o in exps.run_circuit_sweep(
            bench_paths,
            journal,
            n_patterns=N_PATTERNS,
            fabric=True,
            workers=1,
            store=store,
            store_verify_fraction=0.0,
        )
    ]
    return journal, store, outcomes


class TestBuild:
    def test_manifest_covers_journal_and_store(
        self, tmp_path, bench_paths, campaign
    ):
        journal, store, outcomes = campaign
        manifest = build_pack(journal, tmp_path / "pack", store=store)
        assert manifest["schema"] == PACK_SCHEMA
        assert manifest["journal"] == journal.name
        counts = manifest["counts"]
        assert counts["commits"] == len(bench_paths)
        assert counts["store_entries"] == len(bench_paths)
        assert counts["store_skipped"] == 0
        assert counts["files"] == len(bench_paths) + 1  # + the journal
        listed = set(manifest["files"])
        assert f"journal/{journal.name}" in listed
        on_disk = json.loads(
            (tmp_path / "pack" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert on_disk == manifest

    def test_refuses_nonempty_target(self, tmp_path, campaign):
        journal, store, _ = campaign
        target = tmp_path / "pack"
        target.mkdir()
        (target / "leftover.txt").write_text("old", encoding="utf-8")
        with pytest.raises(FileExistsError):
            build_pack(journal, target, store=store)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_pack(tmp_path / "nope.journal", tmp_path / "pack")

    def test_corrupt_store_entry_is_skipped_not_vouched(
        self, tmp_path, bench_paths, campaign
    ):
        journal, store_dir, _ = campaign
        entry = next(ResultStore(store_dir).entries())
        entry.path.write_bytes(b"garbage")
        manifest = build_pack(journal, tmp_path / "pack", store=store_dir)
        assert manifest["counts"]["store_entries"] == len(bench_paths) - 1
        assert manifest["counts"]["store_skipped"] == 1
        assert verify_pack(tmp_path / "pack").ok

    def test_include_extras(self, tmp_path, campaign):
        journal, store, _ = campaign
        extra = tmp_path / "notes.txt"
        extra.write_text("operator notes", encoding="utf-8")
        extra_dir = tmp_path / "traces"
        extra_dir.mkdir()
        (extra_dir / "run.jsonl").write_text("{}\n", encoding="utf-8")
        manifest = build_pack(
            journal, tmp_path / "pack", store=store,
            include=[extra, extra_dir],
        )
        assert manifest["counts"]["extra_files"] == 2
        assert "extra/notes.txt" in manifest["files"]
        assert "extra/traces/run.jsonl" in manifest["files"]
        assert verify_pack(tmp_path / "pack").ok


class TestVerify:
    def test_clean_pack_verifies(self, tmp_path, campaign):
        journal, store, _ = campaign
        build_pack(journal, tmp_path / "pack", store=store)
        report = verify_pack(tmp_path / "pack")
        assert report.ok
        assert report.checked == len(json.loads(
            (tmp_path / "pack" / MANIFEST_NAME).read_text(encoding="utf-8")
        )["files"])
        assert "OK" in report.describe()

    def test_one_flipped_byte_is_detected(self, tmp_path, campaign):
        journal, store, _ = campaign
        build_pack(journal, tmp_path / "pack", store=store)
        target = sorted((tmp_path / "pack" / "store").glob("*.json"))[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x40
        target.write_bytes(bytes(data))
        report = verify_pack(tmp_path / "pack")
        assert not report.ok
        assert report.mismatched == [f"store/{target.name}"]
        assert report.missing == [] and report.unlisted == []

    def test_deleted_file_is_detected(self, tmp_path, campaign):
        journal, store, _ = campaign
        build_pack(journal, tmp_path / "pack", store=store)
        victim = tmp_path / "pack" / "journal" / journal.name
        victim.unlink()
        report = verify_pack(tmp_path / "pack")
        assert not report.ok
        assert report.missing == [f"journal/{journal.name}"]

    def test_added_file_is_detected(self, tmp_path, campaign):
        journal, store, _ = campaign
        build_pack(journal, tmp_path / "pack", store=store)
        (tmp_path / "pack" / "store" / "smuggled.json").write_text(
            "{}", encoding="utf-8"
        )
        report = verify_pack(tmp_path / "pack")
        assert not report.ok
        assert report.unlisted == ["store/smuggled.json"]

    def test_missing_manifest_is_a_problem(self, tmp_path):
        (tmp_path / "notapack").mkdir()
        report = verify_pack(tmp_path / "notapack")
        assert not report.ok
        assert report.problems

    def test_wrong_schema_is_a_problem(self, tmp_path):
        pack = tmp_path / "pack"
        pack.mkdir()
        (pack / MANIFEST_NAME).write_text(
            json.dumps({"schema": "something/9", "files": {}}),
            encoding="utf-8",
        )
        report = verify_pack(pack)
        assert not report.ok
        assert any("manifest" in p for p in report.problems)

    def test_report_round_trips_to_dict(self, tmp_path, campaign):
        journal, store, _ = campaign
        build_pack(journal, tmp_path / "pack", store=store)
        report = verify_pack(tmp_path / "pack")
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["checked"] == report.checked
