"""The fabric's acceptance bar: bit-identical to serial, exactly once.

Every test runs the same circuits through the serial sweep driver and
through the fabric (with some injected failure), then asserts the
outcome lists are *equal as data* and that the journal holds exactly one
commit per job.  Chaos may change scheduling; it must never change
results.
"""

from __future__ import annotations

import shutil
from dataclasses import asdict

import pytest

from repro.analysis import experiments as exps
from repro.errors import SweepInterrupted
from repro.fabric import quarantine_dir_for
from repro.resilience.chaos import FabricChaosSpec
from repro.resilience.interrupt import GracefulInterrupt

N_PATTERNS = 64


def _serial(paths, results_path):
    outcomes = exps.run_circuit_sweep(
        paths, results_path, n_patterns=N_PATTERNS
    )
    return [asdict(o) for o in outcomes]


def _fabric(paths, journal_path, **kw):
    kw.setdefault("workers", 2)
    outcomes = exps.run_circuit_sweep(
        paths, journal_path, n_patterns=N_PATTERNS, fabric=True, **kw
    )
    return [asdict(o) for o in outcomes]


class TestBitIdentity:
    def test_no_chaos(self, tmp_path, bench_paths, commit_counts):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        fabric = _fabric(bench_paths, tmp_path / "fabric.journal")
        assert fabric == serial
        counts = commit_counts(tmp_path / "fabric.journal")
        assert len(counts) == len(bench_paths)
        assert set(counts.values()) == {1}

    def test_structural_dedup(self, tmp_path, bench_paths, counters):
        # A byte-for-byte copy has the same structural hash: one job,
        # one commit, two outcomes (rehydrated per path).
        clone = bench_paths[0].with_name("clone.bench")
        shutil.copyfile(bench_paths[0], clone)
        paths = list(bench_paths) + [clone]
        serial = _serial(paths, tmp_path / "serial.jsonl")
        with counters() as ctrs:
            fabric = _fabric(paths, tmp_path / "fabric.journal")
        assert fabric == serial
        assert ctrs.value("sweep.deduped") == 1
        assert ctrs.value("fabric.commits") == len(bench_paths)
        # The clone's outcome is the shared result under its own name.
        assert fabric[-1]["circuit"] == "clone"
        assert fabric[-1]["cost"] == fabric[0]["cost"]

    def test_resume_serves_from_journal(self, tmp_path, bench_paths, counters):
        journal = tmp_path / "fabric.journal"
        first = _fabric(bench_paths, journal)
        with counters() as ctrs:
            second = _fabric(bench_paths, journal)
        assert second == first
        assert ctrs.value("fabric.cache_hits") == len(bench_paths)
        assert ctrs.value("fabric.dispatches") == 0
        assert ctrs.value("fabric.commits") == 0


class TestChaos:
    """One forced fault on job 1, first attempt only — must converge."""

    @pytest.mark.parametrize(
        "mode",
        ["crash", "stall", "corrupt", "spurious", "enospc", "duplicate"],
    )
    def test_forced_fault_is_invisible_in_results(
        self, tmp_path, bench_paths, commit_counts, counters, mode
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        chaos = FabricChaosSpec(
            seed=7, forced=((1, mode),), stall_seconds=2.5
        )
        journal = tmp_path / "fabric.journal"
        with counters() as ctrs:
            fabric = _fabric(
                bench_paths, journal, chaos=chaos, lease_timeout_s=1.0
            )
        assert fabric == serial
        counts = commit_counts(journal)
        assert len(counts) == len(bench_paths)
        assert set(counts.values()) == {1}, "a job committed twice"
        if mode == "crash":
            assert ctrs.value("fabric.pool_breaks") >= 1
        elif mode == "stall":
            assert ctrs.value("fabric.lease_expired") >= 1
        elif mode in ("corrupt", "spurious"):
            assert ctrs.value("fabric.retries") >= 1
        elif mode == "enospc":
            assert ctrs.value("fabric.journal_write_errors") == 1
        elif mode == "duplicate":
            assert ctrs.value("fabric.duplicates_rejected") >= 1

    def test_probabilistic_mix_converges(
        self, tmp_path, bench_paths, commit_counts
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        chaos = FabricChaosSpec(
            seed=3,
            crash=0.2,
            corrupt=0.2,
            spurious=0.2,
            enospc=0.2,
            duplicate=0.2,
        )
        journal = tmp_path / "fabric.journal"
        fabric = _fabric(bench_paths, journal, chaos=chaos)
        assert fabric == serial
        assert set(commit_counts(journal).values()) == {1}


class TestQuarantine:
    def test_poison_job_is_quarantined_with_artifact(
        self, tmp_path, bench_paths, counters
    ):
        # first_attempt_only=False: job 1 raises on *every* attempt —
        # genuine poison, not a transient.
        chaos = FabricChaosSpec(
            forced=((1, "spurious"),), first_attempt_only=False
        )
        journal = tmp_path / "fabric.journal"
        with counters() as ctrs:
            fabric = _fabric(bench_paths, journal, chaos=chaos)
        good = [o for o in fabric if o["status"] == "ok"]
        poison = [o for o in fabric if o["status"] == "quarantined"]
        assert len(good) == len(bench_paths) - 1
        assert len(poison) == 1
        assert poison[0]["circuit"] == bench_paths[1].stem
        assert poison[0]["error_type"] == "RuntimeError"
        assert ctrs.value("fabric.quarantined") == 1
        # Repro-bundle-style artifact: payload + full error history.
        qdir = quarantine_dir_for(journal)
        artifacts = list(qdir.glob("*/job.json"))
        assert len(artifacts) == 1
        # Healthy jobs match what serial would have produced.
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        assert good == [
            s for s in serial if s["circuit"] != bench_paths[1].stem
        ]

    def test_resume_never_retries_poison(
        self, tmp_path, bench_paths, counters
    ):
        chaos = FabricChaosSpec(
            forced=((1, "spurious"),), first_attempt_only=False
        )
        journal = tmp_path / "fabric.journal"
        first = _fabric(bench_paths, journal, chaos=chaos)
        with counters() as ctrs:
            second = _fabric(bench_paths, journal)  # chaos gone, still poison
        assert second == first
        assert ctrs.value("fabric.dispatches") == 0
        assert ctrs.value("fabric.cache_hits") == len(bench_paths) - 1


class TestBreaker:
    def test_cascading_crashes_degrade_to_serial(
        self, tmp_path, bench_paths, commit_counts, counters
    ):
        # Jobs 0 and 1 crash their worker on every pool attempt; after
        # the respawn also breaks, the breaker trips and the campaign
        # drains in-process — where there is no worker to kill, so the
        # exact same results land anyway.
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        chaos = FabricChaosSpec(
            forced=((0, "crash"), (1, "crash")), first_attempt_only=False
        )
        journal = tmp_path / "fabric.journal"
        with counters() as ctrs:
            fabric = _fabric(bench_paths, journal, chaos=chaos)
        assert fabric == serial
        assert set(commit_counts(journal).values()) == {1}
        assert ctrs.value("fabric.breaker_trips") == 1
        assert ctrs.value("fabric.serial_drains") >= 1
        assert ctrs.value("fabric.parent_runs") >= 1


class TestExperimentsOnFabric:
    def test_records_match_serial_and_resume(self, tmp_path, monkeypatch):
        class FakeResult:
            def render(self):
                return "TABLE t1"

        monkeypatch.setattr(
            exps, "experiment_runners", lambda: {"t1": FakeResult}
        )
        # workers=1 keeps execution in-process so the monkeypatch holds.
        journal = tmp_path / "exps.journal"
        records = exps.run_experiments_checkpointed(
            ["t1"], journal, fabric=True, workers=1
        )
        assert records == [
            {"experiment": "t1", "status": "ok", "rendered": "TABLE t1"}
        ]
        again = exps.run_experiments_checkpointed(
            ["t1"], journal, fabric=True, workers=1
        )
        assert again == records


class TestInterrupt:
    def test_interrupt_raises_resumable_and_journal_survives(
        self, tmp_path, bench_paths
    ):
        stop = GracefulInterrupt(install=False)
        stop.request("SIGTERM")
        journal = tmp_path / "fabric.journal"
        with pytest.raises(SweepInterrupted):
            _fabric(bench_paths, journal, workers=1, interrupt=stop)
        # Rerunning without the stop request completes the campaign and
        # is still bit-identical to serial.
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        fabric = _fabric(bench_paths, journal, workers=1)
        assert fabric == serial
