"""Satellite 4: kill -9 a live fabric campaign, resume, lose nothing.

The property under test is the ISSUE's acceptance bar verbatim: a fabric
sweep that is SIGKILLed mid-campaign (no atexit, no finally, no flush —
the process group just stops existing) and then resumed produces results
bit-identical to a serial sweep, with every job committed exactly once
across the *entire* journal history, torn lines included.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.analysis import experiments as exps
from repro.circuit import generators, write_bench_file

N_CIRCUITS = 12
N_PATTERNS = 256

_RUNNER = """\
import sys
from pathlib import Path

from repro.analysis.experiments import run_circuit_sweep

circuits = sorted(Path(sys.argv[1]).glob("*.bench"))
run_circuit_sweep(
    circuits,
    sys.argv[2],
    n_patterns={n_patterns},
    measure_coverage=True,
    fabric=True,
    workers=2,
)
"""


@pytest.fixture
def many_circuits(tmp_path):
    d = tmp_path / "circuits"
    d.mkdir()
    paths = []
    for i in range(N_CIRCUITS):
        circuit = generators.random_dag(5, 25, seed=70 + i)
        p = d / f"k{i:02d}.bench"
        write_bench_file(circuit, p)
        paths.append(p)
    return paths


def _count_commits(journal_path):
    """job_id -> commit-record count over the whole journal history."""
    import json

    counts = {}
    if not journal_path.exists():
        return counts
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn line: legal evidence of the kill
        if record.get("type") == "commit":
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


def test_kill9_then_resume_is_bit_identical(tmp_path, many_circuits):
    journal = tmp_path / "fabric.journal"
    script = tmp_path / "runner.py"
    script.write_text(_RUNNER.format(n_patterns=N_PATTERNS))
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    proc = subprocess.Popen(
        [sys.executable, str(script), str(many_circuits[0].parent), str(journal)],
        env=env,
        start_new_session=True,  # its own process group: workers die too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait for the campaign to be demonstrably mid-flight (some
        # commits durable, more to come), then kill the whole group hard.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if len(_count_commits(journal)) >= 3:
                break
            time.sleep(0.02)
        killed = proc.poll() is None
        if killed:
            os.killpg(proc.pid, signal.SIGKILL)
        returncode = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

    committed_at_kill = _count_commits(journal)
    if killed:
        assert returncode == -signal.SIGKILL
        # A kill this hard may tear the line in flight, never a
        # committed one: nothing recorded so far is duplicated.
        assert all(n == 1 for n in committed_at_kill.values())
        assert len(committed_at_kill) < N_CIRCUITS, (
            "campaign finished before the kill landed; nothing was tested"
        )

    # Resume in-process: the journal replays, survivors are cache hits,
    # the remainder runs to completion.
    resumed = exps.run_circuit_sweep(
        many_circuits,
        journal,
        n_patterns=N_PATTERNS,
        measure_coverage=True,
        fabric=True,
        workers=2,
    )

    serial = exps.run_circuit_sweep(
        many_circuits,
        tmp_path / "serial.jsonl",
        n_patterns=N_PATTERNS,
        measure_coverage=True,
    )
    assert [asdict(o) for o in resumed] == [asdict(o) for o in serial]

    # Exactly-once across the whole history: pre-kill commits were not
    # re-committed on resume, and every job has exactly one record.
    final = _count_commits(journal)
    assert len(final) == N_CIRCUITS
    assert set(final.values()) == {1}
    for job_id in committed_at_kill:
        assert final[job_id] == 1
