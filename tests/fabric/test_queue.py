"""The lease state machine, exercised with a hand-driven clock."""

from __future__ import annotations

import pytest

from repro.fabric import Job, WorkQueue


def _job(n=0):
    return Job.build(
        "sweep_circuit", f"circuit:{n}", {"n": n}, payload={"i": n}, index=n
    )


def _queue(**kw):
    kw.setdefault("lease_timeout_s", 10.0)
    kw.setdefault("max_attempts", 3)
    return WorkQueue(**kw)


class TestPopulation:
    def test_add_and_dedup(self):
        q = _queue()
        job = _job()
        assert q.add(job) is True
        assert q.add(job) is False  # same job_id: merged, not queued twice
        assert q.unfinished == 1
        assert q.job_ids() == [job.job_id]

    def test_lease_order_is_campaign_order(self):
        q = _queue()
        jobs = [_job(i) for i in range(3)]
        for job in jobs:
            q.add(job)
        leased = [q.lease_next(now=0.0).job.job_id for _ in jobs]
        assert leased == [job.job_id for job in jobs]
        assert q.lease_next(now=0.0) is None  # nothing pending

    def test_mark_done_skips_resumed_jobs(self):
        q = _queue()
        a, b = _job(0), _job(1)
        q.add(a)
        q.add(b)
        q.mark_done(a.job_id)
        lease = q.lease_next(now=0.0)
        assert lease.job.job_id == b.job_id
        assert q.unfinished == 1

    def test_bad_parameters_are_loud(self):
        with pytest.raises(ValueError):
            WorkQueue(lease_timeout_s=0)
        with pytest.raises(ValueError):
            WorkQueue(max_attempts=0)


class TestLiveness:
    def test_heartbeat_extends_expiry(self):
        q = _queue(lease_timeout_s=10.0)
        job = _job()
        q.add(job)
        lease = q.lease_next(now=0.0)
        assert lease.expires_at == 10.0
        assert q.heartbeat(job.job_id, now=8.0) is True
        assert lease.expires_at == 18.0
        assert lease.heartbeats == 1
        assert q.expired(now=17.0) == []
        assert q.expired(now=18.0) == [lease]

    def test_heartbeat_for_unleased_job_is_ignored(self):
        q = _queue()
        job = _job()
        q.add(job)
        assert q.heartbeat(job.job_id, now=0.0) is False

    def test_next_expiry_tracks_earliest(self):
        q = _queue(lease_timeout_s=10.0)
        a, b = _job(0), _job(1)
        q.add(a)
        q.add(b)
        q.lease_next(now=0.0)
        q.lease_next(now=3.0)
        assert q.next_expiry() == 10.0
        q.heartbeat(a.job_id, now=5.0)
        assert q.next_expiry() == 13.0


class TestSettlement:
    def test_complete_is_first_wins(self):
        q = _queue()
        job = _job()
        q.add(job)
        q.lease_next(now=0.0)
        assert q.complete(job.job_id) is True
        # A late result from a superseded lease settles nothing.
        assert q.complete(job.job_id) is False
        assert q.unfinished == 0

    def test_fail_retries_at_front_of_queue(self):
        q = _queue()
        flaky, steady = _job(0), _job(1)
        q.add(flaky)
        q.add(steady)
        q.lease_next(now=0.0)  # flaky, attempt 0
        assert q.fail(flaky.job_id) == "retry"
        # The retry preempts jobs that have not started yet.
        lease = q.lease_next(now=1.0)
        assert lease.job.job_id == flaky.job_id
        assert lease.attempt == 1

    def test_fail_exhausts_into_quarantine(self):
        q = _queue(max_attempts=2)
        job = _job()
        q.add(job)
        q.lease_next(now=0.0)
        assert q.fail(job.job_id) == "retry"
        q.lease_next(now=1.0)
        assert q.fail(job.job_id) == "quarantine"
        q.quarantine(job.job_id)
        assert q.n_quarantined == 1
        assert q.unfinished == 0
        assert q.fail(job.job_id) == "settled"

    def test_fail_after_settlement_is_settled(self):
        q = _queue()
        job = _job()
        q.add(job)
        q.lease_next(now=0.0)
        q.complete(job.job_id)
        assert q.fail(job.job_id) == "settled"


class TestRelease:
    def test_release_uncounts_the_attempt(self):
        q = _queue()
        job = _job()
        q.add(job)
        lease = q.lease_next(now=0.0)
        assert q.attempts(job.job_id) == 1
        q.release(lease)
        assert q.attempts(job.job_id) == 0
        assert not q.is_leased(job.job_id)
        # The job leases again as if nothing happened.
        again = q.lease_next(now=1.0)
        assert again.job.job_id == job.job_id
        assert again.attempt == 0

    def test_release_of_superseded_lease_is_a_noop(self):
        q = _queue(lease_timeout_s=1.0)
        job = _job()
        q.add(job)
        stale = q.lease_next(now=0.0)
        q.fail(job.job_id)  # expiry path: back to pending
        fresh = q.lease_next(now=2.0)
        q.release(stale)  # stale handle must not clobber the fresh lease
        assert q.lease_of(job.job_id) is fresh
        assert q.attempts(job.job_id) == 2
