"""Fabric suite fixtures: circuit files, counters, journal forensics."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.circuit import generators, write_bench_file
from repro.obs.recorder import RunRecorder


@pytest.fixture
def bench_paths(tmp_path):
    """Four small, distinct netlist files (fast to solve, fast to parse)."""
    d = tmp_path / "circuits"
    d.mkdir()
    paths = []
    for i in range(4):
        circuit = generators.random_dag(4, 14, seed=40 + i)
        p = d / f"c{i}.bench"
        write_bench_file(circuit, p)
        paths.append(p)
    return paths


class Counters:
    """Context manager capturing obs counters for one block."""

    def __enter__(self):
        self.recorder = RunRecorder(None)
        self.previous = obs.set_recorder(self.recorder)
        return self

    def __exit__(self, *exc):
        obs.set_recorder(self.previous)
        self.snapshot = self.recorder.metrics.snapshot().get("counters", {})
        self.recorder.close()
        return False

    def value(self, name):
        return self.snapshot.get(name, 0.0)


@pytest.fixture
def counters():
    return Counters


def _journal_records(journal_path):
    records = []
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn line: legal crash evidence
    return records


def _commit_counts(journal_path):
    """job_id -> number of commit records; exactly-once means all 1."""
    counts = {}
    for record in _journal_records(journal_path):
        if record.get("type") == "commit":
            job_id = record["job_id"]
            counts[job_id] = counts.get(job_id, 0) + 1
    return counts


@pytest.fixture
def journal_records():
    return _journal_records


@pytest.fixture
def commit_counts():
    return _commit_counts
