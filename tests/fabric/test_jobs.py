"""Job identity: content addressing must be canonical and collision-free."""

from __future__ import annotations

import pytest

from repro.fabric import Job, config_digest, job_id_for


class TestConfigDigest:
    def test_key_order_does_not_matter(self):
        a = config_digest({"x": 1, "y": [1, 2], "z": None})
        b = config_digest({"z": None, "y": [1, 2], "x": 1})
        assert a == b

    def test_values_matter(self):
        assert config_digest({"x": 1}) != config_digest({"x": 2})

    def test_container_identity_does_not_matter(self):
        class Mapping(dict):
            pass

        assert config_digest({"x": 1}) == config_digest(Mapping(x=1))

    def test_non_serializable_is_loud(self):
        with pytest.raises(ValueError, match="serializable"):
            config_digest({"x": object()})


class TestJobId:
    def test_all_three_parts_distinguish(self):
        base = job_id_for("sweep_circuit", "circuit:abc", "cfg1")
        assert job_id_for("experiment", "circuit:abc", "cfg1") != base
        assert job_id_for("sweep_circuit", "circuit:abd", "cfg1") != base
        assert job_id_for("sweep_circuit", "circuit:abc", "cfg2") != base

    def test_concatenation_is_not_ambiguous(self):
        # NUL separators: ("ab","c") must not collide with ("a","bc").
        assert job_id_for("k", "ab", "c") != job_id_for("k", "a", "bc")


class TestJobBuild:
    def test_build_derives_identity(self):
        job = Job.build("sweep_circuit", "circuit:xyz", {"n": 4})
        assert job.job_id == job_id_for(
            "sweep_circuit", "circuit:xyz", config_digest({"n": 4})
        )

    def test_same_content_same_id(self):
        a = Job.build("sweep_circuit", "c", {"n": 4}, payload={"p": "one"})
        b = Job.build(
            "sweep_circuit", "c", {"n": 4}, payload={"p": "two"}, index=9
        )
        # Payload and index are execution details, not identity.
        assert a.job_id == b.job_id

    def test_to_dict_round_trip(self):
        job = Job.build("experiment", "experiment:t1", {}, index=3)
        clone = Job(**job.to_dict())
        assert clone == job

    def test_payload_is_copied(self):
        payload = {"path": "a.bench"}
        job = Job.build("sweep_circuit", "c", {}, payload=payload)
        payload["path"] = "mutated"
        assert job.payload["path"] == "a.bench"
