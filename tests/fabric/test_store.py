"""The result store's integrity bar: never serve a byte it can't prove.

Every test attacks one promise from ``repro.fabric.store``: round-trip
fidelity, idempotent first-write-wins publishing, quarantine (not
silent service) for every corruption class, LRU recency on hits,
lease-protected eviction, and additive lifetime statistics.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.fabric.jobs import Job
from repro.fabric.store import (
    STORE_SCHEMA,
    ResultStore,
    payload_digest,
    producer_fingerprint,
)


def _job(n: int = 0, config: dict | None = None) -> Job:
    return Job.build(
        "sweep_circuit",
        f"content{n:04d}",
        config or {"n_patterns": 64, "solvers": ["greedy"]},
        {"path": f"/tmp/c{n}.bench"},
        index=n,
    )


def _result(n: int = 0) -> dict:
    return {"circuit": f"c{n}", "cost": n, "points": [f"g{n}", "g9"]}


class TestRoundTrip:
    def test_put_get_returns_bit_identical_result(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = _job()
        assert store.put(job, _result()) is True
        record = store.get(job.job_id)
        assert record is not None
        assert record["result"] == _result()
        assert store.hits == 1 and store.misses == 0

    def test_record_carries_full_integrity_envelope(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = _job()
        store.put(job, _result())
        record = json.loads(
            store.entry_path(job.job_id).read_text(encoding="utf-8")
        )
        assert record["schema"] == STORE_SCHEMA
        assert record["job_id"] == job.job_id
        assert record["kind"] == job.kind
        assert record["content_key"] == job.content_key
        assert record["config_digest"] == job.config_digest
        assert record["payload_sha256"] == payload_digest(_result())
        fingerprint = record["producer"]
        for key in ("package", "package_version", "kernel", "python"):
            assert fingerprint[key] == producer_fingerprint()[key]

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("0" * 32) is None
        assert store.misses == 1 and store.corrupt == 0

    def test_digest_covers_what_a_reader_reparses(self, tmp_path):
        # Tuples serialize as JSON arrays; the digest must be taken
        # after that normalization or every tuple-bearing result would
        # quarantine itself on first read.
        store = ResultStore(tmp_path / "store")
        job = _job()
        store.put(job, {"points": ("a", "b"), "cost": 2})
        record = store.get(job.job_id)
        assert record is not None
        assert record["result"]["points"] == ["a", "b"]


class TestIdempotentPublish:
    def test_second_put_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = _job()
        assert store.put(job, _result()) is True
        before = store.entry_path(job.job_id).read_bytes()
        assert store.put(job, {"different": "payload"}) is False
        assert store.entry_path(job.job_id).read_bytes() == before
        assert store.publishes == 1

    def test_distinct_configs_are_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        a = _job(0, {"n_patterns": 64})
        b = _job(0, {"n_patterns": 128})
        assert a.job_id != b.job_id
        store.put(a, _result(0))
        store.put(b, _result(1))
        assert store.get(a.job_id)["result"] == _result(0)
        assert store.get(b.job_id)["result"] == _result(1)


class TestQuarantine:
    """Each corruption class must quarantine + miss, never serve."""

    def _published(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = _job()
        store.put(job, _result())
        return store, job, store.entry_path(job.job_id)

    def _assert_quarantined(self, store, job):
        assert store.get(job.job_id) is None
        assert store.corrupt == 1 and store.misses == 1
        assert not store.entry_path(job.job_id).exists()
        corpses = list(store.quarantine_dir.glob("*.json"))
        assert len(corpses) == 1

    def test_torn_entry(self, tmp_path):
        store, job, path = self._published(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_quarantined(store, job)

    def test_bit_flip_in_payload(self, tmp_path):
        store, job, path = self._published(tmp_path)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"]["cost"] = 999  # envelope digest now stale
        path.write_text(json.dumps(record), encoding="utf-8")
        self._assert_quarantined(store, job)

    def test_stale_schema(self, tmp_path):
        store, job, path = self._published(tmp_path)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["schema"] = "fabric-store/0"
        path.write_text(json.dumps(record), encoding="utf-8")
        self._assert_quarantined(store, job)

    def test_job_id_mismatch(self, tmp_path):
        # An entry renamed (or hard-linked) into the wrong slot must not
        # be served under the borrowed identity.
        store, job, path = self._published(tmp_path)
        other = "f" * 32
        target = store.entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
        assert store.get(other) is None
        assert store.corrupt == 1

    def test_non_object_record(self, tmp_path):
        store, job, path = self._published(tmp_path)
        path.write_text('["not", "a", "record"]', encoding="utf-8")
        self._assert_quarantined(store, job)

    def test_missing_result_key(self, tmp_path):
        store, job, path = self._published(tmp_path)
        record = json.loads(path.read_text(encoding="utf-8"))
        del record["result"]
        path.write_text(json.dumps(record), encoding="utf-8")
        self._assert_quarantined(store, job)

    def test_fresh_publish_lands_after_quarantine(self, tmp_path):
        store, job, path = self._published(tmp_path)
        path.write_bytes(b"garbage")
        assert store.get(job.job_id) is None
        assert store.put(job, _result()) is True
        assert store.get(job.job_id)["result"] == _result()

    def test_repeat_corpses_all_kept(self, tmp_path):
        store, job, path = self._published(tmp_path)
        path.write_bytes(b"garbage one")
        store.get(job.job_id)
        store.put(job, _result())
        store.entry_path(job.job_id).write_bytes(b"garbage two")
        store.get(job.job_id)
        assert len(list(store.quarantine_dir.glob("*.json"))) == 2


class TestEviction:
    def _filled(self, tmp_path, n=4):
        store = ResultStore(tmp_path / "store")
        jobs = [_job(i) for i in range(n)]
        for i, job in enumerate(jobs):
            store.put(job, _result(i))
            # Deterministic recency: job i last used at t=1000+i.
            os.utime(store.entry_path(job.job_id), times=(1000 + i, 1000 + i))
        return store, jobs

    def test_byte_cap_prunes_oldest_first(self, tmp_path):
        store, jobs = self._filled(tmp_path)
        sizes = {
            e.job_id: e.size for e in store.entries()
        }
        keep_bytes = sizes[jobs[2].job_id] + sizes[jobs[3].job_id]
        report = store.gc(max_bytes=keep_bytes)
        assert report["deleted"] == 2
        assert report["kept"] == 2
        assert report["kept_bytes"] <= keep_bytes
        survivors = {e.job_id for e in store.entries()}
        assert survivors == {jobs[2].job_id, jobs[3].job_id}

    def test_age_cap_prunes_stale_entries(self, tmp_path):
        store, jobs = self._filled(tmp_path)
        # "Now" is 10 days after t=1000; entries 0 and 1 are older than
        # the cap once we shift entries 2 and 3 within it.
        now = 1000.0 + 10 * 86_400
        for job in jobs[2:]:
            os.utime(store.entry_path(job.job_id), times=(now - 60, now - 60))
        report = store.gc(max_age_days=5.0, now=now)
        assert report["deleted"] == 2
        survivors = {e.job_id for e in store.entries()}
        assert survivors == {jobs[2].job_id, jobs[3].job_id}

    def test_hit_refreshes_recency(self, tmp_path):
        store, jobs = self._filled(tmp_path)
        store.get(jobs[0].job_id)  # oldest entry becomes the newest
        report = store.gc(max_bytes=0)
        assert report["deleted"] == 4  # cap 0 still deletes everything
        store2, jobs2 = self._filled(tmp_path / "again")
        store2.get(jobs2[0].job_id)
        sizes = {e.job_id: e.size for e in store2.entries()}
        keep = sizes[jobs2[0].job_id]
        store2.gc(max_bytes=keep)
        survivors = {e.job_id for e in store2.entries()}
        assert jobs2[0].job_id in survivors

    def test_lease_protects_entries(self, tmp_path):
        store, jobs = self._filled(tmp_path)
        lease = store.acquire_lease([jobs[0].job_id, jobs[1].job_id])
        report = store.gc(max_bytes=0)
        assert report["protected"] == 2
        assert report["deleted"] == 2
        survivors = {e.job_id for e in store.entries()}
        assert survivors == {jobs[0].job_id, jobs[1].job_id}
        lease.release()
        report = store.gc(max_bytes=0)
        assert report["deleted"] == 2
        assert list(store.entries()) == []

    def test_torn_lease_file_protects_nothing(self, tmp_path):
        store, jobs = self._filled(tmp_path)
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        (store.lease_dir / "torn.json").write_bytes(b'{"schema": "fab')
        assert store.leased_job_ids() == set()

    def test_release_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        lease = store.acquire_lease(["a" * 32])
        lease.release()
        lease.release()  # second release must not raise
        assert store.leased_job_ids() == set()


class TestStats:
    def test_stats_reflect_disk_and_session(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for i in range(3):
            store.put(_job(i), _result(i))
        store.get(_job(0).job_id)
        store.get("0" * 32)
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["publishes"] == 3
        assert stats["quarantined"] == 0

    def test_persist_is_additive_across_sessions(self, tmp_path):
        root = tmp_path / "store"
        first = ResultStore(root)
        first.put(_job(0), _result(0))
        first.get(_job(0).job_id)
        first.persist_stats()
        second = ResultStore(root)
        second.get(_job(0).job_id)
        second.get("0" * 32)
        second.persist_stats()
        fresh = ResultStore(root)
        stats = fresh.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["publishes"] == 1

    def test_double_persist_does_not_double_count(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_job(0), _result(0))
        store.get(_job(0).job_id)
        store.persist_stats()
        store.persist_stats()
        assert ResultStore(tmp_path / "store").stats()["hits"] == 1


@pytest.mark.parametrize(
    "payload",
    [{"a": 1}, {"b": [1, 2, {"c": None}]}, {}],
)
def test_payload_digest_is_canonical(payload):
    reordered = json.loads(
        json.dumps(payload, sort_keys=True)
    )
    assert payload_digest(payload) == payload_digest(reordered)
