"""The caching bar: store-served campaigns bit-identical, exactly once.

A store-enabled campaign must equal the serial sweep bit-for-bit, both
when computing fresh (publishing every result) and when serving a later
campaign entirely from cache — and must stay that way under every
injected store fault, with corrupt entries quarantined rather than
served.  Shadow verification (re-executing a fraction of hits) must
accept honest entries and reject poisoned ones whose envelope was
forged along with the payload.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.analysis import experiments as exps
from repro.errors import DivergenceError
from repro.fabric.store import ResultStore, payload_digest
from repro.resilience.chaos import FabricChaosSpec

N_PATTERNS = 64


def _serial(paths, results_path):
    outcomes = exps.run_circuit_sweep(
        paths, results_path, n_patterns=N_PATTERNS
    )
    return [asdict(o) for o in outcomes]


def _fabric(paths, journal_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("store_verify_fraction", 0.0)
    outcomes = exps.run_circuit_sweep(
        paths, journal_path, n_patterns=N_PATTERNS, fabric=True, **kw
    )
    return [asdict(o) for o in outcomes]


class TestStoreCampaign:
    def test_store_requires_fabric(self, tmp_path, bench_paths):
        with pytest.raises(ValueError, match="fabric"):
            exps.run_circuit_sweep(
                bench_paths,
                tmp_path / "serial.jsonl",
                n_patterns=N_PATTERNS,
                store=tmp_path / "store",
            )

    def test_first_campaign_publishes_and_matches_serial(
        self, tmp_path, bench_paths, counters, commit_counts
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        store = tmp_path / "store"
        with counters() as ctrs:
            fabric = _fabric(
                bench_paths, tmp_path / "run1.journal", store=store
            )
        assert fabric == serial
        assert ctrs.value("fabric.store.misses") == len(bench_paths)
        assert ctrs.value("fabric.store.publishes") == len(bench_paths)
        assert ctrs.value("fabric.store.hits") == 0
        counts = commit_counts(tmp_path / "run1.journal")
        assert set(counts.values()) == {1}

    def test_second_campaign_all_hits_zero_recomputation(
        self, tmp_path, bench_paths, counters, commit_counts
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        store = tmp_path / "store"
        _fabric(bench_paths, tmp_path / "run1.journal", store=store)
        with counters() as ctrs:
            second = _fabric(
                bench_paths, tmp_path / "run2.journal", store=store
            )
        assert second == serial
        assert ctrs.value("fabric.store.hits") == len(bench_paths)
        assert ctrs.value("fabric.store.misses") == 0
        assert ctrs.value("fabric.dispatches") == 0, "recomputation happened"
        # Cache hits are committed to the new journal exactly once each
        # (durable truth stays per-campaign; the store is an accelerator).
        counts = commit_counts(tmp_path / "run2.journal")
        assert len(counts) == len(bench_paths)
        assert set(counts.values()) == {1}

    def test_store_stats_persisted_across_campaigns(
        self, tmp_path, bench_paths
    ):
        store = tmp_path / "store"
        _fabric(bench_paths, tmp_path / "run1.journal", store=store)
        _fabric(bench_paths, tmp_path / "run2.journal", store=store)
        stats = ResultStore(store).stats()
        assert stats["publishes"] == len(bench_paths)
        assert stats["hits"] == len(bench_paths)
        assert stats["misses"] == len(bench_paths)

    def test_invalid_verify_fraction_rejected(self, tmp_path, bench_paths):
        with pytest.raises(ValueError, match="fraction"):
            _fabric(
                bench_paths,
                tmp_path / "run.journal",
                store=tmp_path / "store",
                store_verify_fraction=1.5,
            )


class TestShadowVerification:
    def test_honest_hits_survive_full_verification(
        self, tmp_path, bench_paths, counters
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        store = tmp_path / "store"
        _fabric(bench_paths, tmp_path / "run1.journal", store=store)
        with counters() as ctrs:
            second = _fabric(
                bench_paths,
                tmp_path / "run2.journal",
                store=store,
                store_verify_fraction=1.0,
            )
        assert second == serial
        assert ctrs.value("fabric.store.verifications") == len(bench_paths)
        assert ctrs.value("fabric.store.hits") == len(bench_paths)

    def test_poisoned_entry_with_forged_envelope_is_caught(
        self, tmp_path, bench_paths
    ):
        # Forge a payload *and* recompute its digest: the envelope
        # verifies, so only shadow re-execution can catch it.
        store_dir = tmp_path / "store"
        _fabric(bench_paths, tmp_path / "run1.journal", store=store_dir)
        store = ResultStore(store_dir)
        entry = next(store.entries())
        record = json.loads(entry.path.read_text(encoding="utf-8"))
        record["result"]["cost"] = record["result"].get("cost", 0) + 97
        record["payload_sha256"] = payload_digest(record["result"])
        entry.path.write_text(json.dumps(record), encoding="utf-8")
        with pytest.raises(DivergenceError):
            _fabric(
                bench_paths,
                tmp_path / "run2.journal",
                store=store_dir,
                store_verify_fraction=1.0,
            )

    def test_fraction_zero_never_verifies(
        self, tmp_path, bench_paths, counters
    ):
        store = tmp_path / "store"
        _fabric(bench_paths, tmp_path / "run1.journal", store=store)
        with counters() as ctrs:
            _fabric(
                bench_paths,
                tmp_path / "run2.journal",
                store=store,
                store_verify_fraction=0.0,
            )
        assert ctrs.value("fabric.store.verifications") == 0


class TestStoreChaos:
    """Store faults strike after the commit; recovery must be invisible."""

    @pytest.mark.parametrize(
        "fault", ["store_torn", "store_bitflip", "store_stale", "store_double"]
    )
    def test_forced_store_fault_is_invisible_in_results(
        self, tmp_path, bench_paths, commit_counts, counters, fault
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        store = tmp_path / "store"
        chaos = FabricChaosSpec(seed=7, forced=((1, fault),))
        first = _fabric(
            bench_paths,
            tmp_path / "run1.journal",
            store=store,
            chaos=chaos,
            workers=1,
        )
        assert first == serial, "store fault leaked into campaign results"
        assert set(commit_counts(tmp_path / "run1.journal").values()) == {1}

        # A fresh campaign against the battered store: the corrupted
        # entry quarantines (a miss that recomputes), everything else
        # serves from cache, and the results are still bit-identical.
        with counters() as ctrs:
            second = _fabric(
                bench_paths, tmp_path / "run2.journal", store=store, workers=1
            )
        assert second == serial
        expected_corrupt = 0 if fault == "store_double" else 1
        assert ctrs.value("fabric.store.corrupt") == expected_corrupt
        assert ctrs.value("fabric.store.hits") == (
            len(bench_paths) - expected_corrupt
        )
        assert ctrs.value("fabric.store.misses") == expected_corrupt
        assert set(commit_counts(tmp_path / "run2.journal").values()) == {1}
        quarantine = ResultStore(store).quarantine_dir
        corpses = (
            list(quarantine.glob("*.json")) if quarantine.is_dir() else []
        )
        assert len(corpses) == expected_corrupt

    def test_store_mix_with_worker_faults_converges(
        self, tmp_path, bench_paths, commit_counts
    ):
        serial = _serial(bench_paths, tmp_path / "serial.jsonl")
        store = tmp_path / "store"
        chaos = FabricChaosSpec(
            seed=3,
            crash=0.15,
            corrupt=0.15,
            enospc=0.15,
            store_torn=0.1,
            store_bitflip=0.1,
            store_stale=0.1,
            store_double=0.1,
        )
        journal = tmp_path / "run1.journal"
        fabric = _fabric(bench_paths, journal, store=store, chaos=chaos)
        assert fabric == serial
        assert set(commit_counts(journal).values()) == {1}
        # And the store still round-trips a clean follow-up campaign.
        second = _fabric(bench_paths, tmp_path / "run2.journal", store=store)
        assert second == serial


class TestExperimentsStore:
    def test_experiment_results_cache_across_campaigns(
        self, tmp_path, monkeypatch, counters
    ):
        calls = {"n": 0}

        class FakeResult:
            def render(self):
                calls["n"] += 1
                return "TABLE t1"

        monkeypatch.setattr(
            exps, "experiment_runners", lambda: {"t1": FakeResult}
        )
        store = tmp_path / "store"
        records = exps.run_experiments_checkpointed(
            ["t1"], tmp_path / "run1.journal", fabric=True, workers=1,
            store=store, store_verify_fraction=0.0,
        )
        assert records == [
            {"experiment": "t1", "status": "ok", "rendered": "TABLE t1"}
        ]
        assert calls["n"] == 1
        with counters() as ctrs:
            again = exps.run_experiments_checkpointed(
                ["t1"], tmp_path / "run2.journal", fabric=True, workers=1,
                store=store, store_verify_fraction=0.0,
            )
        assert again == records
        assert calls["n"] == 1, "cached experiment was recomputed"
        assert ctrs.value("fabric.store.hits") == 1

    def test_store_requires_fabric(self, tmp_path):
        with pytest.raises(ValueError, match="fabric"):
            exps.run_experiments_checkpointed(
                ["t1"], tmp_path / "run.jsonl", store=tmp_path / "store"
            )
