"""The fabric's CLI surface: sweep --fabric, fabric-status, pack, store-gc."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_INFEASIBLE, EXIT_OK, EXIT_USAGE, main
from repro.resilience.chaos import FabricChaosSpec


class TestSweepFabric:
    def test_fabric_sweep_runs_and_resumes(
        self, tmp_path, bench_paths, capsys
    ):
        journal = tmp_path / "sweep.journal"
        argv = [
            "sweep",
            str(bench_paths[0].parent),
            "--results",
            str(journal),
            "--patterns",
            "64",
            "--fabric",
            "--workers",
            "2",
        ]
        assert main(argv) == EXIT_OK
        err = capsys.readouterr().err
        assert f"swept {len(bench_paths)}/{len(bench_paths)}" in err
        before = journal.read_text()
        # A rerun serves everything from the journal and writes nothing.
        assert main(argv) == EXIT_OK
        assert journal.read_text() == before

    def test_no_resume_with_fabric_is_a_usage_error(
        self, tmp_path, bench_paths, capsys
    ):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "sweep",
                    str(bench_paths[0].parent),
                    "--results",
                    str(tmp_path / "j.journal"),
                    "--fabric",
                    "--no-resume",
                ]
            )
        assert ei.value.code == EXIT_USAGE
        assert "content-addressed" in capsys.readouterr().err


class TestExperimentsFabric:
    def test_fabric_campaign_runs_and_resumes(self, tmp_path, capsys):
        journal = tmp_path / "exp.journal"
        argv = [
            "experiments",
            "--only",
            "t2",
            "--results",
            str(journal),
            "--fabric",
        ]
        assert main(argv) == EXIT_OK
        assert "1 ok, 0 failed" in capsys.readouterr().err
        before = journal.read_text()
        assert main(argv) == EXIT_OK
        assert journal.read_text() == before

    def test_fabric_without_results_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["experiments", "--only", "t2", "--fabric"])
        assert ei.value.code == EXIT_USAGE
        assert "--results" in capsys.readouterr().err

    def test_no_resume_with_fabric_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "experiments",
                    "--only",
                    "t2",
                    "--results",
                    str(tmp_path / "exp.journal"),
                    "--fabric",
                    "--no-resume",
                ]
            )
        assert ei.value.code == EXIT_USAGE
        assert "content-addressed" in capsys.readouterr().err


class TestFabricStatus:
    def test_status_reports_commits_and_poison(
        self, tmp_path, bench_paths, capsys
    ):
        from repro.analysis import experiments as exps

        journal = tmp_path / "sweep.journal"
        exps.run_circuit_sweep(
            bench_paths,
            journal,
            n_patterns=64,
            fabric=True,
            workers=2,
            chaos=FabricChaosSpec(
                forced=((1, "spurious"),), first_attempt_only=False
            ),
        )
        assert main(["fabric-status", str(journal)]) == EXIT_OK
        out = capsys.readouterr().out
        assert f"committed     {len(bench_paths) - 1}" in out
        assert "quarantined   1" in out
        assert "poison [+]" in out  # artifact written and present

        assert main(["fabric-status", str(journal), "--json"]) == EXIT_OK
        status = json.loads(capsys.readouterr().out)
        assert status["commits"] == len(bench_paths) - 1
        assert status["quarantined"] == 1
        assert status["kinds"] == {"sweep_circuit": len(bench_paths) - 1}
        assert status["quarantine"][0]["last_error"] == "RuntimeError"
        assert status["quarantine"][0]["artifact_present"] is True

    def test_missing_journal_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["fabric-status", str(tmp_path / "nope.journal")])
        assert ei.value.code == EXIT_USAGE
        assert "no fabric journal" in capsys.readouterr().err


@pytest.fixture
def store_campaign(tmp_path, bench_paths):
    """One finished --store sweep: (journal, store_dir)."""
    journal = tmp_path / "sweep.journal"
    store = tmp_path / "store"
    assert (
        main(
            [
                "sweep",
                str(bench_paths[0].parent),
                "--results",
                str(journal),
                "--patterns",
                "64",
                "--fabric",
                "--workers",
                "1",
                "--store",
                str(store),
            ]
        )
        == EXIT_OK
    )
    return journal, store


class TestStoreCli:
    def test_store_without_fabric_is_a_usage_error(
        self, tmp_path, bench_paths, capsys
    ):
        for command in (
            [
                "sweep",
                str(bench_paths[0].parent),
                "--results",
                str(tmp_path / "r.jsonl"),
                "--store",
                str(tmp_path / "store"),
            ],
            [
                "experiments",
                "--only",
                "t2",
                "--results",
                str(tmp_path / "e.jsonl"),
                "--store",
                str(tmp_path / "store"),
            ],
        ):
            with pytest.raises(SystemExit) as ei:
                main(command)
            assert ei.value.code == EXIT_USAGE
            assert "--fabric" in capsys.readouterr().err

    def test_fabric_status_reports_store(
        self, bench_paths, store_campaign, capsys
    ):
        journal, store = store_campaign
        capsys.readouterr()
        argv = ["fabric-status", str(journal), "--store", str(store)]
        assert main(argv) == EXIT_OK
        out = capsys.readouterr().out
        assert "result store" in out
        assert f"entries       {len(bench_paths)}" in out
        assert main(argv + ["--json"]) == EXIT_OK
        status = json.loads(capsys.readouterr().out)
        assert status["store"]["entries"] == len(bench_paths)
        assert status["store"]["publishes"] == len(bench_paths)
        assert status["store"]["corrupt"] == 0

    def test_store_gc_needs_a_cap(self, store_campaign, capsys):
        _journal, store = store_campaign
        with pytest.raises(SystemExit) as ei:
            main(["store-gc", str(store)])
        assert ei.value.code == EXIT_USAGE
        assert "cap" in capsys.readouterr().err

    def test_store_gc_missing_store_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["store-gc", str(tmp_path / "nope"), "--max-bytes", "1"])
        assert ei.value.code == EXIT_USAGE
        assert "no result store" in capsys.readouterr().err

    def test_store_gc_prunes_and_reports(
        self, bench_paths, store_campaign, capsys
    ):
        _journal, store = store_campaign
        capsys.readouterr()
        argv = ["store-gc", str(store), "--max-bytes", "0", "--json"]
        assert main(argv) == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["deleted"] == len(bench_paths)
        assert report["kept"] == 0


class TestPackCli:
    def test_build_verify_and_tamper(
        self, tmp_path, store_campaign, capsys
    ):
        journal, store = store_campaign
        pack = tmp_path / "pack"
        assert (
            main(
                [
                    "pack",
                    str(journal),
                    "--out",
                    str(pack),
                    "--store",
                    str(store),
                ]
            )
            == EXIT_OK
        )
        assert "evidence pack" in capsys.readouterr().out
        assert main(["pack", str(pack), "--verify"]) == EXIT_OK
        assert "OK" in capsys.readouterr().out

        victim = sorted((pack / "store").glob("*.json"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x40
        victim.write_bytes(bytes(data))
        assert main(["pack", str(pack), "--verify"]) == EXIT_INFEASIBLE
        assert "mismatched" in capsys.readouterr().out

        assert main(["pack", str(pack), "--verify", "--json"]) \
            == EXIT_INFEASIBLE
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["mismatched"] == [f"store/{victim.name}"]

    def test_build_without_out_is_a_usage_error(
        self, store_campaign, capsys
    ):
        journal, _store = store_campaign
        with pytest.raises(SystemExit) as ei:
            main(["pack", str(journal)])
        assert ei.value.code == EXIT_USAGE
        assert "--out" in capsys.readouterr().err

    def test_verify_refuses_build_options(
        self, tmp_path, store_campaign, capsys
    ):
        _journal, store = store_campaign
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "pack",
                    str(tmp_path / "pack"),
                    "--verify",
                    "--store",
                    str(store),
                ]
            )
        assert ei.value.code == EXIT_USAGE

    def test_missing_journal_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "pack",
                    str(tmp_path / "nope.journal"),
                    "--out",
                    str(tmp_path / "pack"),
                ]
            )
        assert ei.value.code == EXIT_USAGE
        assert "journal not found" in capsys.readouterr().err
