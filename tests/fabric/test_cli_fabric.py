"""The fabric's CLI surface: sweep --fabric and fabric-status."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, main
from repro.resilience.chaos import FabricChaosSpec


class TestSweepFabric:
    def test_fabric_sweep_runs_and_resumes(
        self, tmp_path, bench_paths, capsys
    ):
        journal = tmp_path / "sweep.journal"
        argv = [
            "sweep",
            str(bench_paths[0].parent),
            "--results",
            str(journal),
            "--patterns",
            "64",
            "--fabric",
            "--workers",
            "2",
        ]
        assert main(argv) == EXIT_OK
        err = capsys.readouterr().err
        assert f"swept {len(bench_paths)}/{len(bench_paths)}" in err
        before = journal.read_text()
        # A rerun serves everything from the journal and writes nothing.
        assert main(argv) == EXIT_OK
        assert journal.read_text() == before

    def test_no_resume_with_fabric_is_a_usage_error(
        self, tmp_path, bench_paths, capsys
    ):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "sweep",
                    str(bench_paths[0].parent),
                    "--results",
                    str(tmp_path / "j.journal"),
                    "--fabric",
                    "--no-resume",
                ]
            )
        assert ei.value.code == EXIT_USAGE
        assert "content-addressed" in capsys.readouterr().err


class TestExperimentsFabric:
    def test_fabric_campaign_runs_and_resumes(self, tmp_path, capsys):
        journal = tmp_path / "exp.journal"
        argv = [
            "experiments",
            "--only",
            "t2",
            "--results",
            str(journal),
            "--fabric",
        ]
        assert main(argv) == EXIT_OK
        assert "1 ok, 0 failed" in capsys.readouterr().err
        before = journal.read_text()
        assert main(argv) == EXIT_OK
        assert journal.read_text() == before

    def test_fabric_without_results_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["experiments", "--only", "t2", "--fabric"])
        assert ei.value.code == EXIT_USAGE
        assert "--results" in capsys.readouterr().err

    def test_no_resume_with_fabric_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(
                [
                    "experiments",
                    "--only",
                    "t2",
                    "--results",
                    str(tmp_path / "exp.journal"),
                    "--fabric",
                    "--no-resume",
                ]
            )
        assert ei.value.code == EXIT_USAGE
        assert "content-addressed" in capsys.readouterr().err


class TestFabricStatus:
    def test_status_reports_commits_and_poison(
        self, tmp_path, bench_paths, capsys
    ):
        from repro.analysis import experiments as exps

        journal = tmp_path / "sweep.journal"
        exps.run_circuit_sweep(
            bench_paths,
            journal,
            n_patterns=64,
            fabric=True,
            workers=2,
            chaos=FabricChaosSpec(
                forced=((1, "spurious"),), first_attempt_only=False
            ),
        )
        assert main(["fabric-status", str(journal)]) == EXIT_OK
        out = capsys.readouterr().out
        assert f"committed     {len(bench_paths) - 1}" in out
        assert "quarantined   1" in out
        assert "poison [+]" in out  # artifact written and present

        assert main(["fabric-status", str(journal), "--json"]) == EXIT_OK
        status = json.loads(capsys.readouterr().out)
        assert status["commits"] == len(bench_paths) - 1
        assert status["quarantined"] == 1
        assert status["kinds"] == {"sweep_circuit": len(bench_paths) - 1}
        assert status["quarantine"][0]["last_error"] == "RuntimeError"
        assert status["quarantine"][0]["artifact_present"] is True

    def test_missing_journal_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["fabric-status", str(tmp_path / "nope.journal")])
        assert ei.value.code == EXIT_USAGE
        assert "no fabric journal" in capsys.readouterr().err
