"""Smoke tests for the experiment runners (small parameterizations).

Full-scale runs live in ``benchmarks/``; here each runner is exercised on
a scaled-down instance to pin the row structure and the headline shape
claims (optimality holds, coverage improves, runtime finite).
"""

import pytest

from repro.analysis import (
    run_f1_points_curve,
    run_f2_runtime_scaling,
    run_f3_testlength_curves,
    run_f4_quantization_ablation,
    run_t1_circuit_characteristics,
    run_t2_dp_optimality,
    run_t3_tree_solver_comparison,
    run_t4_coverage_improvement,
)


class TestT1:
    def test_rows_and_render(self):
        result = run_t1_circuit_characteristics(
            names=["c17", "wand16"], n_patterns=256
        )
        assert len(result.rows) == 2
        text = result.render()
        assert "c17" in text and "[T1]" in text


class TestT2:
    def test_dp_always_optimal(self):
        result = run_t2_dp_optimality(n_trees=3, tree_gates=5, thresholds=(0.05,))
        assert len(result.rows) == 3
        assert all(row[-1] for row in result.rows), "DP missed the optimum"


class TestT3:
    def test_dp_beats_or_ties_greedy(self):
        result = run_t3_tree_solver_comparison(
            tree_specs=[(15, 0), (15, 1)], n_patterns=1024
        )
        for row in result.rows:
            _name, _gates, dp_cost, greedy_cost, _rnd, dp_ok, greedy_ok = row
            assert dp_ok and greedy_ok
            assert dp_cost <= greedy_cost + 1e-9


class TestT4:
    def test_coverage_improves(self):
        result, reports = run_t4_coverage_improvement(
            names=["wand16"], n_patterns=1024
        )
        assert len(result.rows) == 1
        report = reports["wand16"]
        assert report.modified_coverage > report.baseline_coverage


class TestF1:
    def test_curve_reaches_full_placement(self):
        result = run_f1_points_curve(name="wand16", n_patterns=512)
        counts = [row[0] for row in result.rows]
        assert counts == sorted(counts)
        assert result.rows[-1][2] >= result.rows[0][2]


class TestF2:
    def test_runtime_rows(self):
        result = run_f2_runtime_scaling(
            tree_sizes=(5, 10), threshold=0.05, exhaustive_limit=5
        )
        assert len(result.rows) == 2
        assert result.rows[0][3] is not None  # exhaustive ran on the small one
        assert result.rows[1][3] is None


class TestF3:
    def test_modified_dominates_baseline_at_end(self):
        result = run_f3_testlength_curves(name="wand16", n_patterns=1024)
        final = result.rows[-1]
        assert final[2] >= final[1]


class TestF4:
    def test_cost_plateaus_with_density(self):
        result = run_f4_quantization_ablation(
            tree_gates=10, seed=1, threshold=0.05, ratios=(4.0, 2.0)
        )
        sizes = [row[1] for row in result.rows]
        assert sizes == sorted(sizes)  # finer ratio → larger grid
        costs = [row[2] for row in result.rows]
        assert costs[-1] <= costs[0] + 1e-9  # finer never worse


class TestE1:
    def test_aliasing_decreases_with_width(self):
        from repro.analysis import run_e1_misr_aliasing

        result = run_e1_misr_aliasing(widths=(2, 8), n_patterns=64)
        assert result.rows[0][4] >= result.rows[1][4]


class TestE2:
    def test_margin_rows(self):
        from repro.analysis import run_e2_margin_ablation

        result = run_e2_margin_ablation(
            margins=(1.0, 2.0), tree_gates=15, seed=3, n_patterns=1024
        )
        assert len(result.rows) == 2
        assert result.rows[1][3]  # margin 2 continuously feasible


class TestE3:
    def test_both_strategies_beat_random(self):
        from repro.analysis import run_e3_strategy_comparison

        result = run_e3_strategy_comparison(names=["wand16"], n_patterns=512)
        _name, random_cov, topoff_cov, cubes, tpi_cov, points = result.rows[0]
        assert topoff_cov >= random_cov
        assert tpi_cov >= random_cov
        assert cubes > 0 and points > 0
