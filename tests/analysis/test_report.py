"""Tests for the testability profile report."""

import pytest

from repro.analysis import testability_report
from repro.circuit import benchmark, generators
from repro.sim import Fault


class TestTestabilityReport:
    def test_rpr_circuit_profile(self):
        circuit = benchmark("wand16")
        report = testability_report(circuit, n_patterns=4096)
        assert report.circuit_name == "wand16"
        assert report.n_faults == 62  # full (uncollapsed) testable list
        assert report.rpr_faults  # the cone's deep faults are below θ
        # Hardest first.
        probs = [d for _f, d in report.rpr_faults]
        assert probs == sorted(probs)
        out = circuit.outputs[0]
        assert any(f == Fault(out, 0) for f, _d in report.rpr_faults)

    def test_easy_circuit_clean(self):
        report = testability_report(generators.parity_tree(8), n_patterns=4096)
        assert report.rpr_faults == []
        assert report.n_reconvergent_stems == 0
        assert report.n_regions == 1

    def test_reconvergence_counted(self, diamond):
        report = testability_report(diamond, n_patterns=256)
        assert report.n_reconvergent_stems == 1

    def test_candidate_lists_populated(self):
        report = testability_report(benchmark("rprmix"), n_patterns=4096)
        assert report.skewed_nodes
        assert report.blind_nodes
        # Skew list is sorted by |p - 0.5| descending.
        skews = [abs(p - 0.5) for _n, p in report.skewed_nodes]
        assert skews == sorted(skews, reverse=True)

    def test_render_contains_sections(self):
        report = testability_report(benchmark("wand16"), n_patterns=4096)
        text = report.render()
        assert "Testability report — wand16" in text
        assert "Random-pattern-resistant faults" in text
        assert "control-point candidates" in text

    def test_render_truncates(self):
        report = testability_report(benchmark("rprmix"), n_patterns=4096)
        assert len(report.rpr_faults) > 2
        text = report.render(max_rows=2)
        assert "more" in text
