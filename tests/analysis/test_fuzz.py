"""Differential fuzz harness: finds planted bugs, shrinks them, bundles them."""

from __future__ import annotations

import pytest

from repro.analysis.fuzz import FuzzReport, run_fuzz, shrink_circuit
from repro.circuit import generators
from repro.sim.compile import clear_registry
from repro.verify import load_bundle, plant_logic_bug, replay_bundle


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


class TestCleanFuzz:
    def test_short_clean_campaign(self, tmp_path):
        report = run_fuzz(
            budget_ms=3000, seed=0, bundle_dir=str(tmp_path), max_gates=12
        )
        assert isinstance(report, FuzzReport)
        assert report.clean, report.describe()
        assert report.trials >= 1
        assert report.checks > report.trials  # several checks per trial
        assert "clean" in report.describe()

    def test_campaign_is_seed_deterministic(self, tmp_path):
        # Trial construction is a pure function of (seed, trial): the
        # same seed re-draws the same circuits.
        from repro.analysis.fuzz import _build_circuit

        a = [_build_circuit(t, 5, 20).structural_hash() for t in range(6)]
        b = [_build_circuit(t, 5, 20).structural_hash() for t in range(6)]
        assert a == b
        c = [_build_circuit(t, 6, 20).structural_hash() for t in range(6)]
        assert a != c


class TestNumpyKernelFuzz:
    np = pytest.importorskip("numpy")

    def test_short_clean_campaign_on_numpy(self, tmp_path):
        report = run_fuzz(
            budget_ms=3000,
            seed=0,
            bundle_dir=str(tmp_path),
            max_gates=12,
            kernel="numpy",
        )
        assert report.clean, report.describe()
        assert report.trials >= 1

    def test_interp_kernel_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_fuzz(
                budget_ms=100,
                seed=0,
                bundle_dir=str(tmp_path),
                kernel="interp",
            )

    def test_numpy_divergence_bundled_with_kernel(self, tmp_path, monkeypatch):
        # Corrupt the array engine's cone propagation the way a real
        # engine bug would: every campaign lane keeps the interpreted
        # arbiter, so the fault lane must catch it and the bundle must
        # record which backend diverged.
        from repro.sim import npsim

        real_cone = npsim.propagate_cone
        real_batch = npsim.propagate_batch

        def corrupt_cone(state, cone, injected, want_diffs):
            detect, diffs = real_cone(state, cone, injected, want_diffs)
            return detect ^ 1, diffs

        def corrupt_batch(state, sites, chunk_bytes=npsim.BATCH_CHUNK_BYTES):
            detect, evals = real_batch(state, sites, chunk_bytes)
            detect[:, 0] ^= self.np.uint64(1)
            return detect, evals

        # Corrupt both propagation strategies the engine picks between,
        # so the planted bug survives whichever one a trial exercises.
        monkeypatch.setattr(npsim, "propagate_cone", corrupt_cone)
        monkeypatch.setattr(npsim, "propagate_batch", corrupt_batch)
        report = run_fuzz(
            budget_ms=30_000,
            seed=3,
            bundle_dir=str(tmp_path),
            max_gates=16,
            kernel="numpy",
        )
        assert report.failures, "fuzzer missed the corrupted numpy engine"
        failure = report.failures[0]
        manifest, _ = load_bundle(failure.bundle)
        assert manifest["context"]["kernel"] == "numpy"
        # While the engine bug is still live the replay runs the numpy
        # fast path (the recorded kernel) and reproduces; once the
        # engine is healthy again the divergence correctly goes stale.
        assert replay_bundle(failure.bundle).reproduced
        monkeypatch.setattr(npsim, "propagate_cone", real_cone)
        monkeypatch.setattr(npsim, "propagate_batch", real_batch)
        assert not replay_bundle(failure.bundle).reproduced


class TestStoreLane:
    def test_clean_circuit_round_trips(self):
        from repro.analysis.fuzz import _check_store

        circuit = generators.random_dag(4, 10, seed=5)
        assert _check_store(circuit, seed=0, n_patterns=32) is None

    def test_short_clean_campaign_with_store(self, tmp_path):
        report = run_fuzz(
            budget_ms=3000,
            seed=0,
            bundle_dir=str(tmp_path),
            max_gates=10,
            store=True,
        )
        assert report.clean, report.describe()
        assert report.trials >= 1

    def test_nondeterministic_executor_is_caught(self, monkeypatch):
        # A cache built on a nondeterministic executor is poison; the
        # lane must flag it even though each run looks self-consistent.
        from repro.analysis import experiments as exps
        from repro.analysis.fuzz import _check_store

        real = exps.execute_sweep_job
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            result = real(payload)
            result = dict(result)
            result["cost"] = calls["n"]  # drifts between executions
            return result

        monkeypatch.setattr(exps, "execute_sweep_job", flaky)
        circuit = generators.random_dag(4, 10, seed=6)
        divergence = _check_store(circuit, seed=0, n_patterns=32)
        assert divergence is not None
        assert divergence.kind == "fuzz.store"
        assert "bit-identical" in divergence.message


class TestSaboteurSelfTest:
    def test_planted_kernel_bug_found_shrunk_and_replayable(self, tmp_path):
        """Acceptance criteria: find the miscompile, shrink to <=10 gates,
        write a bundle that deterministically reproduces."""
        report = run_fuzz(
            budget_ms=30_000,
            seed=1,
            bundle_dir=str(tmp_path),
            max_gates=20,
            saboteur=plant_logic_bug,
        )
        assert report.failures, "fuzzer missed the planted kernel bug"
        failure = report.failures[0]
        assert failure.kind == "fuzz.logic_sim"
        assert failure.gates_shrunk <= 10
        assert failure.gates_shrunk <= failure.gates_found
        manifest, circuit = load_bundle(failure.bundle)
        assert manifest["kind"] == "fuzz.logic_sim"
        assert circuit.gate_count() == failure.gates_shrunk
        result = replay_bundle(failure.bundle)
        assert result.reproduced
        assert replay_bundle(failure.bundle).reproduced  # deterministic

    def test_sabotaged_registry_is_cleared_after_campaign(self, tmp_path):
        from repro.sim.compile import registry_size

        run_fuzz(
            budget_ms=5_000,
            seed=2,
            bundle_dir=str(tmp_path),
            max_gates=10,
            saboteur=plant_logic_bug,
        )
        assert registry_size() == 0  # corrupt kernels never leak


class TestShrinker:
    def test_shrinks_to_single_gate_when_any_gate_fails(self):
        circuit = generators.random_dag(4, 25, seed=3)
        small = shrink_circuit(circuit, lambda c: True)
        assert small.gate_count() == 1
        small.validate()

    def test_keeps_circuit_when_nothing_smaller_fails(self):
        circuit = generators.random_dag(4, 10, seed=4)
        kept = shrink_circuit(circuit, lambda c: False)
        assert kept.structural_hash() == circuit.structural_hash()

    def test_predicate_preserving_reduction(self):
        # Failure depends on a property reductions can preserve: an AND
        # gate somewhere in the circuit.
        from repro.circuit.gates import GateType

        def has_and(c):
            return any(g.gate_type is GateType.AND for g in c.gates)

        circuit = generators.random_dag(4, 30, seed=5)
        if not has_and(circuit):
            pytest.skip("workload drew no AND gate")
        small = shrink_circuit(circuit, has_and)
        assert has_and(small)
        assert small.gate_count() <= circuit.gate_count()
        small.validate()
