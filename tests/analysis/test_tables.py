"""Unit tests for table rendering."""

import pytest

from repro.analysis import Table, format_value


class TestFormatValue:
    def test_floats_fixed_precision(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(0.123456, precision=1) == "0.1"

    def test_none_dash(self):
        assert format_value(None) == "—"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_inf(self):
        assert format_value(float("inf")) == "inf"

    def test_int_and_str(self):
        assert format_value(42) == "42"
        assert format_value("x") == "x"


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add_row(["short", 1])
        t.add_row(["much-longer-name", 2])
        text = t.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[1:]}) >= 1  # renders

    def test_title(self):
        t = Table(["a"])
        t.add_row([1])
        assert t.render(title="My Table").startswith("My Table")

    def test_row_width_check(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_markdown(self):
        t = Table(["a", "b"])
        t.add_row([1, 2.5])
        md = t.render_markdown(title="T")
        assert "| a | b |" in md
        assert "| 1 | 2.500 |" in md
        assert md.startswith("### T")
