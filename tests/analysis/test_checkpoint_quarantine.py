"""Checkpoint resume hardening: corrupt JSONL lines quarantine, not abort."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import (
    _read_checkpoint_lines,
    run_circuit_sweep,
)
from repro.circuit.bench_io import write_bench
from repro.circuit.generators import c17, random_dag


@pytest.fixture
def sweep_env(tmp_path):
    paths = []
    for i, circuit in enumerate([c17(), random_dag(4, 10, seed=1)]):
        p = tmp_path / f"c{i}.bench"
        p.write_text(write_bench(circuit))
        paths.append(p)
    return paths, tmp_path / "sweep.jsonl"


def _sidecar(ckpt):
    return ckpt.with_name(ckpt.name + ".bad")


class TestReadCheckpointLines:
    def test_clean_file_reads_without_sidecar(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        assert _read_checkpoint_lines(path) == [{"a": 1}, {"b": 2}]
        assert not _sidecar(path).exists()

    def test_corrupt_lines_anywhere_are_quarantined(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            "garbage not json\n"
            '{"first": 1}\n'
            "{torn in the midd\n"
            '{"second": 2}\n'
            '[1, 2, 3]\n'
            '{"third": 3}\n'
            '{"torn tail": '
        )
        with pytest.warns(RuntimeWarning, match="quarantined"):
            records = _read_checkpoint_lines(path)
        assert records == [{"first": 1}, {"second": 2}, {"third": 3}]
        bad = _sidecar(path).read_text().splitlines()
        assert len(bad) == 4
        assert "garbage not json" in bad
        # The bad lines were MOVED: the checkpoint now holds only good
        # lines, so the next read is clean and quarantines nothing new.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _read_checkpoint_lines(path) == records
        assert len(_sidecar(path).read_text().splitlines()) == 4


class TestSweepResume:
    def test_resume_survives_corrupt_checkpoint(self, sweep_env):
        paths, ckpt = sweep_env
        first = run_circuit_sweep(paths, ckpt, n_patterns=64)
        assert all(o.ok for o in first)

        lines = ckpt.read_text().splitlines()
        # Corrupt the FIRST record (not just a torn tail), add a
        # schema-mismatched but decodable record, and tear the tail.
        lines[0] = lines[0][: len(lines[0]) // 2]
        lines.append(json.dumps({"foreign": True, "schema": 9}))
        lines.append('{"torn": ')
        ckpt.write_text("\n".join(lines) + "\n")

        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = run_circuit_sweep(paths, ckpt, n_patterns=64)
        # Both circuits present: the quarantined one re-ran, the intact
        # record was reused.
        assert [o.circuit for o in second] == [o.circuit for o in first]
        assert all(o.ok for o in second)
        assert _sidecar(ckpt).exists()

        # A third resume needs no reruns and no new quarantine warnings:
        # the corrupt lines were moved out of the checkpoint.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            third = run_circuit_sweep(
                paths, ckpt, n_patterns=64, max_circuits=0
            )
        assert [o.circuit for o in third] == [o.circuit for o in first]
