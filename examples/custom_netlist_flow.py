"""Scenario: bringing your own netlist through the full DFT flow.

Run with::

    python examples/custom_netlist_flow.py

Builds a custom datapath-ish block with the fluent builder (a comparator
gating a corridor — deliberately hard for random patterns), round-trips it
through the ISCAS ``.bench`` interchange format, identifies its
random-pattern-resistant faults analytically, and fixes them with the
DP-on-regions heuristic.
"""

import tempfile
from pathlib import Path

from repro.circuit import CircuitBuilder, parse_bench_file, write_bench_file
from repro.core import (
    TPIProblem,
    evaluate_solution,
    prepare_for_tpi,
    solve_dp_heuristic,
)
from repro.testability import detection_probabilities, random_pattern_resistant_faults


def build_block():
    """An 8-bit equality check gating a 5-deep enable corridor."""
    b = CircuitBuilder("match_gate")
    a = b.inputs(*[f"a{i}" for i in range(8)])
    c = b.inputs(*[f"b{i}" for i in range(8)])
    eqs = [b.xnor(a[i], c[i], name=f"eq{i}") for i in range(8)]
    match = b.and_(*eqs, name="match")
    cur = match
    for i in range(5):
        en = b.input(f"en{i}")
        cur = b.and_(cur, en, name=f"gate{i}")
    b.output(cur)
    b.output(b.or_(a[0], c[0], name="alive"))
    return b.build()


def main() -> None:
    circuit = build_block()
    print(f"built: {circuit!r}")

    # Round-trip through the interchange format, as a real flow would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "match_gate.bench"
        write_bench_file(circuit, path)
        circuit = parse_bench_file(path)
    print(f"reloaded from .bench: {circuit!r}")

    # Planning requires 2-input gates (the wide AND is decomposed).
    circuit = prepare_for_tpi(circuit)
    problem = TPIProblem.from_test_length(circuit, n_patterns=4096)

    rpr = random_pattern_resistant_faults(circuit, problem.threshold)
    probs = detection_probabilities(circuit)
    print(f"\nrandom-pattern-resistant faults at θ={problem.threshold:.5f}: {len(rpr)}")
    worst = sorted(rpr, key=lambda f: probs[f])[:5]
    for fault in worst:
        print(f"  {fault.describe():24s} detection ≈ {probs[fault]:.2e}")

    solution = solve_dp_heuristic(problem)
    print(f"\n{solution.describe()}")

    report = evaluate_solution(problem, solution, 4096)
    print(
        f"\nmeasured coverage: {100 * report.baseline_coverage:.2f}% -> "
        f"{100 * report.modified_coverage:.2f}% "
        f"({report.n_control} CP + {report.n_observation} OP)"
    )


if __name__ == "__main__":
    main()
