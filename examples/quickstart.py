"""Quickstart: plan, insert, and validate test points on one circuit.

Run with::

    python examples/quickstart.py

Walks the canonical flow on a random-pattern-resistant fanout-free
circuit (a 16-input AND cone): derive the detection threshold from BIST
parameters, run the paper's dynamic program, physically insert the chosen
points, and confirm the measured fault-coverage lift.
"""

from repro.circuit import benchmark
from repro.core import TPIProblem, evaluate_solution, solve_tree

N_PATTERNS = 4096


def main() -> None:
    # 1. A circuit whose faults resist random patterns: P[output = 1] = 2^-16.
    circuit = benchmark("wand16")
    print(f"circuit: {circuit!r}")

    # 2. BIST parameters → detection threshold θ: any fault with detection
    #    probability ≥ θ escapes 4096 patterns with probability ≤ 0.1%.
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=N_PATTERNS, escape_budget=0.001
    )
    print(f"threshold θ = {problem.threshold:.6f}")

    # 3. The paper's contribution: exact (up to quantization) minimum-cost
    #    test point selection on fanout-free circuits via dynamic
    #    programming.  margin=1.5 buys back quantization slack.
    solution = solve_tree(problem, margin=1.5)
    print(solution.describe())

    # 4. Insert the hardware and fault simulate both netlists.
    report = evaluate_solution(problem, solution, N_PATTERNS)
    print(
        f"measured coverage @ {N_PATTERNS} patterns: "
        f"{100 * report.baseline_coverage:.2f}% -> "
        f"{100 * report.modified_coverage:.2f}%"
    )


if __name__ == "__main__":
    main()
