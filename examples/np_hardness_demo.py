"""Scenario: why the DP stops at fanout-free circuits — SAT in disguise.

Run with::

    python examples/np_hardness_demo.py

The paper's complexity result says optimal test point insertion is
NP-complete once fanout reconverges.  This demo makes the reduction
tangible: a CNF formula becomes a netlist whose reconvergent variable
stems encode the formula's consistency constraints, and deciding whether
ONE fault of that netlist is excitable is exactly deciding satisfiability.
The script cross-checks the testability oracle against brute-force SAT on
random 3-CNF instances near the phase transition.
"""

from repro.core import (
    brute_force_sat,
    cnf_to_circuit,
    is_satisfiable_via_testability,
    random_cnf,
)
from repro.circuit import reconvergent_stems


def show(cnf) -> str:
    return " ∧ ".join(
        "(" + " ∨ ".join((f"x{l}" if l > 0 else f"¬x{-l}") for l in c) + ")"
        for c in cnf
    )


def main() -> None:
    print("Tiny worked example:")
    cnf = [[1, 2], [-1, 2], [1, -2]]
    circuit = cnf_to_circuit(cnf)
    print(f"  formula: {show(cnf)}")
    print(f"  netlist: {circuit!r}")
    print(f"  reconvergent stems: {reconvergent_stems(circuit)}")
    print(f"  'sat' s-a-0 excitable?  {is_satisfiable_via_testability(cnf)}")
    print(f"  brute-force SAT?        {brute_force_sat(cnf) is not None}")

    print("\nRandom 3-CNF sweep (n=6 variables, 26 clauses ≈ phase transition):")
    agree = 0
    for seed in range(16):
        cnf = random_cnf(6, 26, seed=seed)
        via_fault = is_satisfiable_via_testability(cnf)
        via_search = brute_force_sat(cnf) is not None
        agree += via_fault == via_search
        print(
            f"  seed {seed:2d}: testability says {str(via_fault):5s} "
            f"| SAT search says {str(via_search):5s}"
        )
    print(f"\nagreement: {agree}/16 (must be 16 — the reduction is exact)")
    print(
        "\nMoral: exact testability analysis on reconvergent circuits "
        "decides SAT,\nso no polynomial TPI planner can be exact there — "
        "the DP earns its\noptimality guarantee precisely on fanout-free "
        "structure."
    )


if __name__ == "__main__":
    main()
