"""Scenario: the complete self-test story, end to end.

Run with::

    python examples/full_bist_flow.py

Chains every subsystem the way a production BIST insertion flow would:

1. analyze a random-pattern-resistant design;
2. insert test points with the DP heuristic;
3. run the full BIST loop (LFSR stimulus → modified CUT → MISR signature)
   and report coverage *as the BIST controller sees it*, aliasing included;
4. top off the last stragglers with deterministic PODEM cubes.
"""

from repro.atpg import top_off
from repro.bist import BISTArchitecture, run_bist
from repro.circuit import benchmark
from repro.core import (
    TPIProblem,
    apply_test_points,
    prepare_for_tpi,
    solve_dp_heuristic,
)
from repro.sim import LFSRSource

N_PATTERNS = 4096


def main() -> None:
    # 1. The design under test.
    circuit = prepare_for_tpi(benchmark("rprmix"))
    print(f"design: {circuit!r}")

    arch = BISTArchitecture(
        n_patterns=N_PATTERNS,
        misr_width=16,
        source=LFSRSource(degree=24, seed=0xBEEF),
    )

    baseline = run_bist(circuit, arch)
    print(
        f"\nunmodified BIST run: output coverage "
        f"{100 * baseline.output_coverage:.2f}%, signature coverage "
        f"{100 * baseline.signature_coverage:.2f}% "
        f"(golden signature 0x{baseline.golden_signature:04x})"
    )

    # 2. Insert test points.
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=N_PATTERNS, escape_budget=0.001
    )
    solution = solve_dp_heuristic(problem)
    print(f"\ninserted {len(solution.points)} test points "
          f"(cost {solution.cost:g}):")
    for point in solution.points:
        print(f"  {point.describe()}")
    insertion = apply_test_points(circuit, solution.points)

    # 3. BIST run on the modified design, over the original fault universe.
    live_faults = [m for m in insertion.fault_map.values() if m is not None]
    modified = run_bist(insertion.circuit, arch, faults=live_faults)
    print(
        f"\nmodified BIST run: output coverage "
        f"{100 * modified.output_coverage:.2f}%, signature coverage "
        f"{100 * modified.signature_coverage:.2f}%, "
        f"aliased faults: {len(modified.aliased)}"
    )

    # 4. Deterministic top-off for anything left.
    report = top_off(insertion.circuit, n_random_patterns=N_PATTERNS)
    print(f"\ntop-off on the modified design: {report.summary()}")


if __name__ == "__main__":
    main()
