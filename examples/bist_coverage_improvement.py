"""Scenario: making a reconvergent, random-pattern-resistant design BIST-ready.

Run with::

    python examples/bist_coverage_improvement.py

The workload is ``rprmix_big`` — wide AND cones feeding low-observability
corridors, XOR-mixed, with reconvergent fanout — the kind of logic whose
stuck-at coverage stalls far below target under pseudo-random patterns.
The script compares the DP-on-regions heuristic against the classic greedy
baseline, then prints the measured coverage-vs-test-length series for the
chosen placement (the paper's curve-shift figure).
"""

from repro.circuit import benchmark
from repro.core import (
    TPIProblem,
    evaluate_solution,
    solve_dp_heuristic,
    solve_greedy,
)

N_PATTERNS = 8192


def main() -> None:
    circuit = benchmark("rprmix_big")
    print(f"circuit: {circuit!r}")
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=N_PATTERNS, escape_budget=0.001
    )

    print("\n--- DP-on-regions heuristic (the paper's approach) ---")
    dp_solution = solve_dp_heuristic(problem)
    print(dp_solution.describe())
    dp_report = evaluate_solution(problem, dp_solution, N_PATTERNS)

    print("\n--- greedy baseline ---")
    greedy_solution = solve_greedy(problem)
    print(
        f"greedy: feasible={greedy_solution.feasible} "
        f"cost={greedy_solution.cost:g} points={len(greedy_solution.points)}"
    )
    greedy_report = evaluate_solution(problem, greedy_solution, N_PATTERNS)

    print("\n--- measured coverage ---")
    header = f"{'method':12s} {'#CP':>4s} {'#OP':>4s} {'before':>8s} {'after':>8s}"
    print(header)
    for label, report in (("dp-regions", dp_report), ("greedy", greedy_report)):
        print(
            f"{label:12s} {report.n_control:4d} {report.n_observation:4d} "
            f"{100 * report.baseline_coverage:7.2f}% "
            f"{100 * report.modified_coverage:7.2f}%"
        )

    print("\n--- coverage vs test length (dp-regions placement) ---")
    modified = dict(dp_report.modified_curve)
    print(f"{'patterns':>9s} {'baseline':>9s} {'with TPs':>9s}")
    for n, base in dp_report.baseline_curve:
        print(f"{n:9d} {100 * base:8.2f}% {100 * modified[n]:8.2f}%")


if __name__ == "__main__":
    main()
