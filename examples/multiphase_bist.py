"""Scenario: multi-phase fixed-value control points (the extension).

Run with::

    python examples/multiphase_bist.py

The 1987 scheme drives every control point from its own pseudo-random
scan cell.  The extension implemented in ``repro.core.phases`` (the
direction that became multi-phase TPI in the later literature) drives
AND/OR-type points with *fixed values*, grouped into phases enabled by a
phase decoder — far cheaper hardware.  This script plans a placement,
schedules it into phases, checks every fault's escape probability
analytically, and confirms the measured coverage of the phased test.
"""

from repro.circuit import benchmark
from repro.core import (
    TestPointType,
    TPIProblem,
    evaluate_solution,
    measure_phase_coverage,
    phase_escape_probabilities,
    prepare_for_tpi,
    schedule_phases,
    solve_dp_heuristic,
)

N_PATTERNS = 4096
FIXED_TYPES = (
    TestPointType.OBSERVATION,
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
)


def main() -> None:
    circuit = prepare_for_tpi(benchmark("rprmix_big"))
    print(f"design: {circuit!r}")
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=N_PATTERNS, allowed_types=FIXED_TYPES
    )

    solution = solve_dp_heuristic(problem)
    print(f"\nplacement ({len(solution.points)} points, cost {solution.cost:g}):")
    for point in solution.points:
        print(f"  {point.describe()}")

    plan = schedule_phases(problem, solution.points, n_patterns=N_PATTERNS)
    print(f"\n{plan.describe()}")

    escapes = phase_escape_probabilities(problem, plan, N_PATTERNS)
    worst = max(escapes.values())
    at_risk = sum(1 for e in escapes.values() if e > 0.001)
    print(
        f"\nanalytic check: worst per-fault escape probability "
        f"{worst:.2e}; {at_risk}/{len(escapes)} faults above the 0.1% budget"
    )

    phased = measure_phase_coverage(problem, plan, N_PATTERNS)
    random_driven = evaluate_solution(problem, solution, N_PATTERNS)
    print(
        f"\nmeasured coverage: unmodified "
        f"{100 * random_driven.baseline_coverage:.2f}% | "
        f"random-driven CPs {100 * random_driven.modified_coverage:.2f}% | "
        f"fixed-value {plan.n_phases}-phase test {100 * phased:.2f}%"
    )
    print(
        "\nTake-away: a couple of fixed-value phases recover the coverage "
        "of fully\nrandom control points — with a phase decoder instead of "
        "a scan cell per point."
    )


if __name__ == "__main__":
    main()
