"""Scenario: exploring the test-length / hardware-cost trade-off.

Run with::

    python examples/threshold_tradeoff.py

The detection threshold θ ties pattern budget to hardware: a shorter test
demands a higher θ, which demands more test points.  This script sweeps
the pattern budget on a fanout-free RPR circuit and reports, for each
budget, the DP's minimum hardware cost and the placement mix — the curve a
DFT engineer actually negotiates with.
"""

from repro.circuit import benchmark
from repro.core import TPIProblem, solve_tree
from repro.testability import required_threshold

PATTERN_BUDGETS = [256, 1024, 4096, 16384, 65536]
ESCAPE = 0.001


def main() -> None:
    # A fanout-free RPR circuit, so the exact DP applies directly.
    circuit = benchmark("wand16")
    print(f"circuit: {circuit!r}, escape budget {ESCAPE}")
    print(
        f"{'patterns':>9s} {'theta':>10s} {'cost':>6s} {'#CP':>4s} "
        f"{'#OP':>4s} {'feasible':>9s}"
    )
    for n_patterns in PATTERN_BUDGETS:
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=n_patterns, escape_budget=ESCAPE
        )
        solution = solve_tree(problem, margin=1.5)
        theta = required_threshold(n_patterns, ESCAPE)
        print(
            f"{n_patterns:9d} {theta:10.6f} {solution.cost:6g} "
            f"{len(solution.control_points()):4d} "
            f"{len(solution.observation_points()):4d} "
            f"{str(solution.feasible):>9s}"
        )
    print(
        "\nShape to expect: tighter pattern budgets (higher θ) force more "
        "hardware;\ngenerous budgets let the circuit pass with fewer or "
        "zero test points."
    )


if __name__ == "__main__":
    main()
