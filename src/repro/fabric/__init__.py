"""Supervised sweep fabric: leased jobs, durable journal, exactly-once.

The fabric turns a campaign (a sweep over circuits, a table of
experiments) into content-addressed jobs executed by a supervised
process pool and committed — exactly once each — to an append-only,
crash-consistent result journal.  The moving parts:

* :mod:`repro.fabric.jobs` — job identity: ``(circuit-hash,
  config-digest)`` content addressing, dedup, payloads;
* :mod:`repro.fabric.queue` — the lease/retry/quarantine state machine;
* :mod:`repro.fabric.journal` — the WAL: durable appends, torn-line
  tolerant replay, the exactly-once commit gate;
* :mod:`repro.fabric.worker` — worker-process execution with heartbeats
  and structured errors;
* :mod:`repro.fabric.supervisor` — the loop tying them together, with
  lease expiry, pool respawn, circuit breaking, and serial degradation;
* :mod:`repro.fabric.store` — the cross-campaign content-addressed
  result store: integrity-verified cache entries, quarantine, GC;
* :mod:`repro.fabric.pack` — evidence packs: journal + store entries +
  artifacts under a SHA-256 manifest, with offline verification;
* :mod:`repro.fabric.status` — read-only journal inspection for the CLI.

The drivers in :mod:`repro.analysis.experiments` build jobs and feed
them through a supervisor; nothing else needs to know the fabric exists.
"""

from .jobs import Job, config_digest, job_id_for
from .journal import JOURNAL_SCHEMA, ResultJournal
from .pack import PACK_SCHEMA, build_pack, verify_pack
from .queue import Lease, WorkQueue
from .status import format_status, journal_status
from .store import STORE_SCHEMA, ResultStore, StoreLease
from .supervisor import FabricSupervisor, quarantine_dir_for
from .worker import execute_job, init_fabric_worker

__all__ = [
    "FabricSupervisor",
    "JOURNAL_SCHEMA",
    "Job",
    "Lease",
    "PACK_SCHEMA",
    "ResultJournal",
    "ResultStore",
    "STORE_SCHEMA",
    "StoreLease",
    "WorkQueue",
    "build_pack",
    "config_digest",
    "execute_job",
    "format_status",
    "init_fabric_worker",
    "job_id_for",
    "journal_status",
    "quarantine_dir_for",
    "verify_pack",
]
