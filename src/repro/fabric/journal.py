"""Crash-consistent, exactly-once result journal (the fabric's WAL).

The journal is the fabric's single durable truth: a job *happened* iff
its ``commit`` record is in the journal, exactly once, no matter how
many workers attempted it, how many leases expired, how many times the
pool was respawned, or how many times the supervisor process itself was
``kill -9``-ed and resumed.  The design is a classic write-ahead log,
restricted to what the campaign actually needs:

* **append-only JSONL** — one record per line, written with
  :func:`repro.ioutil.append_durable_line` (write + flush + fsync), so a
  record that was acknowledged survives power loss;
* **torn-line tolerance** — a crash can tear at most the line in
  flight; on open the reader skips undecodable lines
  (:func:`~repro.ioutil.read_jsonl_tolerant`) and
  :func:`~repro.ioutil.repair_jsonl_tail` restores line alignment so
  the next append cannot concatenate onto a torn fragment.  A torn
  commit simply means that job re-runs — idempotent by content
  addressing;
* **exactly-once at the commit point** — :meth:`ResultJournal.commit`
  is the *only* way a result becomes real, and it refuses duplicates
  (late results from expired leases, double completions, replays after
  resume) by checking the in-memory committed set loaded from the log.
  Duplicate offers return False and are counted, never written;
* **quarantine records** — a poison job's terminal state is as durable
  as a result: the ``quarantine`` record (with its error history and
  artifact path) stops resumed campaigns from retrying it forever.

Monotonic ``seq`` numbers order records for the inspector; gaps are
legal (torn lines) and meaningful (evidence of a crash).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from .. import obs
from ..ioutil import append_durable_line, read_jsonl_tolerant, repair_jsonl_tail
from .jobs import Job

__all__ = ["ResultJournal", "JOURNAL_SCHEMA"]

#: Journal format identifier, written in every record.
JOURNAL_SCHEMA = "fabric-journal/1"

#: Record types the journal understands; anything else in the file is a
#: foreign record (counted, preserved, ignored).
_RECORD_TYPES = ("commit", "quarantine")


class ResultJournal:
    """Append-only exactly-once result log for one campaign.

    Opening an existing journal replays it: committed results and
    quarantined jobs become immediately queryable, torn lines are
    counted and skipped, and the append position is repaired to a line
    boundary.  The journal never rewrites history — resuming, retrying,
    and re-running are all append-side decisions.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None
        self._committed: Dict[str, dict] = {}
        self._quarantined: Dict[str, dict] = {}
        self.torn_lines = 0
        self.foreign_records = 0
        self._seq = 0
        if self.path.exists():
            self._replay()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        repaired = repair_jsonl_tail(self.path)
        records, _good, bad = read_jsonl_tolerant(self.path)
        self.torn_lines = len(bad)
        for record in records:
            rtype = record.get("type")
            job_id = record.get("job_id")
            if rtype not in _RECORD_TYPES or not isinstance(job_id, str):
                self.foreign_records += 1
                continue
            seq = record.get("seq")
            if isinstance(seq, int) and seq >= self._seq:
                self._seq = seq + 1
            if rtype == "commit":
                # First commit wins; a duplicate line could only exist if
                # a pre-fix writer produced one — never trust the later.
                self._committed.setdefault(job_id, record)
            else:
                self._quarantined.setdefault(job_id, record)
        if repaired or bad:
            obs.event(
                "fabric.journal_recovered",
                path=str(self.path),
                repaired_tail=repaired,
                torn_lines=len(bad),
                commits=len(self._committed),
            )
            obs.count("fabric.journal_torn_lines", len(bad))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def committed(self) -> Dict[str, dict]:
        """job_id → commit record (live view; treat as read-only)."""
        return self._committed

    @property
    def quarantined(self) -> Dict[str, dict]:
        """job_id → quarantine record (live view; treat as read-only)."""
        return self._quarantined

    def result_for(self, job_id: str) -> Optional[dict]:
        """The committed result payload for a job, or None."""
        record = self._committed.get(job_id)
        if record is None:
            return None
        return record.get("result")  # type: ignore[return-value]

    def is_done(self, job_id: str) -> bool:
        """True when the job needs no further work (committed or poison)."""
        return job_id in self._committed or job_id in self._quarantined

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._handle is None:
            if self.path.parent != Path(""):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        record = {"schema": JOURNAL_SCHEMA, "seq": self._seq, **record}
        append_durable_line(
            self._handle,
            json.dumps(record, sort_keys=True),
            path=self.path,
        )
        self._seq += 1

    def commit(self, job: Job, result: dict) -> bool:
        """Durably record a job's result — the exactly-once gate.

        Returns True when this call performed the commit; False when the
        job was already committed (or quarantined), in which case
        nothing is written and the earlier record stands.  The append is
        durable (fsynced) before the in-memory index is updated, so an
        acknowledged commit can never be lost, and a lost commit is
        never acknowledged.
        """
        if self.is_done(job.job_id):
            obs.count("fabric.duplicates_rejected")
            obs.event(
                "fabric.duplicate_completion",
                job_id=job.job_id,
                kind=job.kind,
            )
            return False
        record = {
            "type": "commit",
            "job_id": job.job_id,
            "kind": job.kind,
            "content_key": job.content_key,
            "config_digest": job.config_digest,
            "result": result,
        }
        self._append(record)
        self._committed[job.job_id] = record
        obs.count("fabric.commits")
        return True

    def record_quarantine(
        self,
        job: Job,
        attempts: int,
        errors: List[dict],
        artifact: Optional[str] = None,
    ) -> bool:
        """Durably mark a job as poison; resumed campaigns skip it."""
        if self.is_done(job.job_id):
            return False
        record = {
            "type": "quarantine",
            "job_id": job.job_id,
            "kind": job.kind,
            "content_key": job.content_key,
            "config_digest": job.config_digest,
            "attempts": attempts,
            "errors": errors,
            "artifact": artifact,
        }
        self._append(record)
        self._quarantined[job.job_id] = record
        obs.count("fabric.quarantined")
        return True

    def recover_append(self) -> None:
        """Realign the journal after a failed append, before a retry.

        A failed :meth:`commit` (ENOSPC, EIO) may have written a partial
        line; appending the retry directly after it would weld two
        records into one corrupt line.  This closes the handle and
        repairs the tail to a line boundary — the partial fragment
        becomes its own undecodable line, which replay skips.  Safe to
        call even when nothing was written.
        """
        self.close()
        repair_jsonl_tail(self.path)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
