"""Evidence packs: a campaign's artifacts under one SHA-256 manifest.

A reviewer handed a results table has to take it on faith; a reviewer
handed an *evidence pack* does not.  ``build_pack`` collects everything
a fabric campaign produced — the journal (durable truth), the verified
result-store entries behind its commits, quarantine artifacts for its
poison jobs, and any extra files the operator names (traces, BENCH
outputs, netlists) — into one directory, then writes a manifest mapping
every file to its SHA-256 digest and byte size.  ``verify_pack``
re-hashes the directory against the manifest and reports every
mismatched, missing, or *unlisted* file, so any post-hoc tampering —
edits, deletions, additions — is detectable offline with nothing but
the pack itself.

The manifest is written **last**, atomically: a crash mid-build leaves
a pack without a manifest, which verifies as invalid — never a manifest
vouching for files that are not there.  Files are copied byte-for-byte
(hashes are taken from the copies), so the pack stands alone even after
the source journal or store moves on.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .. import ioutil
from .store import ResultStore, producer_fingerprint
from .supervisor import quarantine_dir_for

__all__ = [
    "MANIFEST_NAME",
    "PACK_SCHEMA",
    "PackReport",
    "build_pack",
    "verify_pack",
]

#: Pack manifest format identifier.
PACK_SCHEMA = "evidence-pack/1"

#: The manifest's file name inside a pack.
MANIFEST_NAME = "MANIFEST.json"

_CHUNK = 1 << 20


def _sha256_file(path: Path) -> Tuple[str, int]:
    h = hashlib.sha256()
    size = 0
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
            size += len(chunk)
    return h.hexdigest(), size


def _copy_into(
    source: Path, target: Path, files: Dict[str, dict], root: Path
) -> None:
    """Copy one file, record its digest under its pack-relative path."""
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(source, target)
    digest, size = _sha256_file(target)
    files[target.relative_to(root).as_posix()] = {
        "sha256": digest,
        "bytes": size,
    }


def _unique_name(directory: Path, name: str) -> Path:
    """A non-colliding target path for an extra file."""
    target = directory / name
    n = 0
    while target.exists():
        n += 1
        target = directory / f"{Path(name).stem}.{n}{Path(name).suffix}"
    return target


def build_pack(
    journal_path: Union[str, Path],
    out_dir: Union[str, Path],
    store: Union[str, Path, ResultStore, None] = None,
    include: Iterable[Union[str, Path]] = (),
) -> dict:
    """Assemble an evidence pack; return the manifest that was written.

    Parameters
    ----------
    journal_path:
        The campaign journal.  Copied verbatim (its hash covers torn
        lines too — they are evidence) and parsed read-only to learn
        which jobs committed and which were quarantined.
    out_dir:
        Target directory; must not already contain files.
    store:
        Optional result store (path or instance).  Every committed
        job's entry that passes integrity verification is copied into
        the pack; corrupt or missing entries are counted in the
        manifest (``counts.store_skipped``), never silently vouched for.
    include:
        Extra files or directories (traces, BENCH artifacts, netlists)
        copied under ``extra/``.
    """
    journal_path = Path(journal_path)
    if not journal_path.is_file():
        raise FileNotFoundError(f"journal not found: {journal_path}")
    out = Path(out_dir)
    if out.exists() and any(out.iterdir()):
        raise FileExistsError(
            f"evidence pack target {out} is not empty; refusing to mix "
            f"packs"
        )
    out.mkdir(parents=True, exist_ok=True)
    files: Dict[str, dict] = {}

    _copy_into(journal_path, out / "journal" / journal_path.name, files, out)
    records, _good, bad = ioutil.read_jsonl_tolerant(journal_path)
    commits = [
        r
        for r in records
        if r.get("type") == "commit" and isinstance(r.get("job_id"), str)
    ]
    quarantines = [
        r
        for r in records
        if r.get("type") == "quarantine"
        and isinstance(r.get("job_id"), str)
    ]

    # Quarantine artifacts: the replayable remains of every poison job.
    qdir = quarantine_dir_for(journal_path)
    quarantine_files = 0
    if qdir.is_dir():
        for source in sorted(p for p in qdir.rglob("*") if p.is_file()):
            rel = source.relative_to(qdir)
            _copy_into(source, out / "quarantine" / rel, files, out)
            quarantine_files += 1

    # Store entries behind the commits — verified before inclusion; a
    # pack must never vouch for an entry the store itself would reject.
    store_entries = 0
    store_skipped = 0
    if store is not None:
        cas = store if isinstance(store, ResultStore) else ResultStore(store)
        for record in commits:
            job_id = str(record["job_id"])
            entry = cas.entry_path(job_id)
            if not entry.is_file():
                store_skipped += 1
                continue
            verified, _why = ResultStore._load_verified(entry, job_id)
            if verified is None:
                store_skipped += 1
                continue
            _copy_into(entry, out / "store" / entry.name, files, out)
            store_entries += 1

    # Operator-named extras: traces, BENCH outputs, whatever closes the
    # loop for this campaign.  Directories are taken whole.
    extra_files = 0
    for item in include:
        source = Path(item)
        if source.is_dir():
            for sub in sorted(p for p in source.rglob("*") if p.is_file()):
                rel = Path(source.name) / sub.relative_to(source)
                _copy_into(sub, out / "extra" / rel, files, out)
                extra_files += 1
        elif source.is_file():
            target = _unique_name(out / "extra", source.name)
            _copy_into(source, target, files, out)
            extra_files += 1
        else:
            raise FileNotFoundError(f"include target not found: {source}")

    manifest = {
        "schema": PACK_SCHEMA,
        "journal": journal_path.name,
        "files": dict(sorted(files.items())),
        "counts": {
            "files": len(files),
            "bytes": sum(int(f["bytes"]) for f in files.values()),
            "commits": len(commits),
            "quarantined": len(quarantines),
            "torn_lines": len(bad),
            "quarantine_files": quarantine_files,
            "store_entries": store_entries,
            "store_skipped": store_skipped,
            "extra_files": extra_files,
        },
        "producer": producer_fingerprint(),
    }
    # Written last, atomically: no manifest ever names a file that was
    # not fully copied first.
    ioutil.atomic_write_json(out / MANIFEST_NAME, manifest)
    return manifest


@dataclass
class PackReport:
    """Outcome of :func:`verify_pack` — empty lists mean a clean pack."""

    pack: str
    checked: int = 0
    #: Files whose bytes no longer hash to the manifest's digest.
    mismatched: List[str] = field(default_factory=list)
    #: Files the manifest names that are gone from disk.
    missing: List[str] = field(default_factory=list)
    #: Files on disk the manifest never vouched for (additions are
    #: tampering too: an unlisted file could shadow a listed one).
    unlisted: List[str] = field(default_factory=list)
    #: Structural problems (no manifest, unreadable manifest, ...).
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.mismatched or self.missing or self.unlisted or self.problems
        )

    def to_dict(self) -> dict:
        return {
            "pack": self.pack,
            "ok": self.ok,
            "checked": self.checked,
            "mismatched": list(self.mismatched),
            "missing": list(self.missing),
            "unlisted": list(self.unlisted),
            "problems": list(self.problems),
        }

    def describe(self) -> str:
        lines = [f"evidence pack  {self.pack}"]
        lines.append(f"  files checked  {self.checked}")
        if self.ok:
            lines.append("  integrity      OK (every hash matches)")
            return "\n".join(lines)
        for label, paths in (
            ("mismatched", self.mismatched),
            ("missing", self.missing),
            ("unlisted", self.unlisted),
        ):
            for path in paths:
                lines.append(f"  {label:<14} {path}")
        for problem in self.problems:
            lines.append(f"  problem        {problem}")
        return "\n".join(lines)


def verify_pack(pack_dir: Union[str, Path]) -> PackReport:
    """Re-hash a pack against its manifest; report every discrepancy.

    Checks all three tampering directions: modified files (digest
    mismatch), deleted files (in the manifest, not on disk), and added
    files (on disk, not in the manifest).  Exit-code mapping is the
    CLI's job; this returns the full report either way.
    """
    pack = Path(pack_dir)
    report = PackReport(pack=str(pack))
    manifest_path = pack / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        report.problems.append(f"no {MANIFEST_NAME} in {pack}")
        return report
    except (OSError, ValueError) as exc:
        report.problems.append(f"unreadable manifest: {exc}")
        return report
    if (
        not isinstance(manifest, dict)
        or manifest.get("schema") != PACK_SCHEMA
        or not isinstance(manifest.get("files"), dict)
    ):
        report.problems.append(
            f"manifest is not an {PACK_SCHEMA} manifest"
        )
        return report
    listed: Dict[str, dict] = manifest["files"]
    for rel in sorted(listed):
        expected = listed[rel]
        path = pack / Path(rel)
        if not path.is_file():
            report.missing.append(rel)
            continue
        digest, size = _sha256_file(path)
        report.checked += 1
        if digest != expected.get("sha256") or size != expected.get("bytes"):
            report.mismatched.append(rel)
    on_disk = {
        p.relative_to(pack).as_posix()
        for p in pack.rglob("*")
        if p.is_file()
    }
    on_disk.discard(MANIFEST_NAME)
    report.unlisted.extend(sorted(on_disk - set(listed)))
    return report


def pack_status_line(manifest: dict) -> str:
    """One human line summarizing a freshly built pack."""
    counts = manifest.get("counts", {})
    return (
        f"packed {counts.get('files', 0)} files "
        f"({counts.get('bytes', 0)} bytes): "
        f"{counts.get('commits', 0)} commits, "
        f"{counts.get('store_entries', 0)} store entries, "
        f"{counts.get('quarantine_files', 0)} quarantine files, "
        f"{counts.get('extra_files', 0)} extras"
    )
