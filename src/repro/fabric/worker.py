"""Worker-process side of the fabric: execute one leased job, loudly.

Workers are deliberately thin: all durable state (journal, queue,
retry/quarantine decisions) lives in the supervisor.  A worker's whole
contract is

1. *prove liveness* — a daemon heartbeat thread beats the supervisor's
   queue every ``heartbeat_interval_s`` while a job is executing, which
   is what keeps the job's lease alive.  A worker that dies or stalls
   stops beating; the lease expires; the supervisor re-dispatches.  The
   beat is a token (job id + pid) — the supervisor stamps arrival with
   its own clock, so nothing depends on clock sync between processes;
2. *execute and return data* — the job payload is dispatched by
   ``kind`` to a registered executor (sweep circuits, experiment
   tables) that returns a plain JSON-able dict.  Executors are expected
   to convert *domain* failures (parse errors, budget exhaustion) into
   result records themselves — an exception escaping the executor is a
   fabric-level failure and triggers the supervisor's retry/quarantine
   machinery;
3. *carry telemetry* — counter deltas emitted during the job are
   captured through a job-local recorder and shipped back beside the
   result, exactly as the parallel fan-out's chunks do, so worker-side
   activity lands attributed in the parent trace.

Chaos (:class:`~repro.resilience.chaos.FabricChaosSpec`) hooks in right
before execution: ``crash`` hard-kills the process mid-lease, ``stall``
suppresses the heartbeat and sleeps past lease expiry (then *returns its
result anyway*, late — exercising the exactly-once commit gate),
``corrupt`` returns a malformed payload, ``spurious`` raises.
"""

from __future__ import annotations

import os
import threading
import time
from time import perf_counter
from typing import Dict, Optional, Tuple

from .. import obs
from ..resilience.chaos import FabricChaosSpec

__all__ = ["execute_job", "init_fabric_worker"]

_WORKER_STATE: Optional[Dict[str, object]] = None


def init_fabric_worker(
    heartbeat_queue,
    heartbeat_interval_s: float,
    chaos: Optional[FabricChaosSpec],
    run_id: Optional[str],
) -> None:
    """Pool initializer: prime one worker process.

    ``heartbeat_queue`` is a manager-proxy queue (picklable); ``None``
    disables beating (the supervisor then treats the lease window as a
    hard per-attempt deadline instead of a liveness window).
    """
    global _WORKER_STATE
    # The parent's recorder (file handles, span stacks) must not be
    # inherited into forked workers — concurrent writes would interleave.
    obs.set_recorder(None)
    _WORKER_STATE = {
        "heartbeat_queue": heartbeat_queue,
        "heartbeat_interval_s": heartbeat_interval_s,
        "chaos": chaos,
        "run_id": run_id,
    }


def _dispatch(kind: str, payload: Dict[str, object]) -> dict:
    """Route a payload to its executor by job kind.

    Imports are lazy to keep worker startup cheap and to avoid circular
    imports (the executors' home modules import the fabric drivers).
    """
    if kind == "sweep_circuit":
        from ..analysis.experiments import execute_sweep_job

        return execute_sweep_job(payload)
    if kind == "experiment":
        from ..analysis.experiments import execute_experiment_job

        return execute_experiment_job(payload)
    raise ValueError(f"unknown fabric job kind {kind!r}")


class _HeartbeatThread:
    """Daemon thread beating the supervisor while a job executes."""

    def __init__(self, queue, job_id: str, interval_s: float) -> None:
        self._queue = queue
        self._job_id = job_id
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_HeartbeatThread":
        if self._queue is None:
            return self
        self._beat()  # immediate: the lease clock starts fresh at grant
        self._thread = threading.Thread(
            target=self._run, name="fabric-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._interval_s * 2)
        return False

    def _beat(self) -> None:
        try:
            self._queue.put_nowait((self._job_id, os.getpid()))
        except Exception:
            # A full/broken queue must never fail the job; the lease
            # window simply shrinks to its last successful beat.
            pass

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self._beat()


def execute_job(
    task: Tuple[dict, int, int],
) -> Tuple[str, str, Optional[dict], Optional[dict]]:
    """Execute one leased job; returns a picklable payload.

    ``task`` is ``(job_dict, job_index, attempt)``.  Success payload:
    ``("ok", job_id, result, telem)``.  Executor-escaping exceptions
    become ``("error", job_id, {type, message}, telem)`` — structured,
    because arbitrary exceptions don't survive pickling and the
    supervisor needs the error history for quarantine artifacts.
    """
    job_dict, job_index, attempt = task
    state = _WORKER_STATE
    assert state is not None, "fabric worker used before initialization"
    job_id = str(job_dict["job_id"])
    chaos: Optional[FabricChaosSpec] = state.get("chaos")  # type: ignore[assignment]
    action = chaos.action(job_index, attempt) if chaos is not None else None
    if action == "crash":
        os._exit(17)  # a hard worker death mid-lease, not an exception
    if action == "spurious":
        raise RuntimeError(
            f"chaos: spurious worker exception for job {job_id[:12]} "
            f"attempt {attempt}"
        )
    heartbeat_queue = state.get("heartbeat_queue")
    if action == "stall":
        # A stalled worker: no heartbeats, sleep past lease expiry, then
        # compute and return a *late* result — the supervisor's
        # exactly-once gate must reject it if the retry already landed.
        heartbeat_queue = None
        time.sleep(chaos.stall_seconds)
    capture = obs.RunRecorder(None)
    previous = obs.set_recorder(capture)
    start = perf_counter()
    try:
        with _HeartbeatThread(
            heartbeat_queue,
            job_id,
            float(state["heartbeat_interval_s"]),  # type: ignore[arg-type]
        ):
            try:
                result = _dispatch(
                    str(job_dict["kind"]),
                    dict(job_dict.get("payload") or {}),
                )
            except Exception as exc:
                telem = _telemetry(state, capture, attempt, start)
                return (
                    "error",
                    job_id,
                    {"type": type(exc).__name__, "message": str(exc)[:500]},
                    telem,
                )
    finally:
        obs.set_recorder(previous)
    telem = _telemetry(state, capture, attempt, start)
    if action == "corrupt":
        # A torn payload: the result is silently replaced by garbage.
        # The supervisor's shape validation must reject and retry.
        return ("ok", job_id, None, telem)  # type: ignore[return-value]
    if not isinstance(result, dict):
        return (
            "error",
            job_id,
            {
                "type": "TypeError",
                "message": f"executor returned {type(result).__name__}, "
                f"not a result dict",
            },
            telem,
        )
    return ("ok", job_id, result, telem)


def _telemetry(
    state: Dict[str, object], capture, attempt: int, start: float
) -> dict:
    return {
        "pid": os.getpid(),
        "run_id": state.get("run_id"),
        "attempt": attempt,
        "in_parent": False,
        "seconds": round(perf_counter() - start, 6),
        "counters": capture.metrics.snapshot()["counters"],
    }
