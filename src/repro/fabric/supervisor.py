"""The fabric supervisor: leased jobs over a process pool, exactly once.

:class:`FabricSupervisor` is the conductor that ties the fabric's three
dumb parts into one fault-tolerant machine:

* the :class:`~repro.fabric.queue.WorkQueue` owns the campaign state
  machine (pending → leased → done/quarantined, attempts, lease expiry);
* the :class:`~repro.fabric.journal.ResultJournal` owns durable truth
  (exactly-once commits, quarantine records, crash recovery);
* :func:`~repro.fabric.worker.execute_job` owns computation in worker
  processes (heartbeats, structured errors, telemetry capture).

The supervisor's loop is the only place policy lives, and it is the
direct descendant of the parallel fan-out's ``_fan_out``:

1. **lease & dispatch** — lease pending jobs (campaign order) up to the
   pool width; leases start ticking at submission, and since in-flight
   futures never exceed the worker count, a submitted job starts
   executing (and heartbeating) immediately;
2. **drain heartbeats** — workers beat a manager queue; the supervisor
   stamps each beat's *arrival* with its own monotonic clock, so lease
   liveness never depends on clock sync between processes;
3. **settle results** — payloads are shape-validated, committed through
   the journal's exactly-once gate (duplicates and late results from
   expired leases lose, loudly), and the winner's worker telemetry is
   merged into the parent trace exactly once;
4. **expire leases** — a lease with no beat inside the liveness window
   is declared dead: the attempt fails, and the job is re-dispatched —
   to the pool when a slot is free, or *in the parent* when the pool is
   clogged with stalled workers (liveness must never depend on the very
   substrate being doubted);
5. **break the circuit** — :class:`BrokenProcessPool` earns one respawn;
   cascading failures trip the :class:`~repro.resilience.breaker.\
CircuitBreaker` and the remaining campaign drains serially in-process,
   which cannot cascade;
6. **quarantine poison** — a job that fails ``max_attempts`` times is
   recorded durably (journal record + repro-bundle-style artifact dir
   with its payload and full error history) so resumed campaigns never
   retry it.

Every path lands in the same journal through the same commit gate, which
is the whole bit-identity argument: *what* is computed is fixed by the
job's content-addressed payload, and *that it is recorded once* is fixed
by the gate — so crash, stall, duplicate, respawn, and degrade can only
change scheduling, never results.
"""

from __future__ import annotations

import errno
import json
import random
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .. import ioutil, obs
from ..errors import ArtifactWriteError, SweepInterrupted
from ..resilience.breaker import CircuitBreaker
from ..resilience.chaos import FabricChaosSpec
from ..resilience.interrupt import GracefulInterrupt
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .jobs import Job
from .journal import ResultJournal
from .queue import Lease, WorkQueue
from .store import ResultStore
from .worker import execute_job, init_fabric_worker

__all__ = ["FabricSupervisor", "quarantine_dir_for"]

#: Upper bound on one wait() slice: keeps heartbeat stamping and expiry
#: scanning responsive even when every lease is far from expiring.
_MAX_WAIT_SLICE_S = 0.25

#: Journal-append retries (ENOSPC, EIO) before the supervisor gives up
#: and lets the error propagate — durability failures are not hidable.
_JOURNAL_APPEND_ATTEMPTS = 3

#: Chaos actions that strike the result store (supervisor-side, after the
#: journal commit); workers check actions by name and ignore these.
_STORE_CHAOS_ACTIONS = (
    "store_torn",
    "store_bitflip",
    "store_stale",
    "store_double",
)


def quarantine_dir_for(journal_path: Path) -> Path:
    """Where a journal's poison-job artifacts live (sibling directory)."""
    return journal_path.with_name(journal_path.name + ".quarantine")


class FabricSupervisor:
    """Run a campaign of content-addressed jobs to exactly-once commits.

    Parameters
    ----------
    journal:
        The campaign's durable result log (already replayed if resuming).
    workers:
        Pool width; ``<= 1`` runs the whole campaign serially in-process
        (the fabric still provides dedup, journaling, and quarantine).
    lease_timeout_s:
        Liveness window per lease; heartbeats extend it.
    heartbeat_interval_s:
        Worker beat period; defaults to a quarter of the lease window so
        a live worker has four chances per window.
    max_attempts:
        Tries per job before quarantine.
    retry_policy:
        Backoff between re-dispatches *and* between journal-append
        retries; defaults to the shared policy with deterministic jitter.
    chaos:
        Optional fault injection (worker death, stalls, corruption,
        ENOSPC, duplicate completions) for tests and chaos campaigns.
    breaker:
        Circuit breaker; a fresh default is created when omitted.
    interrupt:
        Optional :class:`GracefulInterrupt`; when it reports a signal the
        supervisor stops leasing, shuts the pool down, and raises
        :class:`SweepInterrupted` with the journal already durable.
    store:
        Optional cross-campaign :class:`~repro.fabric.store.ResultStore`.
        When given, jobs not already in this journal are looked up in the
        store before dispatch (a verified hit commits without
        recomputation), and every fresh commit is published back exactly
        once.  The campaign holds a store lease over its job ids for its
        whole run, so concurrent ``store-gc`` cannot evict its entries.
    store_verify_fraction:
        Seeded fraction of store hits that are re-executed in-process and
        compared bit-exact against the cached result (via
        :class:`~repro.verify.Guard`); a mismatch raises
        :class:`~repro.errors.DivergenceError` — cache poisoning fails
        the campaign loudly instead of contaminating results.
    store_verify_seed:
        Seed of the per-job verification draw (a pure function of seed
        and job id, so the audited subset is order-independent).
    """

    def __init__(
        self,
        journal: ResultJournal,
        workers: int = 2,
        lease_timeout_s: float = 30.0,
        heartbeat_interval_s: Optional[float] = None,
        max_attempts: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        chaos: Optional[FabricChaosSpec] = None,
        breaker: Optional[CircuitBreaker] = None,
        interrupt: Optional[GracefulInterrupt] = None,
        store: Optional[ResultStore] = None,
        store_verify_fraction: float = 0.0,
        store_verify_seed: int = 0,
    ) -> None:
        self.journal = journal
        self.workers = max(1, int(workers))
        self.lease_timeout_s = float(lease_timeout_s)
        self.heartbeat_interval_s = (
            float(heartbeat_interval_s)
            if heartbeat_interval_s is not None
            else max(0.05, self.lease_timeout_s / 4.0)
        )
        self.max_attempts = int(max_attempts)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else DEFAULT_RETRY_POLICY.replaced(
                max_attempts=max_attempts, jitter=0.1
            )
        )
        self.chaos = chaos
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.interrupt = interrupt
        self.store = store
        self.store_verify_fraction = float(store_verify_fraction)
        self.store_verify_seed = int(store_verify_seed)
        if not 0.0 <= self.store_verify_fraction <= 1.0:
            raise ValueError("store_verify_fraction must lie in [0, 1]")
        self.stats: Dict[str, int] = {
            "jobs": 0,
            "cached": 0,
            "committed": 0,
            "retries": 0,
            "expired": 0,
            "quarantined": 0,
            "duplicates": 0,
            "pool_breaks": 0,
            "parent_runs": 0,
            "store_hits": 0,
            "store_misses": 0,
            "store_verified": 0,
        }
        self._errors: Dict[str, List[dict]] = {}
        self._enospc_armed: set = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[Job]) -> Dict[str, Optional[dict]]:
        """Drive every job to a terminal state; return committed results.

        The mapping covers every requested job id: committed jobs map to
        their result dict, quarantined jobs to ``None``.  Results cached
        in the journal from a previous run (resume, dedup) are returned
        without recomputation.
        """
        queue = WorkQueue(
            lease_timeout_s=self.lease_timeout_s,
            max_attempts=self.max_attempts,
        )
        requested: List[str] = []
        for job in jobs:
            requested.append(job.job_id)
            queue.add(job)
        self.stats["jobs"] = len(queue.job_ids())  # distinct after dedup
        for job_id in queue.job_ids():
            if job_id in self.journal.committed:
                queue.mark_done(job_id, "committed")
                self.stats["cached"] += 1
                obs.count("fabric.cache_hits")
            elif job_id in self.journal.quarantined:
                queue.mark_done(job_id, "quarantined")
                self.stats["cached"] += 1
        store_lease = None
        if self.store is not None:
            # The lease pins this campaign's working set against a
            # concurrent store-gc for the whole run, hits and misses
            # alike (a miss becomes an entry the moment it commits).
            store_lease = self.store.acquire_lease(queue.job_ids())
        try:
            if self.store is not None and queue.unfinished:
                self._resolve_from_store(queue)
            self._drive(queue)
        finally:
            if store_lease is not None:
                store_lease.release()
            if self.store is not None:
                self.store.persist_stats()
        return {
            job_id: self.journal.result_for(job_id) for job_id in requested
        }

    def _drive(self, queue: WorkQueue) -> None:
        with obs.span(
            "fabric.run",
            jobs=self.stats["jobs"],
            cached=self.stats["cached"],
            workers=self.workers,
        ):
            obs.event(
                "fabric.campaign_start",
                jobs=self.stats["jobs"],
                cached=self.stats["cached"],
                workers=self.workers,
                lease_timeout_s=self.lease_timeout_s,
                chaos=self.chaos is not None,
            )
            if queue.unfinished:
                if self.workers <= 1 or self.breaker.tripped:
                    self._drain_serial(queue)
                else:
                    self._run_pool(queue)
            obs.event(
                "fabric.campaign_end",
                **{k: v for k, v in self.stats.items()},
                breaker_tripped=self.breaker.tripped,
            )

    # ------------------------------------------------------------------
    # Result-store integration
    # ------------------------------------------------------------------
    def _resolve_from_store(self, queue: WorkQueue) -> None:
        """Settle every job the store can vouch for, before any dispatch.

        A verified store hit commits through the same journal gate as a
        computed result — bit-identity and exactly-once hold regardless
        of which campaign originally computed the value.  Corrupt
        entries were already quarantined (and counted) by the store's
        own read path; they surface here as misses and recompute.
        """
        for job_id in queue.job_ids():
            if self.journal.is_done(job_id):
                continue
            job = queue.job(job_id)
            record = self.store.get(job_id)
            if record is None:
                self.stats["store_misses"] += 1
                continue
            cached = record.get("result")
            verified = False
            if self._store_verify_due(job_id):
                if not self._verify_store_hit(job, cached):
                    # Could not re-execute (not a mismatch — that
                    # raises): fall through to normal dispatch.
                    self.stats["store_misses"] += 1
                    continue
                verified = True
                self.stats["store_verified"] += 1
            self._commit_durable(job, cached, attempt=0)
            queue.mark_done(job_id, "committed")
            self.stats["store_hits"] += 1
            obs.event(
                "fabric.store.hit_committed",
                job=job.describe(),
                verified=verified,
            )

    def _store_verify_due(self, job_id: str) -> bool:
        """Seeded, order-independent audit draw for one store hit."""
        if self.store_verify_fraction >= 1.0:
            return True
        if self.store_verify_fraction <= 0.0:
            return False
        roll = random.Random(
            f"store-verify:{self.store_verify_seed}:{job_id}"
        ).random()
        return roll < self.store_verify_fraction

    def _verify_store_hit(self, job: Job, cached: object) -> bool:
        """Re-execute one hit and compare bit-exact; raise on mismatch.

        Returns False when the re-execution itself errors (the hit is
        then treated as a miss and dispatched normally); a successful
        re-execution that *disagrees* with the cached result raises
        :class:`~repro.errors.DivergenceError` through the Guard, with a
        repro bundle when the job's circuit can be reloaded.
        """
        from ..verify import Guard
        from .worker import _dispatch

        capture = obs.RunRecorder(None)
        previous = obs.set_recorder(capture)
        try:
            recomputed = _dispatch(job.kind, dict(job.payload))
        except Exception as exc:
            obs.event(
                "fabric.store.verify_error",
                job=job.describe(),
                error=type(exc).__name__,
                message=str(exc)[:200],
            )
            return False
        finally:
            obs.set_recorder(previous)
        # Same normalization the store applied before digesting: the
        # comparison must see exactly what a JSON reader would.
        recomputed = json.loads(json.dumps(recomputed))
        obs.count("fabric.store.verifications")
        guard = Guard(fraction=1.0, certify=False)
        guard.confirm(
            "fabric.store_hit",
            expected=recomputed,
            actual=cached,
            circuit=self._bundle_circuit(job),
            context={
                "job": job.describe(),
                "store": str(self.store.root),
                "entry": str(self.store.entry_path(job.job_id)),
            },
            sources={
                "expected": "re-executed in supervisor",
                "actual": "result-store entry",
            },
            message=(
                "stored result differs from bit-exact re-execution "
                "(cache poisoning or nondeterministic executor)"
            ),
        )
        return True

    def _bundle_circuit(self, job: Job):
        """Best-effort circuit reload for divergence repro bundles."""
        path = dict(job.payload).get("path")
        if not path:
            return None
        try:
            from ..analysis.experiments import _load_netlist_file

            return _load_netlist_file(Path(str(path)))
        except Exception:
            return None

    def _publish_store(self, job: Job, result: dict, attempt: int) -> None:
        """Publish one fresh commit to the store (exactly once, then chaos).

        Called only from the winning commit in :meth:`_settle_ok` —
        store hits settle in :meth:`_resolve_from_store` and never
        republish, and :meth:`~repro.fabric.store.ResultStore.put` is
        first-write-wins besides.  A store write failure is logged and
        swallowed: the journal is the campaign's durable truth, the
        store is an accelerator.
        """
        try:
            self.store.put(job, result)
        except (ArtifactWriteError, OSError) as exc:
            obs.event(
                "fabric.store.publish_failed",
                job=job.describe(),
                error=type(exc).__name__,
            )
            return
        action = (
            self.chaos.action(job.index, attempt)
            if self.chaos is not None
            else None
        )
        if action in _STORE_CHAOS_ACTIONS:
            self._inflict_store_chaos(action, job, result)

    def _inflict_store_chaos(
        self, action: str, job: Job, result: dict
    ) -> None:
        """Damage the just-published entry the way real storage would."""
        path = self.store.entry_path(job.job_id)
        if action == "store_double":
            # A racing second publish: first write must win, silently.
            again = self.store.put(job, result)
            assert not again, "store accepted a second publish"
        elif path.exists():
            if action == "store_torn":
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            elif action == "store_stale":
                record = json.loads(path.read_text(encoding="utf-8"))
                record["schema"] = "fabric-store/0"
                ioutil.atomic_write_json(path, record)
            elif action == "store_bitflip":
                data = bytearray(path.read_bytes())
                rng = random.Random(f"store-bitflip:{job.job_id}")
                while True:
                    # Keep flipping until the envelope actually rejects
                    # the entry — a flip inside e.g. the producer block
                    # can leave a still-valid record.
                    data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
                    path.write_bytes(bytes(data))
                    rec, _why = ResultStore._load_verified(path, job.job_id)
                    if rec is None:
                        break
        obs.event(
            "fabric.store.chaos", action=action, job=job.describe()
        )

    # ------------------------------------------------------------------
    # Pool mode
    # ------------------------------------------------------------------
    def _run_pool(self, queue: WorkQueue) -> None:
        hb_queue, manager = self._make_heartbeat_queue()
        pool = self._make_pool(queue, hb_queue)
        if pool is None:
            # Could not even start a pool (fork forbidden, manager dead):
            # that is a substrate failure, not a campaign failure.
            self.breaker.record_pool_break()
            self._drain_serial(queue)
            if manager is not None:
                manager.shutdown()
            return
        beat = obs.Heartbeat("fabric")
        # fut -> (job_id, attempt); ``current`` marks the fut that holds
        # the live claim on a job (late futs from expired leases stay in
        # ``pending`` so their results can still reach the commit gate).
        pending: Dict[Future, Tuple[str, int]] = {}
        current: Dict[str, Future] = {}
        try:
            while queue.unfinished:
                self._check_interrupt(queue, pool, pending)
                now = time.monotonic()
                # Lease & dispatch up to pool width.  len(pending) counts
                # every outstanding fut — including stalled ones whose
                # lease already expired — so a clogged pool stops being
                # offered new work instead of queueing jobs whose lease
                # clock would tick before execution starts.
                while len(pending) < self.workers:
                    lease = queue.lease_next(now)
                    if lease is None:
                        break
                    try:
                        fut = pool.submit(
                            execute_job,
                            (
                                lease.job.to_dict(),
                                lease.job.index,
                                lease.attempt,
                            ),
                        )
                    except BrokenProcessPool:
                        queue.release(lease)
                        pool = self._handle_broken(
                            queue, pool, hb_queue, pending, current
                        )
                        if pool is None:
                            return
                        break
                    pending[fut] = (lease.job.job_id, lease.attempt)
                    current[lease.job.job_id] = fut
                    obs.count("fabric.dispatches")
                if not pending:
                    if queue.unfinished:
                        # Nothing in flight yet work remains: every job is
                        # waiting on backoff/quarantine bookkeeping; the
                        # expiry scan below will make progress.
                        time.sleep(0.01)
                    self._drain_heartbeats(queue, hb_queue)
                    self._expire_leases(queue, pending, current)
                    continue
                done, _ = wait(
                    list(pending),
                    timeout=self._wait_slice(queue),
                    return_when=FIRST_COMPLETED,
                )
                self._drain_heartbeats(queue, hb_queue)
                broken = False
                for fut in done:
                    job_id, attempt = pending.pop(fut)
                    is_current = current.get(job_id) is fut
                    if is_current:
                        current.pop(job_id)
                    exc = fut.exception()
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        if is_current:
                            # Keep the claim visible so _handle_broken
                            # fails (and re-pends) this job; otherwise
                            # its lease would orphan until expiry.
                            current[job_id] = fut
                        continue
                    if exc is not None:
                        # Worker died mid-job (chaos crash, OOM kill):
                        # the pool surfaces it as BrokenProcessPool on
                        # *all* futures; anything else is a pickling or
                        # dispatch failure local to this job.
                        if is_current:
                            self._fail(
                                queue,
                                job_id,
                                {
                                    "type": type(exc).__name__,
                                    "message": str(exc)[:500],
                                },
                            )
                        continue
                    self._settle_payload(
                        queue, job_id, attempt, fut.result(), is_current
                    )
                if broken:
                    pool = self._handle_broken(
                        queue, pool, hb_queue, pending, current
                    )
                    if pool is None:
                        return
                    continue
                self._drain_heartbeats(queue, hb_queue)
                self._expire_leases(queue, pending, current)
                if (
                    queue.n_pending
                    and queue.n_leased == 0
                    and len(pending) >= self.workers
                ):
                    # Every pool slot is held by a zombie fut (stalled
                    # worker whose lease already expired and settled):
                    # pending work would wait forever for a slot.  The
                    # parent executes it — liveness over parallelism.
                    lease = queue.lease_next(time.monotonic())
                    if lease is not None:
                        self._run_in_parent(queue, lease)
                beat.beat(
                    fabric_done=queue.n_done,
                    fabric_pending=queue.n_pending,
                    fabric_leased=queue.n_leased,
                )
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if manager is not None:
                manager.shutdown()

    def _wait_slice(self, queue: WorkQueue) -> float:
        """How long one wait() may block without starving the scans."""
        slice_s = _MAX_WAIT_SLICE_S
        expiry = queue.next_expiry()
        if expiry is not None:
            slice_s = min(slice_s, max(0.01, expiry - time.monotonic()))
        return slice_s

    def _make_heartbeat_queue(self):
        """A manager-proxy queue (picklable through initargs), or None."""
        try:
            import multiprocessing

            manager = multiprocessing.Manager()
            return manager.Queue(), manager
        except Exception as exc:  # sandboxes may forbid the manager's socket
            obs.event(
                "fabric.no_heartbeat_channel",
                error=type(exc).__name__,
            )
            return None, None

    def _make_pool(
        self, queue: WorkQueue, hb_queue
    ) -> Optional[ProcessPoolExecutor]:
        try:
            import os

            try:
                usable = len(os.sched_getaffinity(0))
            except AttributeError:  # platforms without affinity support
                usable = os.cpu_count() or 1
            width = max(1, min(self.workers, usable, queue.unfinished))
            pool = ProcessPoolExecutor(
                max_workers=width,
                initializer=init_fabric_worker,
                initargs=(
                    hb_queue,
                    self.heartbeat_interval_s,
                    self.chaos,
                    self._run_id(),
                ),
            )
            self.workers = width
            return pool
        except Exception as exc:
            obs.event("fabric.pool_unavailable", error=type(exc).__name__)
            return None

    @staticmethod
    def _run_id() -> Optional[str]:
        recorder = obs.get_recorder()
        return recorder.run_id if recorder is not None else None

    def _drain_heartbeats(self, queue: WorkQueue, hb_queue) -> None:
        if hb_queue is None:
            return
        now = time.monotonic()
        while True:
            try:
                job_id, _pid = hb_queue.get_nowait()
            except Exception:  # Empty, or a manager mid-shutdown
                return
            if queue.heartbeat(str(job_id), now):
                obs.count("fabric.heartbeats")

    def _expire_leases(
        self,
        queue: WorkQueue,
        pending: Dict[Future, Tuple[str, int]],
        current: Dict[str, Future],
    ) -> None:
        now = time.monotonic()
        for lease in queue.expired(now):
            job_id = lease.job.job_id
            self.stats["expired"] += 1
            obs.count("fabric.lease_expired")
            obs.event(
                "fabric.lease_expired",
                job=lease.job.describe(),
                attempt=lease.attempt,
                heartbeats=lease.heartbeats,
            )
            # The stalled fut loses its claim but stays in ``pending``:
            # if the worker eventually answers, the payload is offered to
            # the commit gate (and loses if the re-dispatch landed first).
            stalled = current.pop(job_id, None)
            self._fail(
                queue,
                job_id,
                {
                    "type": "LeaseExpired",
                    "message": (
                        f"no heartbeat within {queue.lease_timeout_s:.3f}s "
                        f"(attempt {lease.attempt}, "
                        f"{lease.heartbeats} beats)"
                    ),
                },
                # A clogged pool (every slot held by an outstanding fut)
                # cannot be trusted to start the retry — run it in the
                # parent, whose liveness is not in question.
                force_parent=stalled is not None
                and len(pending) >= self.workers,
            )

    def _handle_broken(
        self,
        queue: WorkQueue,
        pool: ProcessPoolExecutor,
        hb_queue,
        pending: Dict[Future, Tuple[str, int]],
        current: Dict[str, Future],
    ) -> Optional[ProcessPoolExecutor]:
        """One respawn per campaign; a second break trips the breaker."""
        self.stats["pool_breaks"] += 1
        obs.count("fabric.pool_breaks")
        pool.shutdown(wait=False, cancel_futures=True)
        pending.clear()
        for job_id in list(current):
            current.pop(job_id)
            self._fail(
                queue,
                job_id,
                {"type": "BrokenProcessPool", "message": "pool broke"},
                count_breaker=False,  # the pool break is counted once below
            )
        tripped = self.breaker.record_pool_break()
        if tripped:
            obs.event("fabric.degraded_serial", reason=self.breaker.trip_reason)
            self._drain_serial(queue)
            return None
        obs.count("fabric.pool_respawns")
        obs.event("fabric.pool_respawn")
        fresh = self._make_pool(queue, hb_queue)
        if fresh is None:
            self.breaker.record_pool_break()
            obs.event("fabric.degraded_serial", reason="respawn failed")
            self._drain_serial(queue)
            return None
        return fresh

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------
    def _settle_payload(
        self,
        queue: WorkQueue,
        job_id: str,
        attempt: int,
        payload: object,
        is_current: bool,
    ) -> None:
        shape_error = self._validate_payload(job_id, payload)
        if shape_error is not None:
            if is_current:
                self._fail(queue, job_id, shape_error)
            return
        status, _jid, body, telem = payload  # type: ignore[misc]
        if status == "error":
            if is_current:
                self._fail(queue, job_id, dict(body))
            return
        # Valid result — late ones included: work already done should win
        # if (and only if) nothing else committed first.
        self._settle_ok(queue, job_id, attempt, body, telem)

    @staticmethod
    def _validate_payload(job_id: str, payload: object) -> Optional[dict]:
        """None when well-formed; a structured error record otherwise."""
        if (
            not isinstance(payload, tuple)
            or len(payload) != 4
            or payload[0] not in ("ok", "error")
            or payload[1] != job_id
        ):
            return {
                "type": "CorruptPayload",
                "message": f"malformed worker payload {type(payload).__name__}",
            }
        if payload[0] == "ok" and not isinstance(payload[2], dict):
            return {
                "type": "CorruptPayload",
                "message": "ok payload without a result dict",
            }
        if payload[0] == "error" and not isinstance(payload[2], dict):
            return {
                "type": "CorruptPayload",
                "message": "error payload without an error dict",
            }
        return None

    def _settle_ok(
        self,
        queue: WorkQueue,
        job_id: str,
        attempt: int,
        result: dict,
        telem: Optional[dict],
    ) -> None:
        job = queue.job(job_id)
        committed = self._commit_durable(job, result, attempt)
        if not committed:
            self.stats["duplicates"] += 1
            return
        queue.complete(job_id)
        self.breaker.record_success()
        self.stats["committed"] += 1
        if telem:
            self._merge_telemetry(job, telem)
        if self.store is not None:
            self._publish_store(job, result, attempt)
        if (
            self.chaos is not None
            and self.chaos.action(job.index, attempt) == "duplicate"
        ):
            # Chaos: a confused worker (or a resumed supervisor) offers
            # the same completion again — the gate must refuse it.
            again = self.journal.commit(job, result)
            assert not again, "journal accepted a duplicate commit"
            self.stats["duplicates"] += 1

    def _commit_durable(self, job: Job, result: dict, attempt: int) -> bool:
        """Commit through the gate, riding out transient append failures."""
        fault_hook = None
        if (
            self.chaos is not None
            and self.chaos.action(job.index, attempt) == "enospc"
            and job.job_id not in self._enospc_armed
        ):
            self._enospc_armed.add(job.job_id)
            fault_hook = _one_shot_enospc()
        tries = 0
        with ioutil.inject_faults(fault_hook) if fault_hook else _noop():
            while True:
                try:
                    return self.journal.commit(job, result)
                except ArtifactWriteError as exc:
                    tries += 1
                    obs.count("fabric.journal_write_errors")
                    obs.event(
                        "fabric.journal_write_error",
                        job=job.describe(),
                        op=exc.op,
                        errno=exc.errno,
                        attempt=tries,
                    )
                    if tries >= _JOURNAL_APPEND_ATTEMPTS:
                        raise
                    # Realign the tail so the retry cannot weld onto a
                    # torn fragment, then back off and try again.
                    try:
                        self.journal.recover_append()
                    except OSError:
                        pass
                    self.retry_policy.sleep(tries, key=f"journal:{job.job_id}")

    def _fail(
        self,
        queue: WorkQueue,
        job_id: str,
        error: dict,
        force_parent: bool = False,
        count_breaker: bool = True,
    ) -> None:
        self._errors.setdefault(job_id, []).append(error)
        obs.event(
            "fabric.job_failed",
            job=queue.job(job_id).describe(),
            attempt=queue.attempts(job_id),
            error=error.get("type"),
        )
        if count_breaker:
            self.breaker.record_failure()
        move = queue.fail(job_id)
        if move == "settled":
            return
        if move == "quarantine":
            self._quarantine(queue, job_id)
            return
        self.stats["retries"] += 1
        obs.count("fabric.retries")
        self.retry_policy.sleep(queue.attempts(job_id), key=job_id)
        if force_parent or self.breaker.tripped:
            lease = queue.lease_next(time.monotonic())
            # fail() put this job at the front, so the next lease is it
            # (or another retry that deserves the slot just as much).
            if lease is not None:
                self._run_in_parent(queue, lease)

    def _quarantine(self, queue: WorkQueue, job_id: str) -> None:
        job = queue.job(job_id)
        attempts = queue.attempts(job_id)
        errors = self._errors.get(job_id, [])
        artifact = self._write_quarantine_artifact(job, attempts, errors)
        self.journal.record_quarantine(
            job, attempts=attempts, errors=errors, artifact=artifact
        )
        queue.quarantine(job_id)
        self.stats["quarantined"] += 1
        obs.event(
            "fabric.job_quarantined",
            job=job.describe(),
            attempts=attempts,
            last_error=errors[-1].get("type") if errors else None,
            artifact=artifact,
        )

    def _write_quarantine_artifact(
        self, job: Job, attempts: int, errors: List[dict]
    ) -> Optional[str]:
        """Repro-bundle-style artifact: everything needed to replay poison."""
        target = quarantine_dir_for(self.journal.path) / job.job_id
        try:
            target.mkdir(parents=True, exist_ok=True)
            ioutil.atomic_write_json(
                target / "job.json",
                {
                    "schema": "fabric-quarantine/1",
                    "job": job.to_dict(),
                    "attempts": attempts,
                    "errors": errors,
                    "journal": str(self.journal.path),
                },
            )
            return str(target)
        except (ArtifactWriteError, OSError) as exc:
            # The journal record is the durable truth; the artifact is
            # best-effort forensics and must not fail the campaign.
            obs.event(
                "fabric.quarantine_artifact_failed",
                job=job.describe(),
                error=type(exc).__name__,
            )
            return None

    def _merge_telemetry(self, job: Job, telem: dict) -> None:
        """Merge exactly one telemetry record per committed job."""
        counters = telem.get("counters") or {}
        for name, value in counters.items():
            obs.count(f"worker.{name}", value)
        obs.event(
            "fabric.job_telemetry",
            job=job.describe(),
            pid=telem.get("pid"),
            attempt=telem.get("attempt"),
            in_parent=telem.get("in_parent"),
            seconds=telem.get("seconds"),
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Serial paths
    # ------------------------------------------------------------------
    def _drain_serial(self, queue: WorkQueue) -> None:
        """Run everything left in-process (degraded or workers<=1)."""
        obs.count("fabric.serial_drains")
        while queue.unfinished:
            if self.interrupt is not None and self.interrupt.requested:
                self.interrupt.check(
                    completed=queue.n_done, remaining=queue.unfinished
                )
            lease = queue.lease_next(time.monotonic())
            if lease is None:
                return  # only leased-elsewhere work remains
            self._run_in_parent(queue, lease)

    def _run_in_parent(self, queue: WorkQueue, lease: Lease) -> None:
        """Execute one leased job in-process; commit through the gate.

        The last-resort path: worker-side chaos does not apply (there is
        no worker to kill), but the commit-side gate — and its chaos —
        is exactly the one the pool path uses.
        """
        from time import perf_counter

        from .worker import _dispatch

        job = lease.job
        self.stats["parent_runs"] += 1
        obs.count("fabric.parent_runs")
        capture = obs.RunRecorder(None)
        previous = obs.set_recorder(capture)
        start = perf_counter()
        try:
            result = _dispatch(job.kind, dict(job.payload))
        except Exception as exc:
            obs.set_recorder(previous)
            self._fail(
                queue,
                job.job_id,
                {"type": type(exc).__name__, "message": str(exc)[:500]},
            )
            return
        finally:
            obs.set_recorder(previous)
        if not isinstance(result, dict):
            self._fail(
                queue,
                job.job_id,
                {
                    "type": "TypeError",
                    "message": f"executor returned "
                    f"{type(result).__name__}, not a result dict",
                },
            )
            return
        import os

        telem = {
            "pid": os.getpid(),
            "run_id": self._run_id(),
            "attempt": lease.attempt,
            "in_parent": True,
            "seconds": round(perf_counter() - start, 6),
            "counters": capture.metrics.snapshot()["counters"],
        }
        self._settle_ok(queue, job.job_id, lease.attempt, result, telem)

    # ------------------------------------------------------------------
    # Interruption
    # ------------------------------------------------------------------
    def _check_interrupt(
        self,
        queue: WorkQueue,
        pool: ProcessPoolExecutor,
        pending: Dict[Future, Tuple[str, int]],
    ) -> None:
        if self.interrupt is None or not self.interrupt.requested:
            return
        obs.event(
            "fabric.interrupted",
            signal=self.interrupt.signal_name,
            completed=queue.n_done,
            remaining=queue.unfinished,
        )
        pool.shutdown(wait=False, cancel_futures=True)
        pending.clear()
        # The journal is already durable record-by-record; nothing to
        # flush.  Raise the resumable interruption for the CLI to map.
        self.interrupt.check(
            completed=queue.n_done, remaining=queue.unfinished
        )


def _one_shot_enospc():
    """A fault hook that fails exactly one journal append with ENOSPC."""
    armed = {"live": True}

    def hook(op: str, path) -> None:
        if op == "append" and armed["live"]:
            armed["live"] = False
            raise OSError(errno.ENOSPC, "chaos: injected ENOSPC")

    return hook


class _noop:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False
