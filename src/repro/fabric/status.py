"""Journal inspection: what a campaign did, read straight off the WAL.

``repro-tpi fabric-status <journal>`` answers the operator questions a
long campaign raises — *how far did it get? did anything get poisoned?
did it crash and recover?* — from the journal alone, with no access to
the process that wrote it.  Everything here is read-only: opening a
journal replays it (tail repair included) but writes nothing new.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from .journal import ResultJournal
from .store import ResultStore
from .supervisor import quarantine_dir_for

__all__ = ["format_status", "journal_status"]


def journal_status(
    path: Union[str, Path],
    store: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Summarize one fabric journal (and optionally its result store).

    With ``store`` the summary gains a ``store`` sub-dict: entry count,
    total bytes, quarantined-corrupt count, and the lifetime
    hit/miss/corrupt/publish counters from the store's ``stats.json``.
    """
    journal_path = Path(path)
    if not journal_path.exists():
        raise FileNotFoundError(f"no fabric journal at {journal_path}")
    journal = ResultJournal(journal_path)
    try:
        kinds: Dict[str, int] = {}
        for record in journal.committed.values():
            kind = str(record.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
        quarantined: List[dict] = []
        for job_id, record in sorted(journal.quarantined.items()):
            errors = record.get("errors") or []
            artifact = record.get("artifact")
            quarantined.append(
                {
                    "job_id": job_id,
                    "kind": record.get("kind"),
                    "content_key": record.get("content_key"),
                    "attempts": record.get("attempts"),
                    "last_error": (
                        errors[-1].get("type") if errors else None
                    ),
                    "artifact": artifact,
                    "artifact_present": bool(
                        artifact and Path(str(artifact)).exists()
                    ),
                }
            )
        status: Dict[str, object] = {
            "journal": str(journal_path),
            "commits": len(journal.committed),
            "quarantined": len(journal.quarantined),
            "torn_lines": journal.torn_lines,
            "foreign_records": journal.foreign_records,
            "kinds": kinds,
            "quarantine_dir": str(quarantine_dir_for(journal_path)),
            "quarantine": quarantined,
        }
        if store is not None:
            status["store"] = store_status(store)
        return status
    finally:
        journal.close()


def store_status(store: Union[str, Path, ResultStore]) -> Dict[str, object]:
    """Summarize one result store as a JSON-able dict (read-only)."""
    cas = store if isinstance(store, ResultStore) else ResultStore(store)
    return cas.stats()


def format_status(status: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`journal_status`."""
    lines = [
        f"fabric journal  {status['journal']}",
        f"  committed     {status['commits']}",
        f"  quarantined   {status['quarantined']}",
        f"  torn lines    {status['torn_lines']}"
        + ("  (crash evidence; repaired on open)" if status["torn_lines"] else ""),
    ]
    if status["foreign_records"]:
        lines.append(f"  foreign recs  {status['foreign_records']}")
    kinds = status.get("kinds") or {}
    if kinds:
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())
        )
        lines.append(f"  by kind       {by_kind}")
    quarantined = status.get("quarantine") or []
    for entry in quarantined:
        marker = "+" if entry["artifact_present"] else "-"
        lines.append(
            f"  poison [{marker}] {entry['kind']}:{entry['job_id'][:12]} "
            f"attempts={entry['attempts']} "
            f"last_error={entry['last_error']}"
        )
        if entry["artifact"]:
            lines.append(f"             artifact: {entry['artifact']}")
    store: Optional[Dict[str, object]] = status.get("store")  # type: ignore[assignment]
    if store:
        lines.append(f"result store    {store['path']}")
        lines.append(f"  entries       {store['entries']}")
        lines.append(f"  bytes         {store['bytes']}")
        lines.append(f"  hits          {store['hits']}")
        lines.append(f"  misses        {store['misses']}")
        lines.append(
            f"  corrupt       {store['corrupt']}  "
            f"(quarantined: {store['quarantined']})"
        )
        lines.append(f"  publishes     {store['publishes']}")
    return "\n".join(lines)
