"""Leased work queue: the supervisor's bookkeeping brain.

The queue owns the *state machine* of a campaign; the supervisor owns
the processes.  Every job is in exactly one state:

::

    pending ──lease──▶ leased ──complete──▶ done (committed)
       ▲                 │
       │                 ├─ fail (retryable) ──▶ pending   (attempts++)
       └─────────────────┘
                         └─ fail (exhausted) ──▶ quarantined (poison)

Leases carry an expiry that worker heartbeats extend: a live worker
computing a long job keeps its lease indefinitely; a crashed or stalled
worker stops beating, the lease expires, and the supervisor re-leases
the job to someone else.  Late results from an expired lease are not
lost — they are offered to the journal's exactly-once commit gate, which
accepts them only if the re-dispatched attempt has not landed first.

The queue is deliberately synchronous and single-owner (the supervisor
thread); all concurrency lives in the process pool.  That keeps the
state machine auditable — every transition below is a plain method call
with no locks to reason about.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .jobs import Job

__all__ = ["Lease", "WorkQueue"]


@dataclass
class Lease:
    """One job leased to one attempt; expiry advances on heartbeats."""

    job: Job
    attempt: int            # 0-based attempt index this lease represents
    expires_at: float       # supervisor monotonic time
    heartbeats: int = 0

    def beat(self, now: float, lease_timeout_s: float) -> None:
        self.expires_at = now + lease_timeout_s
        self.heartbeats += 1


class WorkQueue:
    """Single-owner lease/retry/quarantine state machine.

    Parameters
    ----------
    lease_timeout_s:
        Liveness window: a lease whose last heartbeat (or grant) is
        older than this is considered dead and re-dispatched.
    max_attempts:
        Tries per job (first + retries) before it is declared poison.
    """

    def __init__(
        self, lease_timeout_s: float = 30.0, max_attempts: int = 3
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.lease_timeout_s = lease_timeout_s
        self.max_attempts = max_attempts
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._pending: Deque[str] = deque()
        self._leases: Dict[str, Lease] = {}
        self._attempts: Dict[str, int] = {}
        self._done: Dict[str, str] = {}  # job_id -> "committed"|"quarantined"

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, job: Job) -> bool:
        """Enqueue a job; duplicates (same job_id) are merged, not queued
        twice — content addressing makes the second submission free."""
        if job.job_id in self._jobs:
            return False
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        self._pending.append(job.job_id)
        self._attempts[job.job_id] = 0
        return True

    def job_ids(self) -> List[str]:
        """All distinct job ids, campaign order."""
        return list(self._order)

    def mark_done(self, job_id: str, how: str = "committed") -> None:
        """Pre-resolve a job (journal replay on resume)."""
        if job_id not in self._jobs:
            return
        self._done[job_id] = how
        self._leases.pop(job_id, None)
        try:
            self._pending.remove(job_id)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Lease lifecycle
    # ------------------------------------------------------------------
    def lease_next(self, now: float) -> Optional[Lease]:
        """Grant a lease on the next pending job (campaign order)."""
        while self._pending:
            job_id = self._pending.popleft()
            if job_id in self._done:
                continue
            attempt = self._attempts[job_id]
            self._attempts[job_id] = attempt + 1
            lease = Lease(
                job=self._jobs[job_id],
                attempt=attempt,
                expires_at=now + self.lease_timeout_s,
            )
            self._leases[job_id] = lease
            return lease
        return None

    def release(self, lease: Lease) -> None:
        """Undo a lease whose dispatch never happened (submit failed).

        The attempt is uncounted and the job returns to the front of the
        pending queue, exactly as if the lease had never been granted.
        """
        job_id = lease.job.job_id
        if job_id in self._done or self._leases.get(job_id) is not lease:
            return
        self._leases.pop(job_id, None)
        self._attempts[job_id] = lease.attempt
        self._pending.appendleft(job_id)

    def heartbeat(self, job_id: str, now: float) -> bool:
        """A worker signalled liveness for its leased job."""
        lease = self._leases.get(job_id)
        if lease is None:
            return False  # late beat from an expired/settled lease
        lease.beat(now, self.lease_timeout_s)
        return True

    def expired(self, now: float) -> List[Lease]:
        """Leases whose liveness window has lapsed (not yet released)."""
        return [
            lease
            for lease in self._leases.values()
            if lease.expires_at <= now
        ]

    def next_expiry(self) -> Optional[float]:
        """Earliest lease expiry, for the supervisor's wait timeout."""
        if not self._leases:
            return None
        return min(lease.expires_at for lease in self._leases.values())

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------
    def complete(self, job_id: str) -> bool:
        """Settle a job as done; False if it already was (late result)."""
        if job_id in self._done or job_id not in self._jobs:
            return False
        self.mark_done(job_id, "committed")
        return True

    def fail(self, job_id: str) -> str:
        """Record a failed attempt; returns the next move.

        ``"retry"`` — the job went back to the front of the pending
        queue (front, so a flaky job resolves before new work starts
        and the campaign's completion order stays as close to the
        serial order as scheduling allows); ``"quarantine"`` — attempts
        are exhausted, the caller must quarantine; ``"settled"`` — a
        concurrent path already resolved the job.
        """
        if job_id in self._done:
            return "settled"
        self._leases.pop(job_id, None)
        if self._attempts.get(job_id, 0) >= self.max_attempts:
            return "quarantine"
        self._pending.appendleft(job_id)
        return "retry"

    def quarantine(self, job_id: str) -> None:
        """Settle a job as poison."""
        self.mark_done(job_id, "quarantined")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def attempts(self, job_id: str) -> int:
        return self._attempts.get(job_id, 0)

    def job(self, job_id: str) -> Job:
        return self._jobs[job_id]

    @property
    def unfinished(self) -> int:
        return len(self._jobs) - len(self._done)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_leased(self) -> int:
        return len(self._leases)

    @property
    def n_done(self) -> int:
        return len(self._done)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for how in self._done.values() if how == "quarantined")

    def is_leased(self, job_id: str) -> bool:
        return job_id in self._leases

    def lease_of(self, job_id: str) -> Optional[Lease]:
        return self._leases.get(job_id)
