"""Content-addressed job identities for the sweep fabric.

A fabric campaign is a set of *jobs*, each the pair the ROADMAP calls
``(circuit-hash, config-digest)``: *what* is being computed (the
structural hash of the circuit, via ``Circuit.structural_hash()``, or a
symbolic key for non-circuit work like experiment tables) and *under
which configuration* (pattern budget, solver cascade, thresholds — a
canonical digest of the config mapping).  The job id is a digest of
both, which buys three properties at once:

* **dedup** — two netlist files that parse to structurally identical
  circuits under the same config are *one* job; the fabric computes it
  once and every requester shares the committed result;
* **exactly-once across restarts** — the result journal keys commits by
  job id, so a resumed campaign recognizes completed work regardless of
  which worker, attempt, or process lifetime produced it;
* **free re-runs** — re-running any (circuit, config) pair against the
  same journal is a cache hit, never a recomputation.

Payloads are plain JSON-able dicts (paths, ints, strings): they cross
process boundaries in both directions and land verbatim in quarantine
artifacts, so they must never hold live objects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["Job", "config_digest", "job_id_for"]

#: Hex digits kept from each sha256 — 128 bits, collision-proof at any
#: plausible campaign size while keeping journal lines readable.
_DIGEST_CHARS = 32


def config_digest(config: Mapping[str, object]) -> str:
    """Canonical digest of a job configuration mapping.

    Key order, whitespace, and container identity do not matter; values
    must be JSON-serializable (enforced here, loudly, because a silently
    unstable digest would break dedup and resume).
    """
    try:
        canonical = json.dumps(
            dict(config), sort_keys=True, separators=(",", ":")
        )
    except TypeError as exc:
        raise ValueError(
            f"job config is not canonically serializable: {exc}"
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[
        :_DIGEST_CHARS
    ]


def job_id_for(kind: str, content_key: str, cfg_digest: str) -> str:
    """The content-addressed identity of one (kind, content, config) job."""
    h = hashlib.sha256()
    for part in (kind, content_key, cfg_digest):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:_DIGEST_CHARS]


@dataclass(frozen=True)
class Job:
    """One unit of fabric work.

    Attributes
    ----------
    job_id:
        Content-addressed identity (see :func:`job_id_for`).  Everything
        durable — journal commits, quarantine artifacts, dedup — keys on
        this.
    kind:
        Executor dispatch key (``"sweep_circuit"``, ``"experiment"``;
        see :mod:`repro.fabric.worker`).
    content_key:
        The *what*: circuit structural hash, or a symbolic key for
        non-circuit jobs.
    config_digest:
        The *how*: canonical digest of the configuration mapping.
    payload:
        JSON-able executor arguments.
    index:
        Campaign-order position — fixes deterministic dispatch order and
        keys the chaos roll, exactly as chunk indices do for the
        parallel fan-out.
    """

    job_id: str
    kind: str
    content_key: str
    config_digest: str
    payload: Dict[str, object] = field(default_factory=dict)
    index: int = 0

    @classmethod
    def build(
        cls,
        kind: str,
        content_key: str,
        config: Mapping[str, object],
        payload: Optional[Mapping[str, object]] = None,
        index: int = 0,
    ) -> "Job":
        """Construct a job, deriving the digest and id from content."""
        digest = config_digest(config)
        return cls(
            job_id=job_id_for(kind, content_key, digest),
            kind=kind,
            content_key=content_key,
            config_digest=digest,
            payload=dict(payload or {}),
            index=index,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (journal records, quarantine artifacts)."""
        return asdict(self)

    def describe(self) -> str:
        return f"{self.kind}:{self.content_key[:12]}@{self.job_id[:12]}"
