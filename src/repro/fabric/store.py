"""Content-addressed result store: cross-campaign caching with integrity.

The journal (:mod:`repro.fabric.journal`) makes re-runs free *within*
one campaign; this store makes them free *across* campaigns.  Results
are keyed by the fabric's content-addressed ``job_id`` (already a sha256
of ``kind``, ``content_key``, and ``config_digest``), so two campaigns
that sweep structurally identical circuits under the same config share
one stored result — regardless of journal, process lifetime, or host.

Every entry is a crash-consistent record carrying its own integrity
envelope:

* **atomic writes** — entries land via
  :func:`repro.ioutil.atomic_write_json` (tmp + fsync + ``os.replace``),
  so readers observe a whole record or nothing, never a torn one;
* **payload digest** — the record stores ``payload_sha256``, the sha256
  of the canonical JSON of its ``result``, recomputed and compared on
  *every* read;
* **schema version** — ``fabric-store/1``; stale-schema entries are
  never served;
* **producer fingerprint** — git revision, package version, simulation
  kernel, python version of whatever published the entry, for forensics
  and evidence packs.

A read that fails any check — undecodable bytes, wrong schema, id
mismatch, digest mismatch — **quarantines** the entry to a sidecar
directory (corruption is evidence, not garbage) and reports a miss, so
the fabric recomputes; corrupt entries are never silently served.  On
top of the envelope, the supervisor re-executes a seeded fraction of
cache hits and compares bit-exact via :class:`repro.verify.Guard`, so
an entry whose envelope was forged along with its payload (cache
poisoning) still cannot survive unnoticed.

Publishing is idempotent and first-write-wins: :meth:`ResultStore.put`
refuses to overwrite an existing entry, and concurrent double-publishes
are harmless because both writers replace-in the *same* bit-exact
content.  Eviction (:meth:`ResultStore.gc`) prunes least-recently-used
entries (hits touch mtime) under ``max_bytes`` / ``max_age_days`` caps,
one atomic unlink at a time, and never deletes an entry named by a live
lease file (:meth:`ResultStore.acquire_lease`) — a running campaign's
working set cannot be evicted out from under it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .. import __version__, ioutil, obs
from ..errors import ArtifactWriteError
from .jobs import Job

__all__ = [
    "STORE_SCHEMA",
    "ResultStore",
    "StoreLease",
    "payload_digest",
    "producer_fingerprint",
]

#: Store entry format identifier; entries with any other schema are
#: quarantined as stale, never served.
STORE_SCHEMA = "fabric-store/1"

#: Lease-file format identifier.
_LEASE_SCHEMA = "fabric-store-lease/1"

_STATS_NAME = "stats.json"
_QUARANTINE_DIR = "quarantine"
_LEASE_DIR = ".leases"

#: Persisted lifetime counters (merged, not overwritten, on every flush).
_STAT_KEYS = ("hits", "misses", "corrupt", "publishes")


def payload_digest(result: object) -> str:
    """sha256 of the canonical JSON encoding of a result payload."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def producer_fingerprint() -> Dict[str, object]:
    """Who/what produced an entry: enough to audit a cache hit later."""
    import platform

    from ..sim.compile import DEFAULT_KERNEL

    return {
        "package": "repro-tpi",
        "package_version": __version__,
        "git_rev": obs.git_revision(),
        "kernel": DEFAULT_KERNEL,
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class _Entry:
    """One on-disk entry as seen by scans (no verification implied)."""

    job_id: str
    path: Path
    size: int
    mtime: float


class StoreLease:
    """A durable claim on a set of job ids, protecting them from GC.

    The lease is a file under the store's ``.leases/`` directory; it
    exists exactly while the campaign holding it runs (the supervisor
    releases it in a ``finally``).  A lease left behind by a killed
    process keeps protecting its entries until an operator removes it —
    GC reports protected entries rather than guessing about liveness.
    """

    def __init__(self, path: Path, job_ids: Set[str]) -> None:
        self.path = path
        self.job_ids = frozenset(job_ids)

    def release(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "StoreLease":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False


class ResultStore:
    """Content-addressed, integrity-verified result store (one directory).

    Entries live at ``root/<id[:2]>/<job_id>.json`` (fanned out to keep
    directory listings sane at scale); quarantined corpses under
    ``root/quarantine/``; lease files under ``root/.leases/``; lifetime
    hit/miss/corrupt counters in ``root/stats.json``.

    Session counters (``hits``/``misses``/``corrupt``/``publishes``)
    accumulate in memory and are merged into ``stats.json`` by
    :meth:`persist_stats` — the supervisor calls it once per campaign.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.publishes = 0
        self._persisted: Dict[str, int] = {k: 0 for k in _STAT_KEYS}

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_path(self, job_id: str) -> Path:
        return self.root / job_id[:2] / f"{job_id}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    @property
    def lease_dir(self) -> Path:
        return self.root / _LEASE_DIR

    @property
    def stats_path(self) -> Path:
        return self.root / _STATS_NAME

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def put(
        self,
        job: Job,
        result: dict,
        producer: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Publish one result; first write wins, re-publishes are no-ops.

        Returns True when this call created the entry, False when a
        valid-or-not entry already occupied the slot (idempotent: the
        journal's exactly-once gate means any existing entry for this id
        holds the same bit-exact result; a *corrupt* existing entry is
        left for the next read to quarantine, after which a fresh
        publish lands cleanly).  Raises
        :class:`~repro.errors.ArtifactWriteError` on filesystem failure.
        """
        path = self.entry_path(job.job_id)
        if path.exists():
            obs.count("fabric.store.duplicate_publishes")
            return False
        # Normalize through a JSON round-trip so the digest computed here
        # is over exactly what a reader will re-parse (e.g. tuples become
        # lists *before* hashing, not after).
        result = json.loads(json.dumps(result))
        record = {
            "schema": STORE_SCHEMA,
            "job_id": job.job_id,
            "kind": job.kind,
            "content_key": job.content_key,
            "config_digest": job.config_digest,
            "result": result,
            "payload_sha256": payload_digest(result),
            "producer": dict(producer) if producer else producer_fingerprint(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        ioutil.atomic_write_json(path, record)
        self.publishes += 1
        obs.count("fabric.store.publishes")
        return True

    # ------------------------------------------------------------------
    # Verified read
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[dict]:
        """Return the verified record for ``job_id``, or None (a miss).

        Every read re-checks the integrity envelope; an entry failing
        any check is moved to the quarantine sidecar and reported as a
        miss (plus a ``fabric.store.corrupt`` count) so the caller
        recomputes.  A served hit touches the entry's mtime — the LRU
        recency :meth:`gc` orders eviction by.
        """
        path = self.entry_path(job_id)
        if not path.exists():
            self.misses += 1
            obs.count("fabric.store.misses")
            return None
        record, problem = self._load_verified(path, job_id)
        if record is None:
            self._quarantine(path, job_id, problem or "unreadable")
            self.corrupt += 1
            self.misses += 1
            obs.count("fabric.store.corrupt")
            obs.count("fabric.store.misses")
            return None
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        self.hits += 1
        obs.count("fabric.store.hits")
        return record

    @staticmethod
    def _load_verified(
        path: Path, job_id: str
    ) -> Tuple[Optional[dict], Optional[str]]:
        """(record, None) when the envelope verifies, else (None, why)."""
        try:
            raw = path.read_bytes()
        except OSError as exc:
            return None, f"unreadable: {exc}"
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None, "undecodable (torn or binary-corrupted)"
        if not isinstance(record, dict):
            return None, "not a record object"
        if record.get("schema") != STORE_SCHEMA:
            return None, f"stale schema {record.get('schema')!r}"
        if record.get("job_id") != job_id:
            return None, f"job id mismatch ({record.get('job_id')!r})"
        if "result" not in record:
            return None, "missing result payload"
        stored = record.get("payload_sha256")
        actual = payload_digest(record["result"])
        if stored != actual:
            return None, "payload digest mismatch"
        return record, None

    def _quarantine(self, path: Path, job_id: str, reason: str) -> None:
        """Move a bad entry to the sidecar — evidence, never served again."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():  # keep every corpse, even repeat offenders
            n += 1
            target = self.quarantine_dir / f"{path.stem}.{n}{path.suffix}"
        try:
            os.replace(path, target)
        except OSError:
            try:  # cross-device or racing reader: at minimum stop serving it
                path.unlink()
            except OSError:
                pass
            target = None  # type: ignore[assignment]
        obs.event(
            "fabric.store.entry_quarantined",
            job_id=job_id,
            reason=reason,
            moved_to=str(target) if target else None,
        )

    # ------------------------------------------------------------------
    # Scans and statistics
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[_Entry]:
        """Every on-disk entry (unverified), in no particular order."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name in (
                _QUARANTINE_DIR,
                _LEASE_DIR,
            ):
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    st = path.stat()
                except OSError:
                    continue  # raced a concurrent gc/quarantine
                yield _Entry(
                    job_id=path.stem,
                    path=path,
                    size=st.st_size,
                    mtime=st.st_mtime,
                )

    def stats(self) -> Dict[str, object]:
        """Entry counts, bytes, and lifetime hit/miss/corrupt counters.

        Lifetime counters are the persisted ones plus this session's
        not-yet-flushed deltas, so the numbers are current either way.
        """
        n = 0
        total = 0
        for entry in self.entries():
            n += 1
            total += entry.size
        quarantined = 0
        if self.quarantine_dir.is_dir():
            quarantined = sum(
                1 for _ in self.quarantine_dir.glob("*.json")
            )
        persisted = self._read_persisted()
        session = self._session_counters()
        return {
            "path": str(self.root),
            "entries": n,
            "bytes": total,
            "quarantined": quarantined,
            **{
                key: persisted.get(key, 0)
                + session[key]
                - self._persisted[key]
                for key in _STAT_KEYS
            },
        }

    def _session_counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "publishes": self.publishes,
        }

    def _read_persisted(self) -> Dict[str, int]:
        try:
            payload = json.loads(self.stats_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        return {
            k: int(v)
            for k, v in payload.items()
            if k in _STAT_KEYS and isinstance(v, (int, float))
        }

    def persist_stats(self) -> None:
        """Merge this session's counter deltas into ``stats.json``.

        Additive (read-modify-write, atomic replace), so campaigns that
        share a store accumulate rather than clobber.  Best-effort: the
        counters are operator telemetry, not correctness state.
        """
        session = self._session_counters()
        deltas = {
            key: session[key] - self._persisted[key] for key in _STAT_KEYS
        }
        if not any(deltas.values()):
            return
        merged = self._read_persisted()
        for key, delta in deltas.items():
            merged[key] = merged.get(key, 0) + delta
        try:
            ioutil.atomic_write_json(self.stats_path, merged)
        except ArtifactWriteError:
            return
        self._persisted = dict(session)

    # ------------------------------------------------------------------
    # Leases (GC protection)
    # ------------------------------------------------------------------
    def acquire_lease(self, job_ids: Iterable[str]) -> StoreLease:
        """Durably protect ``job_ids`` from eviction until released."""
        ids = {str(j) for j in job_ids}
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        path = self.lease_dir / f"{token}.json"
        ioutil.atomic_write_json(
            path,
            {
                "schema": _LEASE_SCHEMA,
                "pid": os.getpid(),
                "job_ids": sorted(ids),
            },
        )
        return StoreLease(path, ids)

    def leased_job_ids(self) -> Set[str]:
        """Every job id named by any live lease file."""
        ids: Set[str] = set()
        if not self.lease_dir.is_dir():
            return ids
        for path in self.lease_dir.glob("*.json"):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # a torn lease file protects nothing
            if (
                isinstance(payload, dict)
                and payload.get("schema") == _LEASE_SCHEMA
            ):
                ids.update(str(j) for j in payload.get("job_ids") or ())
        return ids

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Prune LRU entries down to the caps; never touch leased ones.

        Entries are considered oldest-recency first (mtime; hits touch
        it).  An entry is pruned when it is older than ``max_age_days``
        or while the store is still over ``max_bytes``; each prune is a
        single atomic unlink, so a crash mid-gc leaves a smaller, still
        fully consistent store.  Entries named by a live lease are
        skipped and counted in ``protected``.
        """
        if now is None:
            now = time.time()
        ordered = sorted(self.entries(), key=lambda e: e.mtime)
        total = sum(e.size for e in ordered)
        protected_ids = self.leased_job_ids()
        deleted = 0
        freed = 0
        protected = 0
        for entry in ordered:
            too_old = (
                max_age_days is not None
                and (now - entry.mtime) > max_age_days * 86_400.0
            )
            over_cap = (
                max_bytes is not None and (total - freed) > max_bytes
            )
            if not too_old and not over_cap:
                # mtime-ascending order: everything later is younger, and
                # the byte cap is already met — nothing left to prune.
                break
            if entry.job_id in protected_ids:
                protected += 1
                continue
            try:
                entry.path.unlink()
            except FileNotFoundError:
                continue  # raced another gc; its delete counts, not ours
            deleted += 1
            freed += entry.size
        if deleted:
            obs.count("fabric.store.gc_pruned", deleted)
            obs.event(
                "fabric.store.gc",
                deleted=deleted,
                freed_bytes=freed,
                protected=protected,
                max_bytes=max_bytes,
                max_age_days=max_age_days,
            )
        return {
            "scanned": len(ordered),
            "deleted": deleted,
            "freed_bytes": freed,
            "kept": len(ordered) - deleted,
            "kept_bytes": total - freed,
            "protected": protected,
        }


def list_store_results(store: ResultStore) -> List[str]:
    """Job ids with an on-disk entry (unverified; for status displays)."""
    return sorted(entry.job_id for entry in store.entries())
