"""Replayable repro bundles for divergence failures.

A bundle is a self-contained directory — circuit ``.bench``, manifest
with every replay input (seeds, pattern configs, kernel sources, both
results) — written **atomically** so a crash mid-divergence never leaves
a torn artifact.  ``repro-tpi replay <bundle>`` re-executes the recorded
comparison deterministically (see :mod:`repro.verify.replay`).

Bundle directories are content-addressed (``<kind>-<sha256[:12]>``), so
re-hitting the same divergence reuses the existing bundle instead of
piling up duplicates.

Manifest schema (``repro-bundle/1``)::

    {
      "schema":  "repro-bundle/1",
      "kind":    "fault_sim.cone" | "cop.measures" | ... ,
      "message": one-line human summary,
      "circuit": "circuit.bench"    (file in the bundle directory),
      "context": replay inputs (kind-specific; JSON-safe),
      "sources": {kernel key: generated source}  (optional),
      "expected": arbiter result   (JSON-safe encoding),
      "actual":   fast-path result (JSON-safe encoding)
    }

Non-string dict keys (branch tuples, faults) are encoded as
``{"__pairs__": [[key, value], ...]}`` sorted by key; tuples become
lists.  :func:`jsonable` is the canonical encoder — replay compares
re-computed results *after* encoding both sides with it.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path
from typing import Dict, Optional, Union

from ..circuit.bench_io import parse_bench, write_bench
from ..circuit.netlist import Circuit
from ..core.problem import (
    TestPoint,
    TestPointCosts,
    TestPointType,
    TPIProblem,
    TPISolution,
)
from ..ioutil import atomic_replace_dir, atomic_write_text
from ..sim.faults import Fault

__all__ = [
    "BUNDLE_SCHEMA",
    "jsonable",
    "write_bundle",
    "load_bundle",
    "fault_to_payload",
    "fault_from_payload",
    "point_to_payload",
    "point_from_payload",
    "problem_to_payload",
    "problem_from_payload",
    "solution_to_payload",
    "solution_from_payload",
]

BUNDLE_SCHEMA = "repro-bundle/1"

MANIFEST_NAME = "manifest.json"
CIRCUIT_NAME = "circuit.bench"


# ---------------------------------------------------------------------------
# Canonical JSON-safe encoding
# ---------------------------------------------------------------------------


def jsonable(value):
    """Recursively encode ``value`` into JSON-safe, canonical form.

    Deterministic: dicts with non-string keys become sorted
    ``{"__pairs__": [...]}`` lists, tuples become lists.  Floats and
    arbitrary-precision ints pass through (Python's ``json`` round-trips
    both exactly).
    """
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: jsonable(v) for k, v in sorted(value.items())}
        pairs = sorted(
            (jsonable(list(k) if isinstance(k, tuple) else k), jsonable(v))
            for k, v in value.items()
        )
        return {"__pairs__": [[k, v] for k, v in pairs]}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Fault):
        return fault_to_payload(value)
    if isinstance(value, TestPoint):
        return point_to_payload(value)
    if isinstance(value, set):
        return sorted(jsonable(v) for v in value)
    return repr(value)


# ---------------------------------------------------------------------------
# Domain-object payload codecs
# ---------------------------------------------------------------------------


def fault_to_payload(fault: Fault) -> dict:
    return {
        "node": fault.node,
        "value": fault.value,
        "branch": list(fault.branch) if fault.branch is not None else None,
    }


def fault_from_payload(payload: dict) -> Fault:
    branch = payload.get("branch")
    return Fault(
        node=payload["node"],
        value=payload["value"],
        branch=(branch[0], branch[1]) if branch is not None else None,
    )


def point_to_payload(point: TestPoint) -> dict:
    return {
        "node": point.node,
        "kind": point.kind.name,
        "branch": list(point.branch) if point.branch is not None else None,
    }


def point_from_payload(payload: dict) -> TestPoint:
    branch = payload.get("branch")
    return TestPoint(
        node=payload["node"],
        kind=TestPointType[payload["kind"]],
        branch=(branch[0], branch[1]) if branch is not None else None,
    )


def problem_to_payload(problem: TPIProblem) -> dict:
    """Everything needed to rebuild the instance minus the circuit."""
    return {
        "threshold": problem.threshold,
        "costs": {
            "observation": problem.costs.observation,
            "control_and": problem.costs.control_and,
            "control_or": problem.costs.control_or,
            "control_random": problem.costs.control_random,
        },
        "allowed_types": [t.name for t in problem.allowed_types],
        "input_probabilities": problem.input_probabilities,
        "max_points": problem.max_points,
    }


def problem_from_payload(circuit: Circuit, payload: dict) -> TPIProblem:
    return TPIProblem(
        circuit=circuit,
        threshold=payload["threshold"],
        costs=TestPointCosts(**payload["costs"]),
        allowed_types=tuple(
            TestPointType[name] for name in payload["allowed_types"]
        ),
        input_probabilities=payload.get("input_probabilities"),
        max_points=payload.get("max_points"),
    )


def solution_to_payload(solution: TPISolution) -> dict:
    return {
        "points": [point_to_payload(p) for p in solution.points],
        "cost": solution.cost,
        "feasible": solution.feasible,
        "method": solution.method,
        "stats": {k: v for k, v in sorted(solution.stats.items())},
    }


def solution_from_payload(payload: dict) -> TPISolution:
    return TPISolution(
        points=[point_from_payload(p) for p in payload["points"]],
        cost=payload["cost"],
        feasible=payload["feasible"],
        method=payload["method"],
        stats=dict(payload.get("stats", {})),
    )


# ---------------------------------------------------------------------------
# Bundle writer / loader
# ---------------------------------------------------------------------------


def write_bundle(
    kind: str,
    *,
    circuit: Circuit,
    context: dict,
    expected,
    actual,
    message: str = "",
    sources: Optional[Dict[str, str]] = None,
    bundle_dir: Union[str, Path] = "repro_bundles",
) -> Path:
    """Write a content-addressed repro bundle; returns its directory.

    Every file inside is written atomically and the finished directory is
    moved into place with one ``rename``, so a concurrent reader never
    observes a partial bundle.
    """
    bench_text = write_bench(circuit)
    manifest = {
        "schema": BUNDLE_SCHEMA,
        "kind": kind,
        "message": message,
        "circuit": CIRCUIT_NAME,
        "context": jsonable(context),
        "sources": dict(sources or {}),
        "expected": jsonable(expected),
        "actual": jsonable(actual),
    }
    manifest_text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    digest = hashlib.sha256(
        (manifest_text + bench_text).encode("utf-8")
    ).hexdigest()[:12]
    bundle_dir = Path(bundle_dir)
    bundle_dir.mkdir(parents=True, exist_ok=True)
    final = bundle_dir / f"{kind.replace('.', '-')}-{digest}"
    if final.is_dir():  # same divergence already captured
        return final
    tmp = bundle_dir / f".{final.name}.tmp-{digest}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    atomic_write_text(tmp / CIRCUIT_NAME, bench_text)
    atomic_write_text(tmp / MANIFEST_NAME, manifest_text)
    return atomic_replace_dir(tmp, final)


def load_bundle(path: Union[str, Path]):
    """Load ``(manifest, circuit)`` from a bundle directory (or manifest).

    Accepts the bundle directory or a direct path to its
    ``manifest.json``.
    """
    path = Path(path)
    if path.is_dir():
        manifest_path = path / MANIFEST_NAME
    else:
        manifest_path = path
        path = path.parent
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"{manifest_path}: unsupported bundle schema "
            f"{manifest.get('schema')!r} (expected {BUNDLE_SCHEMA!r})"
        )
    bench_path = path / manifest.get("circuit", CIRCUIT_NAME)
    circuit = parse_bench(
        bench_path.read_text(encoding="utf-8"), source=str(bench_path)
    )
    return manifest, circuit
