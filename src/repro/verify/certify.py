"""Independent certification of solver output.

A solver's :class:`~repro.core.problem.TPISolution` makes three claims —
a placement, a cost, and a feasibility verdict (for the DP on trees:
*optimality*).  :func:`certify_solution` re-derives each claim from
scratch, trusting nothing the solver computed:

* **placement validity** — at most one control point per wire
  (:func:`~repro.core.virtual.split_placement` is the arbiter);
* **cost** — recomputed as ``problem.costs.total(points)`` and compared
  against the claimed objective (exact arithmetic, 1e-9 slack for float
  summation order only);
* **DP precondition** — a solution claiming ``method="dp"`` is accepted
  as optimal only when the circuit actually is fanout-free
  (:func:`~repro.circuit.analysis.is_fanout_free`), because
  Krishnamurthy's optimality theorem holds in exactly that regime;
* **feasibility** — re-evaluated from scratch: DP claims are checked
  under the DP's own quantized algebra
  (:func:`~repro.core.dp.quantized_tree_check`, with the exact grid /
  margin / context the solve used when available), every other method
  under the continuous COP model via the *interpreted*
  :func:`~repro.core.virtual.evaluate_placement` — the certification
  deliberately avoids the compiled kernels it might itself be guarding.

On any mismatch a repro bundle (circuit, problem, claimed solution,
re-derived verdicts) is written and :class:`DivergenceError` raised.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .. import obs
from ..core.problem import TPIProblem, TPISolution
from ..sim.faults import Fault
from .bundle import problem_to_payload, solution_to_payload, write_bundle
from .guard import DEFAULT_BUNDLE_DIR, Guard, active_guard

__all__ = ["certify_solution", "maybe_certify"]

#: Slack for the cost comparison: covers float summation order, nothing
#: else — an off-by-one in any cost unit is 5 orders of magnitude larger.
_COST_TOLERANCE = 1e-9


def _fail(
    kind: str,
    message: str,
    problem: TPIProblem,
    solution: TPISolution,
    expected,
    actual,
    context: dict,
    guard: Optional[Guard],
) -> None:
    obs.count("guard.divergences")
    if guard is not None:
        guard.divergences += 1
    bundle_dir = guard.bundle_dir if guard is not None else DEFAULT_BUNDLE_DIR
    context = dict(context)
    context["problem"] = problem_to_payload(problem)
    context["solution"] = solution_to_payload(solution)
    from ..errors import DivergenceError

    bundle_path: Optional[str] = None
    try:
        bundle_path = str(
            write_bundle(
                kind,
                circuit=problem.circuit,
                context=context,
                expected=expected,
                actual=actual,
                message=message,
                bundle_dir=bundle_dir,
            )
        )
    except Exception as exc:
        obs.event(
            "guard.bundle_write_failed",
            kind=kind,
            error=type(exc).__name__,
            detail=str(exc)[:200],
        )
    obs.event("guard.divergence", kind=kind, bundle=bundle_path)
    raise DivergenceError(kind, message, bundle_path)


def certify_solution(
    problem: TPIProblem,
    solution: TPISolution,
    *,
    guard: Optional[Guard] = None,
    faults: Optional[Sequence[Fault]] = None,
    dp_check: Optional[Callable[[Sequence], bool]] = None,
    dp_context: Optional[dict] = None,
) -> TPISolution:
    """Certify ``solution`` against ``problem`` from scratch.

    Parameters
    ----------
    guard:
        Used for its bundle directory and counters; certification is
        never sampled (``None`` falls back to the ambient guard, then to
        default bundle settings).
    faults:
        Fault list the solver's feasibility claim refers to.  Defaults
        to the circuit's *testable* stuck-at list — what every built-in
        solver plans against.
    dp_check:
        Custom quantized-feasibility arbiter for ``method="dp"``
        solutions (``points -> bool``).  :func:`~repro.core.dp.solve_tree`
        passes one capturing its exact grid/margin/context; the default
        re-checks with the DP's default parameters.
    dp_context:
        JSON-safe description of ``dp_check``'s parameters (grid values,
        margin, ...) recorded in the repro bundle so ``repro-tpi replay``
        can rebuild the same arbiter.

    Returns the (unmodified) solution on success so call sites can wrap
    returns; raises :class:`~repro.errors.DivergenceError` otherwise.
    """
    # Lazy core imports: verify must stay importable from inside the
    # solvers without a cycle.
    from ..circuit.analysis import is_fanout_free
    from ..core.virtual import evaluate_placement, split_placement
    from ..sim.faults import testable_stuck_at_faults

    guard = active_guard(guard)
    obs.count("guard.certifications")
    circuit = problem.circuit
    base_context = {} if dp_context is None else {"dp": dp_context}

    # 1. Placement validity: no wire carries two control points.
    try:
        split_placement(solution.points)
    except ValueError as exc:
        _fail(
            "solver.placement",
            f"invalid placement from {solution.method!r}: {exc}",
            problem,
            solution,
            expected="at most one control point per wire",
            actual=str(exc),
            context=base_context,
            guard=guard,
        )

    # 2. Cost: the claimed objective must equal the cost model's answer.
    if solution.cost != float("inf"):
        recomputed = problem.costs.total(solution.points)
        if abs(recomputed - solution.cost) > _COST_TOLERANCE:
            _fail(
                "solver.cost",
                f"{solution.method!r} claims cost {solution.cost:g} but the "
                f"placement re-prices to {recomputed:g}",
                problem,
                solution,
                expected=recomputed,
                actual=solution.cost,
                context=base_context,
                guard=guard,
            )

    # 3. "Optimal" from the DP requires the fanout-free precondition.
    if solution.method == "dp" and not is_fanout_free(circuit):
        _fail(
            "solver.dp_precondition",
            "method='dp' (exact/optimal) claimed on a circuit with fanout; "
            "the optimality theorem only covers fanout-free circuits",
            problem,
            solution,
            expected="fanout-free circuit",
            actual="circuit has fanout stems",
            context=base_context,
            guard=guard,
        )

    # 4. Feasibility, re-derived from scratch.
    if solution.feasible:
        if solution.method == "dp":
            if dp_check is not None:
                ok = bool(dp_check(solution.points))
            else:
                from ..core.dp import quantized_tree_check

                ok = quantized_tree_check(problem, solution.points)
            arbiter = "quantized_tree_check"
        else:
            if faults is None:
                faults = testable_stuck_at_faults(circuit)
            evaluation = evaluate_placement(
                problem, solution.points, kernel="interp"
            )
            ok = evaluation.is_feasible(faults)
            arbiter = "evaluate_placement[interp]"
        if not ok:
            _fail(
                "solver.feasible",
                f"{solution.method!r} claims a feasible placement but "
                f"{arbiter} rejects it",
                problem,
                solution,
                expected={"feasible": True},
                actual={"feasible": False, "arbiter": arbiter},
                context=base_context,
                guard=guard,
            )
    return solution


def maybe_certify(
    problem: TPIProblem,
    solution: TPISolution,
    *,
    faults: Optional[Sequence[Fault]] = None,
    dp_check: Optional[Callable[[Sequence], bool]] = None,
    dp_context: Optional[dict] = None,
) -> TPISolution:
    """Certify under the ambient guard, or pass through when none is active.

    This is the hook the solver entry points call: zero cost outside a
    :class:`~repro.verify.guard.GuardedSession` (or when the session was
    created with ``certify=False``).
    """
    guard = active_guard(None)
    if guard is None or not guard.certify:
        return solution
    return certify_solution(
        problem,
        solution,
        guard=guard,
        faults=faults,
        dp_check=dp_check,
        dp_context=dp_context,
    )
