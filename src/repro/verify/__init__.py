"""Self-checking execution: shadow verification and result certification.

The paper's claims are only as good as the numbers backing them, and
this library runs most of those numbers through *fast paths* — compiled
kernels, incremental evaluation, parallel fan-out — that each have a
slower, simpler arbiter.  This package closes the loop at run time:

* :class:`Guard` / :class:`GuardedSession` — shadow-re-execute a seeded,
  configurable fraction of fast-path results against the arbiter;
* :func:`certify_solution` / :func:`maybe_certify` — independently
  re-derive every claim a solver's solution makes (placement validity,
  cost, DP optimality precondition, feasibility);
* :mod:`repro.verify.bundle` — on mismatch, an atomic, content-addressed
  repro bundle with everything needed to replay the divergence;
* :func:`replay_bundle` — deterministic re-execution of a bundle
  (``repro-tpi replay``);
* :mod:`repro.verify.plant` — controlled bug injection proving the layer
  actually catches what it claims to catch.
"""

from .bundle import (
    BUNDLE_SCHEMA,
    jsonable,
    load_bundle,
    write_bundle,
)
from .certify import certify_solution, maybe_certify
from .guard import (
    DEFAULT_BUNDLE_DIR,
    DEFAULT_FRACTION,
    Guard,
    GuardedSession,
    active_guard,
)
from .plant import plant_kernel_bug, plant_logic_bug
from .replay import ReplayResult, replay_bundle

__all__ = [
    "BUNDLE_SCHEMA",
    "DEFAULT_BUNDLE_DIR",
    "DEFAULT_FRACTION",
    "Guard",
    "GuardedSession",
    "ReplayResult",
    "active_guard",
    "certify_solution",
    "jsonable",
    "load_bundle",
    "maybe_certify",
    "plant_kernel_bug",
    "plant_logic_bug",
    "replay_bundle",
    "write_bundle",
]
