"""Deliberate bug planting — the self-check layer's own test fixture.

A verification layer that has never caught a bug is indistinguishable
from one that cannot.  These helpers inject a *controlled* miscompile
into the kernel registry (mutating one generated source string and
dropping the materialized callable so the corrupt source is re-exec'd on
next use) so the tests — and the differential fuzzer's self-test mode —
can prove end-to-end that a single-gate kernel bug is caught, bundled,
shrunk, and replayed.

Nothing in this module runs in normal operation; it only ever mutates
the in-process registry, never files on disk.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..circuit.netlist import Circuit
from ..sim.compile import generate_logic_source, get_compiled

__all__ = ["corrupt_source", "plant_kernel_bug", "plant_logic_bug"]

#: Operator swaps attempted in order; the first one present in the source
#: is applied exactly once.  Each changes the semantics of a single gate.
_SWAPS: Tuple[Tuple[str, str], ...] = (
    (" & ", " | "),
    (" | ", " & "),
    (" ^ mask", ""),
    (" ^ ", " & "),
    # Last resort (cone kernels made of pure buffers/inverters): invert
    # the injected value itself.
    ("fstart", "(fstart ^ mask)"),
)


def corrupt_source(source: str) -> Tuple[str, str]:
    """Return ``(corrupted, description)`` — one operator swapped once.

    Raises :class:`ValueError` when the source contains none of the
    swappable operators (degenerate single-buffer kernels).
    """
    # Never mutate the first line — that's the kernel's def signature.
    body_start = source.find("\n") + 1
    for old, new in _SWAPS:
        index = source.find(old, body_start)
        if index < 0:
            continue
        corrupted = source[:index] + new + source[index + len(old):]
        line = source.count("\n", 0, index) + 1
        return corrupted, f"swapped {old.strip() or old!r} -> {new.strip() or 'nothing'} at line {line}"
    raise ValueError("kernel source has no corruptible operator")


def plant_kernel_bug(circuit: Circuit, key: str) -> str:
    """Corrupt the already-generated kernel ``key`` for ``circuit``.

    The source must exist in the registry (run the kernel once first, or
    use :func:`plant_logic_bug` which generates it).  Existing
    *simulator-level* caches are unaffected — build a **new** simulator
    after planting so it materializes the corrupt source.

    Returns a one-line description of the mutation (for test messages).
    """
    entry = get_compiled(circuit)
    source = entry.sources.get(key)
    if source is None:
        raise KeyError(
            f"kernel {key!r} has no generated source for "
            f"{circuit.name!r}; run it once before planting"
        )
    corrupted, description = corrupt_source(source)
    entry.sources[key] = corrupted
    # Reach into the materialized-callable cache so the next
    # ``function(key, ...)`` re-execs the corrupt source.
    entry._fns.pop(key, None)
    return description


def plant_logic_bug(circuit: Circuit, key: Optional[str] = None) -> str:
    """Plant a miscompile in the good-machine ``logic`` kernel.

    Generates the logic source if it is not cached yet, then corrupts it.
    """
    entry = get_compiled(circuit)
    if "logic" not in entry.sources:
        entry.sources["logic"] = generate_logic_source(circuit)
    return plant_kernel_bug(circuit, key or "logic")
