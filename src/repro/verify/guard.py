"""Sampled shadow verification: the ``GuardedSession`` / ``guard=`` mode.

Every fast path in this library is a *fast path with a slower arbiter*:
compiled kernels vs the interpreted gate walk, the incremental COP
evaluator vs a full :func:`~repro.core.virtual.evaluate_placement` pass,
solver claims vs independent re-evaluation.  A :class:`Guard`
re-executes a configurable, seeded fraction of fast-path results against
the arbiter *at run time* and raises a structured
:class:`~repro.errors.DivergenceError` — carrying a self-contained,
replayable repro bundle — on the first mismatch.

Two ways to turn it on:

* explicitly: ``FaultSimulator(circuit, guard=Guard(fraction=0.05))``
  (also ``cop_measures(..., guard=...)``,
  ``IncrementalEvaluator(..., guard=...)``);
* ambiently: ``with GuardedSession(fraction=0.05): ...`` guards every
  component in the dynamic scope that was not given an explicit guard,
  and additionally certifies every solver result produced inside it.

Sampling is seeded and deterministic: the same workload under the same
guard checks the same results.  ``fraction=1.0`` checks everything (the
property-test setting); the default 1% keeps guard-mode overhead on the
fault-sim bench well under the 10% budget (measured by
``benchmarks/perf/run_perf.py`` and recorded in BENCH_PERF.json).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import obs
from ..errors import DivergenceError
from .bundle import write_bundle

__all__ = [
    "DEFAULT_FRACTION",
    "DEFAULT_BUNDLE_DIR",
    "Guard",
    "GuardedSession",
    "active_guard",
]

#: Fraction of fast-path results shadow-checked by default.
DEFAULT_FRACTION = 0.01

#: Where repro bundles land unless the guard says otherwise.
DEFAULT_BUNDLE_DIR = "repro_bundles"


class Guard:
    """Seeded sampling + divergence reporting shared by all self-checks.

    Parameters
    ----------
    fraction:
        Probability that any given fast-path result is shadow-checked
        (``1.0`` = always, ``0.0`` = never; solver certification is not
        sampled — solver outputs are few and the claim is the paper's
        headline result).
    seed:
        Seed of the sampling stream; same seed + same call sequence =
        same checks.
    bundle_dir:
        Directory divergence repro bundles are written to.
    certify:
        Whether solver outputs produced under this guard are certified
        (:func:`repro.verify.certify.certify_solution`).
    """

    def __init__(
        self,
        fraction: float = DEFAULT_FRACTION,
        seed: int = 0,
        bundle_dir: Union[str, Path, None] = None,
        certify: bool = True,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("guard fraction must lie in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self.bundle_dir = Path(bundle_dir or DEFAULT_BUNDLE_DIR)
        self.certify = certify
        self._rng = random.Random(seed)
        #: Shadow checks performed / divergences found over the guard's
        #: lifetime (also exported as ``guard.checks`` /
        #: ``guard.divergences`` obs counters).
        self.checks = 0
        self.divergences = 0

    # ------------------------------------------------------------------
    def should_check(self) -> bool:
        """Seeded coin flip at the configured sampling fraction."""
        if self.fraction >= 1.0:
            return True
        if self.fraction <= 0.0:
            return False
        return self._rng.random() < self.fraction

    def confirm(
        self,
        kind: str,
        *,
        expected,
        actual,
        circuit,
        context: Optional[dict] = None,
        sources: Optional[Dict[str, str]] = None,
        message: str = "",
    ) -> None:
        """Record one shadow check; raise on mismatch.

        ``expected`` is the arbiter's result, ``actual`` the fast path's.
        Equality must be exact — every fast path in this library promises
        bit-identical results, so there is no tolerance to tune.
        """
        self.checks += 1
        obs.count("guard.checks")
        if expected == actual:
            return
        self.diverge(
            kind,
            expected=expected,
            actual=actual,
            circuit=circuit,
            context=context,
            sources=sources,
            message=message or "fast path disagrees with arbiter",
        )

    def diverge(
        self,
        kind: str,
        *,
        expected,
        actual,
        circuit,
        context: Optional[dict] = None,
        sources: Optional[Dict[str, str]] = None,
        message: str = "",
    ) -> None:
        """Write the repro bundle and raise :class:`DivergenceError`."""
        self.divergences += 1
        obs.count("guard.divergences")
        bundle_path: Optional[str] = None
        try:
            bundle_path = str(
                write_bundle(
                    kind,
                    circuit=circuit,
                    context=context or {},
                    expected=expected,
                    actual=actual,
                    message=message,
                    sources=sources,
                    bundle_dir=self.bundle_dir,
                )
            )
        except Exception as exc:  # the divergence still must surface
            obs.event(
                "guard.bundle_write_failed",
                kind=kind,
                error=type(exc).__name__,
                detail=str(exc)[:200],
            )
        obs.event("guard.divergence", kind=kind, bundle=bundle_path)
        raise DivergenceError(kind, message, bundle_path)


#: Ambient guard stack managed by :class:`GuardedSession` (innermost wins).
_STACK: List[Guard] = []


def active_guard(explicit: Optional[Guard] = None) -> Optional[Guard]:
    """The guard in effect: an explicit ``guard=`` beats the ambient one."""
    if explicit is not None:
        return explicit
    return _STACK[-1] if _STACK else None


class GuardedSession:
    """Context manager installing an ambient :class:`Guard`.

    ::

        with GuardedSession(fraction=0.05, seed=0) as guard:
            solution = solve_with_fallback(problem)   # certified
            FaultSimulator(circuit).run(stim, 1024)   # shadow-sampled
        guard.checks, guard.divergences               # session totals

    Nesting is allowed; the innermost session wins for components that
    did not receive an explicit ``guard=``.
    """

    def __init__(
        self,
        fraction: float = DEFAULT_FRACTION,
        seed: int = 0,
        bundle_dir: Union[str, Path, None] = None,
        certify: bool = True,
    ) -> None:
        self.guard = Guard(
            fraction=fraction, seed=seed, bundle_dir=bundle_dir,
            certify=certify,
        )

    def __enter__(self) -> Guard:
        _STACK.append(self.guard)
        obs.event(
            "guard.session_start",
            fraction=self.guard.fraction,
            seed=self.guard.seed,
        )
        return self.guard

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STACK.remove(self.guard)
        obs.event(
            "guard.session_end",
            checks=self.guard.checks,
            divergences=self.guard.divergences,
        )
        return False
