"""Deterministic re-execution of repro bundles (``repro-tpi replay``).

Every divergence bundle carries its complete replay inputs — the circuit
``.bench``, the exact kernel *sources* that produced the fast-path
result (a miscompiled kernel replays as miscompiled, even though a fresh
process would regenerate correct code), seeds, pattern configs, and both
recorded results.  :func:`replay_bundle` re-runs the recorded comparison
from those inputs and reports whether the divergence reproduces.

Exit-code contract of the CLI command: ``0`` when the divergence
reproduces (the bundle is a confirmed, actionable failure), ``1`` when
it does not (stale bundle / environment-dependent flake), ``2`` for an
unreadable or unsupported bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..core.incremental import IncrementalEvaluator
from ..core.virtual import evaluate_placement
from ..sim.compile import clear_registry, seed_registry
from ..sim.fault_sim import FaultSimulator
from ..sim.logic_sim import LogicSimulator
from ..testability.cop import cop_measures
from .bundle import (
    fault_from_payload,
    jsonable,
    load_bundle,
    point_from_payload,
    problem_from_payload,
    solution_from_payload,
)
from .certify import certify_solution

__all__ = ["ReplayResult", "replay_bundle"]


@dataclass
class ReplayResult:
    """Outcome of replaying one bundle."""

    kind: str
    reproduced: bool
    detail: str
    bundle: str

    def describe(self) -> str:
        verdict = "REPRODUCED" if self.reproduced else "not reproduced"
        return f"{self.kind}: {verdict} — {self.detail} ({self.bundle})"


def _seed_sources(circuit, manifest) -> None:
    """Install the bundle's recorded kernel sources for this circuit.

    The registry is cleared first so a previously-compiled (correct)
    kernel for the same structure cannot shadow the recorded one.
    """
    clear_registry()
    sources = manifest.get("sources") or {}
    if sources:
        seed_registry(circuit, dict(sources))


def _words(context, key) -> dict:
    return {name: int(word) for name, word in context[key].items()}


def _fast_kernel(context) -> str:
    """Backend the fast path ran on when the bundle was written.

    Compiled divergences replay against the recorded kernel *sources*;
    numpy divergences have no per-circuit sources, so they replay on the
    current array engine — only engine bugs (not transient state) will
    reproduce there.
    """
    return context.get("kernel") or "compiled"


def _replay_fault_sim(manifest, circuit) -> tuple:
    context = manifest["context"]
    fault = fault_from_payload(context["fault"])
    n_patterns = int(context["n_patterns"])
    good_values = _words(context, "good_values")
    variant = context.get("variant", "detect")
    _seed_sources(circuit, manifest)
    kernel = _fast_kernel(context)
    fast_sim = FaultSimulator(circuit, kernel=kernel)
    arbiter_sim = FaultSimulator(circuit, kernel="interp")
    if variant == "diffs":
        fast = fast_sim.simulate_fault_responses(fault, good_values, n_patterns)
        slow = arbiter_sim.simulate_fault_responses(
            fault, good_values, n_patterns
        )
    else:
        fast = fast_sim.simulate_fault(fault, good_values, n_patterns)
        slow = arbiter_sim.simulate_fault(fault, good_values, n_patterns)
        if fast == slow and kernel == "numpy":
            # The recorded word may have come from the numpy backend's
            # batched full-circuit strategy rather than a cone walk; a
            # batch-only engine bug reproduces only on that path.
            batched = fast_sim.run(
                {}, n_patterns, good_values=good_values
            ).detection_word.get(fault)
            if batched is not None:
                fast = batched
    return fast, slow, f"fault {fault} over {n_patterns} patterns"


def _replay_logic_sim(manifest, circuit) -> tuple:
    context = manifest["context"]
    stimulus = _words(context, "stimulus")
    n_patterns = int(context["n_patterns"])
    _seed_sources(circuit, manifest)
    fast = LogicSimulator(circuit, kernel=_fast_kernel(context)).run(
        stimulus, n_patterns
    )
    slow = LogicSimulator(circuit, kernel="interp").run(stimulus, n_patterns)
    return dict(fast), dict(slow), f"logic sim over {n_patterns} patterns"


def _replay_coverage(manifest, circuit) -> tuple:
    context = manifest["context"]
    stimulus = _words(context, "stimulus")
    n_patterns = int(context["n_patterns"])
    block = int(context.get("block", 64))
    _seed_sources(circuit, manifest)
    sim = FaultSimulator(circuit, kernel=_fast_kernel(context))
    exact = sim.run(stimulus, n_patterns)
    dropped = sim.run_coverage(stimulus, n_patterns, block=block)

    def summary(res):
        return {
            "coverage": res.coverage(),
            "first_detect": {str(f): i for f, i in res.first_detect.items()},
        }

    return (
        summary(dropped),
        summary(exact),
        f"fault dropping (block={block}) vs exact run",
    )


def _replay_cop(manifest, circuit) -> tuple:
    context = manifest["context"]
    input_probabilities = context.get("input_probabilities") or None
    stem_combine = context.get("stem_combine", "or")
    _seed_sources(circuit, manifest)

    def result_payload(res):
        return {
            "probability": res.probability,
            "observability": res.observability,
            "branch_observability": res.branch_observability,
        }

    fast = result_payload(
        cop_measures(
            circuit, input_probabilities, stem_combine=stem_combine,
            kernel=_fast_kernel(context),
        )
    )
    slow = result_payload(
        cop_measures(
            circuit, input_probabilities, stem_combine=stem_combine,
            kernel="interp",
        )
    )
    return fast, slow, f"COP measures (stem_combine={stem_combine})"


def _evaluation_payload(evaluation) -> dict:
    return {
        "stem_pre": evaluation.stem_pre,
        "stem_post": evaluation.stem_post,
        "wire_obs": evaluation.wire_obs,
        "branch_pre": evaluation.branch_pre,
        "branch_post": evaluation.branch_post,
        "branch_obs": evaluation.branch_obs,
        "stem_post_obs": evaluation.stem_post_obs,
    }


def _replay_placement(manifest, circuit) -> tuple:
    context = manifest["context"]
    problem = problem_from_payload(circuit, context["problem"])
    points = [point_from_payload(p) for p in context["points"]]
    _seed_sources(circuit, manifest)
    fast = _evaluation_payload(
        evaluate_placement(problem, points, kernel=_fast_kernel(context))
    )
    slow = _evaluation_payload(
        evaluate_placement(problem, points, kernel="interp")
    )
    return fast, slow, f"virtual placement of {len(points)} point(s)"


def _replay_incremental(manifest, circuit) -> tuple:
    context = manifest["context"]
    problem = problem_from_payload(circuit, context["problem"])
    base_points = [point_from_payload(p) for p in context["base_points"]]
    points = [point_from_payload(p) for p in context["points"]]
    kernel = context.get("kernel") or "interp"
    _seed_sources(circuit, manifest)
    inc = IncrementalEvaluator(problem, base_points, kernel=kernel)
    fast = _evaluation_payload(inc.evaluate(points))
    slow = _evaluation_payload(
        evaluate_placement(problem, points, kernel="interp")
    )
    detail = (
        f"incremental delta over base of {len(base_points)} point(s) "
        f"-> {len(points)} point(s)"
    )
    return fast, slow, detail


def _replay_solver(manifest, circuit) -> ReplayResult:
    from ..errors import DivergenceError

    context = manifest["context"]
    problem = problem_from_payload(circuit, context["problem"])
    solution = solution_from_payload(context["solution"])
    dp_check = None
    dp_context = context.get("dp")
    if dp_context is not None:
        from ..core.dp import quantized_tree_check
        from ..core.quantize import ProbabilityGrid

        grid_values = dp_context.get("grid_values")
        grid = (
            ProbabilityGrid(values=grid_values)
            if grid_values is not None
            else None
        )
        enforced = {
            name: tuple(flags)
            for name, flags in (dp_context.get("enforced_faults") or {}).items()
        }

        def dp_check(points):
            return quantized_tree_check(
                problem,
                points,
                grid=grid,
                root_observabilities=dp_context.get("root_observabilities"),
                leaf_probabilities=dp_context.get("leaf_probabilities"),
                enforced_faults=enforced or None,
                margin=dp_context.get("margin", 1.0),
            )

    try:
        certify_solution(problem, solution, dp_check=dp_check)
    except DivergenceError as exc:
        return ReplayResult(
            kind=manifest["kind"],
            reproduced=exc.kind == manifest["kind"],
            detail=f"re-certification raised {exc.kind}: {exc._raw_message()}",
            bundle="",
        )
    return ReplayResult(
        kind=manifest["kind"],
        reproduced=False,
        detail="re-certification accepted the recorded solution",
        bundle="",
    )


def _replay_dp_vs_exhaustive(manifest, circuit) -> tuple:
    from ..core.dp import quantized_tree_check, solve_tree
    from ..core.exhaustive import solve_exhaustive

    context = manifest["context"]
    problem = problem_from_payload(circuit, context["problem"])
    dp = solve_tree(problem)
    exhaustive = solve_exhaustive(
        problem,
        feasibility=lambda pts: quantized_tree_check(problem, pts),
        max_subset_size=int(context.get("max_subset_size", 4)),
    )
    fast = {"cost": dp.cost, "feasible": dp.feasible}
    slow = {"cost": exhaustive.cost, "feasible": exhaustive.feasible}
    return fast, slow, "DP vs exhaustive under the quantized objective"


def _replay_parallel(manifest, circuit) -> tuple:
    from ..sim.parallel import run_parallel

    context = manifest["context"]
    stimulus = _words(context, "stimulus")
    n_patterns = int(context["n_patterns"])
    jobs = int(context.get("jobs", 2))
    mode = context.get("mode", "exact")
    kernel = _fast_kernel(context)
    _seed_sources(circuit, manifest)
    parallel = run_parallel(
        circuit, stimulus, n_patterns, jobs=jobs, mode=mode, kernel=kernel
    )
    serial = FaultSimulator(circuit, kernel=kernel).run(
        stimulus, n_patterns
    )
    fast = {str(f): w for f, w in parallel.detection_word.items()}
    slow = {str(f): w for f, w in serial.detection_word.items()}
    return fast, slow, f"parallel jobs={jobs} vs serial"


#: kind (or "prefix.") → replayer.  Two-result replayers return
#: ``(fast, slow, detail)``; ``solver.`` handles its own verdict.
_REPLAYERS = {
    "fault_sim.cone": _replay_fault_sim,
    "fuzz.fault_sim": _replay_fault_sim,
    "fuzz.logic_sim": _replay_logic_sim,
    "fuzz.coverage": _replay_coverage,
    "cop.measures": _replay_cop,
    "fuzz.cop": _replay_cop,
    "fuzz.placement": _replay_placement,
    "incremental.evaluate": _replay_incremental,
    "fuzz.incremental": _replay_incremental,
    "fuzz.dp_vs_exhaustive": _replay_dp_vs_exhaustive,
    "fuzz.parallel": _replay_parallel,
}


def replay_bundle(path: Union[str, Path]) -> ReplayResult:
    """Re-run the comparison recorded in the bundle at ``path``."""
    manifest, circuit = load_bundle(path)
    kind = manifest["kind"]
    try:
        if kind.startswith("solver."):
            result = _replay_solver(manifest, circuit)
            result.bundle = str(path)
            return result
        replayer = _REPLAYERS.get(kind)
        if replayer is None:
            raise ValueError(f"no replayer for bundle kind {kind!r}")
        fast, slow, detail = replayer(manifest, circuit)
        reproduced = jsonable(fast) != jsonable(slow)
        return ReplayResult(
            kind=kind,
            reproduced=reproduced,
            detail=detail,
            bundle=str(path),
        )
    finally:
        # The bundle's (possibly corrupt) kernel sources were seeded into
        # the process-wide registry; never leak them past the replay.
        clear_registry()
