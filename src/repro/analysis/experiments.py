"""Experiment runners behind the benchmark harness (T1–T4, F1–F4).

Each function reproduces one table or figure of the reconstructed
evaluation (DESIGN.md §5) and returns structured data plus a rendered
table, so the pytest-benchmark entries in ``benchmarks/`` stay thin and the
same logic is importable from notebooks and examples.

Long runs are expected to hit bad inputs and budget exhaustion (general
TPI is NP-complete), so the module also hosts the *hardened* drivers
(DESIGN.md §8): :func:`run_circuit_sweep` isolates per-circuit crashes and
checkpoints every outcome to a JSONL results file so a killed sweep
resumes where it stopped, and :func:`run_experiments_checkpointed` does
the same at experiment granularity.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..circuit.analysis import has_reconvergent_fanout, is_fanout_free
from ..ioutil import atomic_write_text, read_jsonl_tolerant
from ..circuit.bench_io import parse_bench_file
from ..circuit.generators import random_tree
from ..circuit.library import benchmark, benchmark_names
from ..circuit.netlist import Circuit
from ..circuit.verilog_io import parse_verilog_file
from ..core.cascade import DEFAULT_CASCADE, solve_with_fallback
from ..core.dp import quantized_tree_check, solve_tree
from ..core.evaluate import CoverageReport, evaluate_solution, measure_coverage
from ..core.exhaustive import solve_exhaustive
from ..core.greedy import solve_greedy
from ..core.heuristic import solve_dp_heuristic
from ..core.prepare import prepare_for_tpi
from ..core.problem import TPIProblem, TPISolution
from ..core.quantize import ProbabilityGrid
from ..core.random_placement import solve_random
from ..core.virtual import evaluate_placement
from ..errors import BudgetExceededError, ExperimentError, ParseError
from ..resilience import Budget
from ..sim.faults import all_stuck_at_faults, collapse_faults
from ..sim.patterns import UniformRandomSource
from .tables import Table

__all__ = [
    "ExperimentResult",
    "SweepOutcome",
    "execute_experiment_job",
    "execute_sweep_job",
    "run_circuit_sweep",
    "experiment_runners",
    "run_experiments_checkpointed",
    "run_t1_circuit_characteristics",
    "run_t2_dp_optimality",
    "run_t3_tree_solver_comparison",
    "run_t4_coverage_improvement",
    "run_f1_points_curve",
    "run_f2_runtime_scaling",
    "run_f3_testlength_curves",
    "run_f4_quantization_ablation",
    "run_e1_misr_aliasing",
    "run_e2_margin_ablation",
    "run_e3_strategy_comparison",
    "run_e4_multiphase",
    "run_e5_weighted_random",
]


@dataclass
class ExperimentResult:
    """One experiment's output: identifier, structured rows, rendered text."""

    experiment_id: str
    description: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def table(self) -> Table:
        """Render the rows into a :class:`~repro.analysis.tables.Table`."""
        t = Table(self.headers)
        for row in self.rows:
            t.add_row(row)
        return t

    def render(self) -> str:
        """Full text block: id, description, table."""
        return self.table().render(
            title=f"[{self.experiment_id}] {self.description}"
        )


# ----------------------------------------------------------------- T1
def run_t1_circuit_characteristics(
    names: Optional[Sequence[str]] = None,
    n_patterns: int = 1024,
    seed: int = 1,
) -> ExperimentResult:
    """T1 — benchmark suite characteristics and baseline coverage."""
    result = ExperimentResult(
        experiment_id="T1",
        description="benchmark characteristics + baseline LFSR coverage",
        headers=[
            "circuit",
            "inputs",
            "gates",
            "depth",
            "stems",
            "faults",
            "fanout-free",
            "reconvergent",
            f"cov@{n_patterns}",
        ],
    )
    for name in names or benchmark_names():
        circuit = benchmark(name)
        stats = circuit.stats()
        collapsed = collapse_faults(circuit)
        sim = measure_coverage(
            circuit, n_patterns, UniformRandomSource(seed=seed)
        )
        result.rows.append(
            [
                name,
                stats["inputs"],
                stats["gates"],
                stats["depth"],
                stats["stems"],
                collapsed.size(),
                is_fanout_free(circuit),
                has_reconvergent_fanout(circuit),
                sim.coverage(),
            ]
        )
    return result


# ----------------------------------------------------------------- T2
def run_t2_dp_optimality(
    n_trees: int = 8,
    tree_gates: int = 6,
    thresholds: Sequence[float] = (0.02, 0.05, 0.10),
    grid: Optional[ProbabilityGrid] = None,
) -> ExperimentResult:
    """T2 — DP cost equals the exhaustive optimum on small trees.

    Both solvers score feasibility with the same quantized algebra, so the
    comparison is apples-to-apples; a mismatch anywhere is a bug.
    """
    result = ExperimentResult(
        experiment_id="T2",
        description="DP vs exhaustive optimum (quantized algebra)",
        headers=["tree", "theta", "dp cost", "optimal cost", "match"],
    )
    for seed in range(n_trees):
        circuit = random_tree(tree_gates, seed=seed)
        for theta in thresholds:
            problem = TPIProblem(circuit=circuit, threshold=theta)
            g = grid or ProbabilityGrid.for_threshold(theta)
            dp = solve_tree(problem, grid=g)

            def check(points, _problem=problem, _g=g):
                return quantized_tree_check(_problem, points, grid=_g)

            exhaustive = solve_exhaustive(
                problem, feasibility=check, max_subset_size=4
            )
            result.rows.append(
                [
                    circuit.name,
                    theta,
                    dp.cost,
                    exhaustive.cost,
                    abs(dp.cost - exhaustive.cost) < 1e-9,
                ]
            )
    return result


# ----------------------------------------------------------------- T3
def run_t3_tree_solver_comparison(
    tree_specs: Optional[Sequence[Tuple[int, int]]] = None,
    n_patterns: int = 4096,
    escape_budget: float = 0.001,
    margin: float = 2.0,
) -> ExperimentResult:
    """T3 — DP vs greedy vs random placement cost on fanout-free circuits.

    All three solvers plan against the *same* requirement — θ × margin —
    so the comparison is apples-to-apples (the DP needs the margin to cover
    quantization slack; giving the baselines a looser target would hand
    them an unfair discount).  Feasibility of every solution is then
    verified at the planning threshold with the continuous evaluator.
    """
    if tree_specs is None:
        tree_specs = [(20, 0), (20, 1), (40, 2), (40, 3), (60, 4), (80, 5)]
    result = ExperimentResult(
        experiment_id="T3",
        description="solver cost comparison on fanout-free circuits",
        headers=[
            "circuit",
            "gates",
            "dp cost",
            "greedy cost",
            "random cost",
            "dp feasible",
            "greedy feasible",
        ],
    )
    for gates, seed in tree_specs:
        circuit = random_tree(gates, seed=seed)
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=n_patterns, escape_budget=escape_budget
        )
        # One shared planning requirement for every solver.
        planning = TPIProblem(
            circuit=circuit,
            threshold=min(problem.threshold * margin, 1.0),
            costs=problem.costs,
            allowed_types=problem.allowed_types,
            input_probabilities=problem.input_probabilities,
        )
        dp = solve_tree(planning)
        # Verification happens at the *original* threshold: the margin is
        # exactly the slack that keeps the quantized plan valid there.
        dp_ok = evaluate_placement(problem, dp.points).is_feasible()
        greedy = solve_greedy(planning)
        rnd = solve_random(planning, seed=seed)
        result.rows.append(
            [
                circuit.name,
                gates,
                dp.cost,
                greedy.cost,
                rnd.cost if rnd.feasible else None,
                dp.feasible and dp_ok,
                greedy.feasible,
            ]
        )
    return result


# ----------------------------------------------------------------- T4
def run_t4_coverage_improvement(
    names: Optional[Sequence[str]] = None,
    n_patterns: int = 4096,
    escape_budget: float = 0.001,
) -> Tuple[ExperimentResult, Dict[str, CoverageReport]]:
    """T4 — measured coverage before/after insertion on general circuits.

    The DP heuristic and greedy each plan a placement; both are physically
    inserted and fault simulated under the same pattern budget.
    """
    if names is None:
        names = ["eqcmp12", "wand16", "wor16", "corridor12", "rprmix", "rprmix_big"]
    result = ExperimentResult(
        experiment_id="T4",
        description=f"measured stuck-at coverage @ {n_patterns} patterns",
        headers=[
            "circuit",
            "faults",
            "base cov",
            "dp #cp",
            "dp #op",
            "dp cov",
            "greedy #tp",
            "greedy cov",
        ],
    )
    reports: Dict[str, CoverageReport] = {}
    for name in names:
        circuit = prepare_for_tpi(benchmark(name))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=n_patterns, escape_budget=escape_budget
        )
        dp_solution = solve_dp_heuristic(problem)
        dp_report = evaluate_solution(problem, dp_solution, n_patterns)
        greedy_solution = solve_greedy(problem)
        greedy_report = evaluate_solution(problem, greedy_solution, n_patterns)
        reports[name] = dp_report
        result.rows.append(
            [
                name,
                dp_report.n_faults,
                dp_report.baseline_coverage,
                dp_report.n_control,
                dp_report.n_observation,
                dp_report.modified_coverage,
                len(greedy_solution.points),
                greedy_report.modified_coverage,
            ]
        )
    return result, reports


# ----------------------------------------------------------------- F1
def run_f1_points_curve(
    name: str = "rprmix",
    n_patterns: int = 4096,
    escape_budget: float = 0.001,
) -> ExperimentResult:
    """F1 — measured coverage as a function of inserted point count.

    Prefixes of the DP-heuristic placement (in selection order) are
    inserted one point at a time; coverage should rise monotonically to the
    full-placement value (modulo random-pattern noise).
    """
    circuit = prepare_for_tpi(benchmark(name))
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=n_patterns, escape_budget=escape_budget
    )
    solution = solve_dp_heuristic(problem)
    result = ExperimentResult(
        experiment_id="F1",
        description=f"coverage vs #test points on {name}",
        headers=["#points", "cost", "coverage"],
    )
    for k in range(len(solution.points) + 1):
        prefix = TPISolution(
            points=solution.points[:k],
            cost=problem.costs.total(solution.points[:k]),
            feasible=False,
            method="prefix",
        )
        report = evaluate_solution(problem, prefix, n_patterns)
        result.rows.append([k, prefix.cost, report.modified_coverage])
    return result


# ----------------------------------------------------------------- F2
def run_f2_runtime_scaling(
    tree_sizes: Sequence[int] = (10, 20, 40, 80, 120),
    threshold: float = 0.02,
    exhaustive_limit: int = 12,
) -> ExperimentResult:
    """F2 — DP runtime grows polynomially; exhaustive explodes.

    Exhaustive search is only attempted on trees small enough to finish;
    larger entries show the DP alone.
    """
    result = ExperimentResult(
        experiment_id="F2",
        description="runtime scaling: DP (polynomial) vs exhaustive",
        headers=["gates", "dp seconds", "dp cost", "exhaustive seconds"],
    )
    grid = ProbabilityGrid.for_threshold(threshold)
    for gates in tree_sizes:
        circuit = random_tree(gates, seed=13)
        problem = TPIProblem(circuit=circuit, threshold=threshold)
        with obs.timed("experiments.f2.dp", gates=gates) as dp_span:
            dp = solve_tree(problem, grid=grid)
        ex_seconds: Optional[float] = None
        if gates <= exhaustive_limit:
            def check(points, _p=problem, _g=grid):
                return quantized_tree_check(_p, points, grid=_g)

            with obs.timed("experiments.f2.exhaustive", gates=gates) as ex_span:
                solve_exhaustive(problem, feasibility=check, max_subset_size=3)
            ex_seconds = ex_span.seconds
        result.rows.append([gates, dp_span.seconds, dp.cost, ex_seconds])
    return result


# ----------------------------------------------------------------- F3
def run_f3_testlength_curves(
    name: str = "eqcmp12",
    n_patterns: int = 8192,
    escape_budget: float = 0.001,
) -> ExperimentResult:
    """F3 — coverage vs test length before and after insertion.

    The after-insertion curve must dominate the baseline and reach its
    plateau earlier — the "curve shifts up and left" figure.
    """
    circuit = prepare_for_tpi(benchmark(name))
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=n_patterns, escape_budget=escape_budget
    )
    solution = solve_dp_heuristic(problem)
    report = evaluate_solution(problem, solution, n_patterns)
    result = ExperimentResult(
        experiment_id="F3",
        description=f"coverage vs test length on {name} (before/after TPI)",
        headers=["patterns", "baseline", "with test points"],
    )
    modified = dict(report.modified_curve)
    for n, base_cov in report.baseline_curve:
        result.rows.append([n, base_cov, modified.get(n)])
    return result


# ----------------------------------------------------------------- F4
def run_f4_quantization_ablation(
    tree_gates: int = 40,
    seed: int = 2,
    threshold: float = 0.01,
    ratios: Sequence[float] = (4.0, 2.0, 1.5, 1.25),
) -> ExperimentResult:
    """F4 — grid density vs DP cost and runtime.

    Finer geometric ratios enlarge the grid; cost should plateau while
    runtime grows — the knob's practical operating point.
    """
    circuit = random_tree(tree_gates, seed=seed)
    problem = TPIProblem(circuit=circuit, threshold=threshold)
    result = ExperimentResult(
        experiment_id="F4",
        description="quantization ablation: grid density vs cost/runtime",
        headers=["ratio", "grid size", "dp cost", "seconds", "continuous ok"],
    )
    for ratio in ratios:
        grid = ProbabilityGrid.for_threshold(threshold, ratio=ratio)
        with obs.timed(
            "experiments.f4.dp", ratio=ratio, grid_size=len(grid)
        ) as dp_span:
            dp = solve_tree(problem, grid=grid)
        ok = evaluate_placement(problem, dp.points).is_feasible()
        result.rows.append([ratio, len(grid), dp.cost, dp_span.seconds, ok])
    return result


# ----------------------------------------------------------------- E1
def run_e1_misr_aliasing(
    widths: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    n_patterns: int = 128,
    seed: int = 5,
) -> ExperimentResult:
    """E1 (extension) — signature aliasing rate vs MISR width.

    Theory predicts an aliasing probability approaching ``2^-k`` for a
    ``k``-bit MISR; the table reports the measured rate next to it.
    """
    from ..bist import BISTArchitecture, run_bist
    from ..circuit.generators import random_dag

    circuit = random_dag(10, 120, seed=seed)
    result = ExperimentResult(
        experiment_id="E1",
        description="MISR width vs measured signature aliasing",
        headers=[
            "misr width",
            "output detected",
            "signature detected",
            "aliased",
            "measured rate",
            "2^-k",
        ],
    )
    for width in widths:
        report = run_bist(
            circuit, BISTArchitecture(n_patterns=n_patterns, misr_width=width)
        )
        result.rows.append(
            [
                width,
                len(report.output_detected),
                len(report.signature_detected),
                len(report.aliased),
                report.aliasing_rate,
                2.0**-width,
            ]
        )
    return result


# ----------------------------------------------------------------- E2
def run_e2_margin_ablation(
    margins: Sequence[float] = (1.0, 1.25, 1.5, 2.0, 3.0),
    tree_gates: int = 60,
    seed: int = 9,
    n_patterns: int = 4096,
) -> ExperimentResult:
    """E2 (extension) — DP planning margin vs cost and continuous validity.

    The margin plans against θ×margin to cover quantization slack: too
    small and the continuous model may reject the plan, too large and the
    DP over-inserts.  The table locates the knee.
    """
    circuit = random_tree(tree_gates, seed=seed)
    problem = TPIProblem.from_test_length(circuit, n_patterns=n_patterns)
    result = ExperimentResult(
        experiment_id="E2",
        description="DP planning margin vs cost / continuous feasibility",
        headers=["margin", "dp cost", "#points", "continuous ok"],
    )
    for margin in margins:
        solution = solve_tree(problem, margin=margin)
        ok = evaluate_placement(problem, solution.points).is_feasible()
        result.rows.append(
            [margin, solution.cost, len(solution.points), ok]
        )
    return result


# ----------------------------------------------------------------- E3
def run_e3_strategy_comparison(
    names: Optional[Sequence[str]] = None,
    n_patterns: int = 4096,
) -> ExperimentResult:
    """E3 (extension) — fix the patterns or fix the circuit?

    The historical fork in random-pattern-resistance: deterministic
    top-off cubes (ATPG, this library's PODEM) versus test point insertion
    (the paper).  Both reach full coverage; the currencies differ — stored
    deterministic patterns vs inserted hardware.
    """
    from ..atpg import top_off

    if names is None:
        names = ["eqcmp12", "wand16", "corridor12", "rprmix"]
    result = ExperimentResult(
        experiment_id="E3",
        description=f"random-only vs ATPG top-off vs TPI @ {n_patterns} patterns",
        headers=[
            "circuit",
            "random cov",
            "topoff cov",
            "#cubes",
            "tpi cov",
            "#points",
        ],
    )
    for name in names:
        circuit = prepare_for_tpi(benchmark(name))
        topoff_report = top_off(circuit, n_random_patterns=n_patterns)
        problem = TPIProblem.from_test_length(circuit, n_patterns=n_patterns)
        solution = solve_dp_heuristic(problem)
        tpi_report = evaluate_solution(problem, solution, n_patterns)
        result.rows.append(
            [
                name,
                topoff_report.random_coverage,
                topoff_report.final_coverage,
                topoff_report.n_deterministic_patterns,
                tpi_report.modified_coverage,
                len(solution.points),
            ]
        )
    return result


# ----------------------------------------------------------------- E4
def run_e4_multiphase(
    names: Optional[Sequence[str]] = None,
    n_patterns: int = 4096,
) -> ExperimentResult:
    """E4 (extension) — always-random vs multi-phase fixed-value CPs.

    The same placement is driven two ways: every control point fed by an
    independent pseudo-random signal (the 1987 scheme), or grouped into
    fixed-value phases (the successor scheme).  Expected shape: phased
    operation matches random-driven coverage with only a couple of phases
    — confirming that few of the 2^K control combinations matter.
    """
    from ..core.evaluate import evaluate_solution
    from ..core.phases import measure_phase_coverage, schedule_phases
    from ..core.problem import TestPointType

    fixed_types = (
        TestPointType.OBSERVATION,
        TestPointType.CONTROL_AND,
        TestPointType.CONTROL_OR,
    )
    if names is None:
        names = ["wand16", "wor16", "rprmix", "eqcmp12"]
    result = ExperimentResult(
        experiment_id="E4",
        description="random-driven vs multi-phase fixed-value control points",
        headers=[
            "circuit",
            "#points",
            "random-driven cov",
            "#phases",
            "phased cov",
        ],
    )
    for name in names:
        circuit = prepare_for_tpi(benchmark(name))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=n_patterns, allowed_types=fixed_types
        )
        solution = solve_dp_heuristic(problem)
        random_driven = evaluate_solution(problem, solution, n_patterns)
        plan = schedule_phases(problem, solution.points, n_patterns=n_patterns)
        phased_cov = measure_phase_coverage(problem, plan, n_patterns)
        result.rows.append(
            [
                name,
                len(solution.points),
                random_driven.modified_coverage,
                plan.n_phases,
                phased_cov,
            ]
        )
    return result


# ----------------------------------------------------------------- E5
def run_e5_weighted_random(
    names: Optional[Sequence[str]] = None,
    n_patterns: int = 4096,
    n_trials: int = 3,
) -> ExperimentResult:
    """E5 (extension) — weighted-random patterns vs test point insertion.

    Weighted random (biasing input probabilities) was the main
    pattern-side contemporary of TPI.  Expected shape: it rescues
    excitation-limited circuits (wide AND/OR cones) but is powerless on
    correlation-limited ones (equality comparators), where TPI still wins
    — the qualitative argument for circuit modification.
    """
    from ..sim.fault_sim import FaultSimulator
    from ..sim.patterns import WeightedRandomSource
    from ..testability.weights import optimize_weights

    if names is None:
        names = ["wand16", "wor16", "eqcmp12", "rprmix"]
    result = ExperimentResult(
        experiment_id="E5",
        description="uniform vs optimized weighted-random vs TPI (measured)",
        headers=[
            "circuit",
            "uniform cov",
            "weighted cov",
            "#biased inputs",
            "tpi cov",
            "#points",
        ],
    )
    for name in names:
        circuit = prepare_for_tpi(benchmark(name))
        sim = FaultSimulator(circuit)

        def measured(source) -> float:
            total = 0.0
            for trial in range(n_trials):
                source.seed = trial + 1
                stim = source.generate(circuit.inputs, n_patterns)
                total += sim.run(stim, n_patterns).coverage()
            return total / n_trials

        uniform_cov = measured(UniformRandomSource())
        weight_result = optimize_weights(circuit, n_patterns=n_patterns)
        weighted_cov = measured(
            WeightedRandomSource(weights=weight_result.weights)
        )
        problem = TPIProblem.from_test_length(circuit, n_patterns=n_patterns)
        solution = solve_dp_heuristic(problem)
        tpi_report = evaluate_solution(problem, solution, n_patterns)
        result.rows.append(
            [
                name,
                uniform_cov,
                weighted_cov,
                len(weight_result.biased_inputs()),
                tpi_report.modified_coverage,
                len(solution.points),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Hardened drivers: crash-isolated, checkpointed, resumable (DESIGN.md §8)
# ---------------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """One circuit's result inside a :func:`run_circuit_sweep` run.

    ``status`` is ``"ok"``, ``"parse_error"``, ``"budget_exceeded"`` or
    ``"error"`` (any other exception, recorded instead of propagated so a
    sweep survives individual circuits going wrong).  Failed circuits keep
    the error type and message; successful ones record which cascade stage
    produced the solution and how many stages were skipped over.
    """

    circuit: str
    path: str
    status: str
    solver: Optional[str] = None
    cost: Optional[float] = None
    n_points: Optional[int] = None
    fallbacks: Optional[int] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    # Measured-coverage extras (``measure_coverage=True`` sweeps only).
    # Defaults keep checkpoints from older sweeps loadable as-is.
    baseline_coverage: Optional[float] = None
    modified_coverage: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> str:
        """One checkpoint line (stable key order)."""
        return json.dumps(asdict(self), sort_keys=True)

    def describe(self) -> str:
        """One human-readable sweep-progress line."""
        if self.ok:
            extra = f" (+{self.fallbacks} fallbacks)" if self.fallbacks else ""
            if self.modified_coverage is not None:
                extra += (
                    f" cov={100 * (self.baseline_coverage or 0.0):.1f}%"
                    f"->{100 * self.modified_coverage:.1f}%"
                )
            return (
                f"{self.circuit:20s} ok: {self.solver} "
                f"cost={self.cost:g} points={self.n_points}{extra}"
            )
        return f"{self.circuit:20s} {self.status}: {self.error}"


def _load_netlist_file(path: Path) -> Circuit:
    if path.suffix in (".v", ".sv"):
        return parse_verilog_file(path)
    return parse_bench_file(path)


def _sweep_one(
    path: Path,
    n_patterns: int,
    escape_budget: float,
    budget: Optional[Budget],
    solvers: Sequence[str],
    measure_coverage: bool = False,
    jobs: int = 1,
) -> SweepOutcome:
    """Solve one circuit, converting every failure into a recorded outcome."""
    circuit_id = path.stem
    try:
        circuit = prepare_for_tpi(_load_netlist_file(path))
        problem = TPIProblem.from_test_length(
            circuit, n_patterns=n_patterns, escape_budget=escape_budget
        )
        solution = solve_with_fallback(
            problem,
            solvers=solvers,
            budget=budget.renewed() if budget is not None else None,
        )
        baseline_cov = modified_cov = None
        if measure_coverage:
            # Fault-dropping coverage mode: the sweep only needs the
            # numbers, never the full detection words.
            report = evaluate_solution(
                problem, solution, n_patterns, jobs=jobs, mode="coverage"
            )
            baseline_cov = report.baseline_coverage
            modified_cov = report.modified_coverage
        return SweepOutcome(
            circuit=circuit_id,
            path=str(path),
            status="ok",
            solver=solution.method,
            cost=solution.cost,
            n_points=len(solution.points),
            fallbacks=int(solution.stats.get("fallbacks", 0)),
            baseline_coverage=baseline_cov,
            modified_coverage=modified_cov,
        )
    except ParseError as exc:
        status = "parse_error"
        error: Exception = exc
    except BudgetExceededError as exc:
        status = "budget_exceeded"
        error = exc
    except Exception as exc:  # crash isolation: anything else is recorded
        status = "error"
        error = exc
    obs.event(
        "sweep_circuit_failed",
        circuit=circuit_id,
        status=status,
        error=type(error).__name__,
        reason=str(error),
    )
    obs.count("sweep.failures")
    obs.count(f"sweep.failures.{status}")
    return SweepOutcome(
        circuit=circuit_id,
        path=str(path),
        status=status,
        error_type=type(error).__name__,
        error=str(error),
    )


# ---------------------------------------------------------------------------
# Fabric executors and payload plumbing.  Executors are module-level and
# take/return plain JSON-able data: they are dispatched by kind inside
# worker processes (repro.fabric.worker) and their results land verbatim
# in the fabric's journal.  Domain failures (parse errors, budget
# exhaustion, experiment crashes) are *results* here, exactly as in the
# serial drivers; only an exception escaping the executor is a fabric
# failure that triggers retry/quarantine.
# ---------------------------------------------------------------------------
def _budget_spec(budget: Optional[Budget]) -> Optional[Dict[str, object]]:
    """JSON-able budget limits (clocks restart on reconstruction)."""
    if budget is None:
        return None
    return {
        "wall_ms": budget.wall_ms,
        "max_dp_cells": budget.limits["dp_cells"],
        "max_backtracks": budget.limits["backtracks"],
        "max_patterns": budget.limits["patterns"],
    }


def _budget_from_spec(spec: Optional[Dict[str, object]]) -> Optional[Budget]:
    if not spec:
        return None
    return Budget(
        wall_ms=spec.get("wall_ms"),  # type: ignore[arg-type]
        max_dp_cells=spec.get("max_dp_cells"),  # type: ignore[arg-type]
        max_backtracks=spec.get("max_backtracks"),  # type: ignore[arg-type]
        max_patterns=spec.get("max_patterns"),  # type: ignore[arg-type]
    )


def execute_sweep_job(payload: Dict[str, object]) -> dict:
    """Fabric executor for one sweep circuit (kind ``sweep_circuit``)."""
    outcome = _sweep_one(
        Path(str(payload["path"])),
        int(payload["n_patterns"]),  # type: ignore[arg-type]
        float(payload["escape_budget"]),  # type: ignore[arg-type]
        _budget_from_spec(payload.get("budget")),  # type: ignore[arg-type]
        tuple(payload.get("solvers") or DEFAULT_CASCADE),  # type: ignore[arg-type]
        measure_coverage=bool(payload.get("measure_coverage", False)),
        jobs=int(payload.get("jobs", 1)),  # type: ignore[arg-type]
    )
    return asdict(outcome)


def execute_experiment_job(payload: Dict[str, object]) -> dict:
    """Fabric executor for one experiment table (kind ``experiment``)."""
    key = str(payload["experiment"])
    runners = experiment_runners()
    if key not in runners:
        # A campaign bug, not a domain failure: let the fabric quarantine.
        raise ExperimentError(f"unknown experiment {key!r}")
    try:
        with obs.span(f"experiment.{key}"):
            rendered = runners[key]().render()
        return {"experiment": key, "status": "ok", "rendered": rendered}
    except Exception as exc:  # isolation: record, keep going
        obs.event(
            "experiment_failed",
            experiment=key,
            error=type(exc).__name__,
            reason=str(exc),
        )
        obs.count("experiments.failures")
        return {
            "experiment": key,
            "status": "error",
            "error_type": type(exc).__name__,
            "error": str(exc),
        }


def _sweep_content_key(path: Path) -> str:
    """Content address for one netlist file, most to least precise.

    Parseable circuits key on ``Circuit.structural_hash()`` — two files
    with identical structure under the same config are one fabric job.
    Unparseable files key on their raw bytes (the parse error *is* the
    result, and identical bytes fail identically); unreadable paths key
    on the path string (the read error is all there is).
    """
    try:
        return "circuit:" + _load_netlist_file(path).structural_hash()
    except Exception:
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()[:32]
            return "file:" + digest
        except OSError:
            return "path:" + str(path)


def _quarantine_checkpoint_lines(
    path: Path,
    lines: Sequence[str],
    reason: str,
    survivors: Optional[Sequence[str]] = None,
) -> Path:
    """Move unusable checkpoint lines to a ``.bad`` sidecar, loudly.

    The lines are preserved verbatim in the sidecar (appended — corruption
    is evidence, not garbage).  When ``survivors`` is given the checkpoint
    itself is atomically rewritten to just those lines, so the bad lines
    are *moved*, not copied, and the next resume is clean.
    """
    sidecar = path.with_name(path.name + ".bad")
    with sidecar.open("a", encoding="utf-8") as sink:
        for line in lines:
            sink.write(line + "\n")
    if survivors is not None:
        atomic_write_text(
            path, "".join(line + "\n" for line in survivors)
        )
    warnings.warn(
        f"quarantined {len(lines)} corrupt checkpoint line(s) from "
        f"{path} to {sidecar} ({reason}); resuming with the rest",
        RuntimeWarning,
        stacklevel=3,
    )
    obs.event(
        "sweep_checkpoint_quarantined",
        path=str(path),
        sidecar=str(sidecar),
        n_lines=len(lines),
        reason=reason,
    )
    obs.count("sweep.quarantined_lines", len(lines))
    return sidecar


def _read_checkpoint_lines(path: Path) -> List[dict]:
    """Parse a JSONL checkpoint, quarantining unparseable lines.

    A killed run tears at most the final line, but a corrupted disk or a
    concurrent writer can mangle any of them; every line that fails to
    decode (or decodes to a non-object) is moved to the ``.bad`` sidecar
    via :func:`_quarantine_checkpoint_lines` and the rest are returned.
    """
    records, good, bad = read_jsonl_tolerant(path)
    if bad:
        _quarantine_checkpoint_lines(
            path, bad, "undecodable JSONL", survivors=good
        )
    return records


def run_circuit_sweep(
    paths: Sequence[Union[str, Path]],
    results_path: Union[str, Path],
    *,
    n_patterns: int = 1024,
    escape_budget: float = 0.001,
    budget: Optional[Budget] = None,
    solvers: Sequence[str] = DEFAULT_CASCADE,
    resume: bool = True,
    max_circuits: Optional[int] = None,
    measure_coverage: bool = False,
    jobs: int = 1,
    fabric: bool = False,
    workers: int = 1,
    lease_timeout_s: float = 30.0,
    chaos=None,
    interrupt=None,
    store: Union[str, Path, None] = None,
    store_verify_fraction: float = 0.05,
) -> List[SweepOutcome]:
    """Plan test points for every circuit file, surviving bad apples.

    Each circuit runs in isolation: a parse error, budget exhaustion or
    crash is recorded as a failed :class:`SweepOutcome` and the sweep moves
    on.  Every outcome is appended (and flushed) to ``results_path`` as one
    JSONL line *before* the next circuit starts, so a killed run loses at
    most the circuit in flight; with ``resume=True`` (default) a rerun
    skips circuits already recorded there.

    Parameters
    ----------
    paths:
        Netlist files (``.bench`` / ``.v`` / ``.sv``).
    results_path:
        JSONL checkpoint/results file (created if missing).  In fabric
        mode this is the fabric *journal* — a different (typed, durable)
        record format; don't mix serial and fabric runs on one file.
    budget:
        Per-circuit cooperative budget; each circuit gets a fresh clock
        (:meth:`~repro.resilience.Budget.renewed`).
    solvers:
        Cascade stages for :func:`~repro.core.cascade.solve_with_fallback`.
    max_circuits:
        Stop after running this many *new* circuits (resume testing knob).
    measure_coverage:
        Also insert each solution and record measured before/after fault
        coverage (fault-dropping simulation; full detection words are
        never materialized).
    jobs:
        Worker processes for the coverage measurement's fault simulation.
    fabric:
        Run the sweep as a supervised fabric campaign
        (:class:`~repro.fabric.FabricSupervisor`): content-addressed
        dedup, leased workers, exactly-once journal commits, poison-job
        quarantine.  Results are bit-identical to the serial path.
        Fabric campaigns are always resumable (the journal is
        content-addressed), so ``resume`` is ignored.
    workers:
        Fabric pool width (``<= 1`` runs the fabric serially in-process).
    lease_timeout_s:
        Fabric lease liveness window.
    chaos:
        Optional :class:`~repro.resilience.chaos.FabricChaosSpec` for
        fault-injection campaigns (fabric mode only).
    interrupt:
        Optional :class:`~repro.resilience.interrupt.GracefulInterrupt`;
        when it reports SIGTERM/SIGINT the sweep stops at the next item
        boundary (checkpoint already flushed) by raising
        :class:`~repro.errors.SweepInterrupted`.
    store:
        Optional directory of a cross-campaign
        :class:`~repro.fabric.store.ResultStore` (fabric mode only).
        Jobs with a verified store entry commit without recomputation;
        fresh commits are published back for future campaigns.
    store_verify_fraction:
        Seeded fraction of store hits re-executed and compared bit-exact
        (cache-poisoning audit); only meaningful with ``store``.

    Returns the outcomes for all circuits in ``paths`` that have run so
    far, recorded-or-fresh, in ``paths`` order.
    """
    results_path = Path(results_path)
    file_paths = [Path(p) for p in paths]
    if store is not None and not fabric:
        raise ValueError(
            "store= requires fabric=True (the result store is keyed by "
            "fabric job ids)"
        )
    if fabric:
        return _run_sweep_fabric(
            file_paths,
            results_path,
            n_patterns=n_patterns,
            escape_budget=escape_budget,
            budget=budget,
            solvers=solvers,
            max_circuits=max_circuits,
            measure_coverage=measure_coverage,
            jobs=jobs,
            workers=workers,
            lease_timeout_s=lease_timeout_s,
            chaos=chaos,
            interrupt=interrupt,
            store=store,
            store_verify_fraction=store_verify_fraction,
        )
    completed: Dict[str, SweepOutcome] = {}
    if resume and results_path.exists():
        mistyped: List[str] = []
        for record in _read_checkpoint_lines(results_path):
            try:
                outcome = SweepOutcome(**record)
            except TypeError:
                # Decoded fine but doesn't match the outcome schema (stale
                # format, foreign writer): quarantine it and rerun that
                # circuit rather than abort the whole resume.
                mistyped.append(json.dumps(record, sort_keys=True))
                continue
            completed[outcome.path] = outcome
        if mistyped:
            _quarantine_checkpoint_lines(
                results_path,
                mistyped,
                "not a SweepOutcome record",
                survivors=[o.to_json() for o in completed.values()],
            )
    if results_path.parent != Path(""):
        results_path.parent.mkdir(parents=True, exist_ok=True)

    outcomes: List[SweepOutcome] = []
    ran = 0
    with obs.span(
        "sweep", n_circuits=len(file_paths), results=str(results_path)
    ) as sweep_span:
        heartbeat = obs.Heartbeat("sweep")
        with results_path.open("a", encoding="utf-8") as sink:
            for path in file_paths:
                heartbeat.beat(
                    circuits_done=len(outcomes),
                    circuits_total=len(file_paths),
                    circuits_ran=ran,
                )
                prior = completed.get(str(path))
                if prior is not None:
                    obs.count("sweep.skipped")
                    outcomes.append(prior)
                    continue
                if max_circuits is not None and ran >= max_circuits:
                    break
                ran += 1
                with obs.span("sweep.circuit", circuit=path.stem) as sp:
                    outcome = _sweep_one(
                        path,
                        n_patterns,
                        escape_budget,
                        budget,
                        solvers,
                        measure_coverage=measure_coverage,
                        jobs=jobs,
                    )
                    sp.set(status=outcome.status)
                sink.write(outcome.to_json() + "\n")
                sink.flush()
                obs.count("sweep.circuits")
                outcomes.append(outcome)
                if interrupt is not None:
                    # Item boundary: the outcome above is already durable,
                    # so stopping here is always resumable.
                    interrupt.check(
                        completed=len(outcomes),
                        remaining=len(file_paths) - len(outcomes),
                    )
        sweep_span.set(
            ran=ran,
            skipped=len(outcomes) - ran,
            failures=sum(1 for o in outcomes if not o.ok),
        )
    return outcomes


def _run_sweep_fabric(
    file_paths: List[Path],
    results_path: Path,
    *,
    n_patterns: int,
    escape_budget: float,
    budget: Optional[Budget],
    solvers: Sequence[str],
    max_circuits: Optional[int],
    measure_coverage: bool,
    jobs: int,
    workers: int,
    lease_timeout_s: float,
    chaos,
    interrupt,
    store: Union[str, Path, None] = None,
    store_verify_fraction: float = 0.05,
) -> List[SweepOutcome]:
    """Sweep as a fabric campaign: dedup, leases, exactly-once commits.

    Each netlist becomes one content-addressed job (structurally
    identical circuits under the same config collapse to a single job);
    committed results are rehydrated per requested path, so the returned
    outcome list is bit-identical to the serial driver's, in ``paths``
    order.  Quarantined (poison) jobs surface as ``status="quarantined"``
    outcomes carrying their last fabric error.
    """
    from ..fabric import FabricSupervisor, ResultJournal, ResultStore
    from ..fabric.jobs import Job

    if results_path.parent != Path(""):
        results_path.parent.mkdir(parents=True, exist_ok=True)
    # Everything that can change a result belongs in the identity config;
    # ``jobs`` (inner fault-sim parallelism) is excluded on purpose — the
    # parallel simulator is bit-identical to serial, so it must not split
    # the dedup space.
    config: Dict[str, object] = {
        "schema": "sweep-job/1",
        "n_patterns": int(n_patterns),
        "escape_budget": float(escape_budget),
        "budget": _budget_spec(budget),
        "solvers": list(solvers),
        "measure_coverage": bool(measure_coverage),
    }
    journal = ResultJournal(results_path)
    try:
        campaign: List[Job] = []
        by_path: Dict[str, str] = {}
        seen: Dict[str, Job] = {}
        fresh = 0
        for path in file_paths:
            content_key = _sweep_content_key(path)
            job = Job.build(
                "sweep_circuit",
                content_key,
                config,
                payload={
                    "path": str(path),
                    "n_patterns": int(n_patterns),
                    "escape_budget": float(escape_budget),
                    "budget": _budget_spec(budget),
                    "solvers": list(solvers),
                    "measure_coverage": bool(measure_coverage),
                    "jobs": int(jobs),
                },
                index=len(campaign),
            )
            by_path[str(path)] = job.job_id
            if job.job_id in seen:
                obs.count("sweep.deduped")
                continue
            if not journal.is_done(job.job_id):
                if max_circuits is not None and fresh >= max_circuits:
                    continue  # left for a later resume, like serial
                fresh += 1
            seen[job.job_id] = job
            campaign.append(job)
        supervisor = FabricSupervisor(
            journal,
            workers=workers,
            lease_timeout_s=lease_timeout_s,
            chaos=chaos,
            interrupt=interrupt,
            store=ResultStore(Path(store)) if store is not None else None,
            store_verify_fraction=store_verify_fraction,
        )
        results = supervisor.run(campaign)
        outcomes: List[SweepOutcome] = []
        for path in file_paths:
            job_id = by_path[str(path)]
            result = results.get(job_id)
            if result is not None:
                # Rehydrate the shared (deduped) result for this path.
                outcomes.append(
                    SweepOutcome(
                        **{
                            **result,
                            "circuit": path.stem,
                            "path": str(path),
                        }
                    )
                )
                continue
            record = journal.quarantined.get(job_id)
            if record is not None:
                errors = record.get("errors") or []
                last = errors[-1] if errors else {}
                outcomes.append(
                    SweepOutcome(
                        circuit=path.stem,
                        path=str(path),
                        status="quarantined",
                        error_type=last.get("type"),
                        error=last.get("message"),
                    )
                )
            # else: capped by max_circuits — not run yet, like serial.
        return outcomes
    finally:
        journal.close()


def experiment_runners() -> Dict[str, Callable[[], ExperimentResult]]:
    """Registry of the evaluation suite, keyed by experiment id."""
    return {
        "t1": lambda: run_t1_circuit_characteristics(),
        "t2": lambda: run_t2_dp_optimality(),
        "t3": lambda: run_t3_tree_solver_comparison(),
        "t4": lambda: run_t4_coverage_improvement()[0],
        "f1": lambda: run_f1_points_curve(),
        "f2": lambda: run_f2_runtime_scaling(),
        "f3": lambda: run_f3_testlength_curves(),
        "f4": lambda: run_f4_quantization_ablation(),
        "e1": lambda: run_e1_misr_aliasing(),
        "e2": lambda: run_e2_margin_ablation(),
        "e3": lambda: run_e3_strategy_comparison(),
        "e4": lambda: run_e4_multiphase(),
        "e5": lambda: run_e5_weighted_random(),
    }


def run_experiments_checkpointed(
    keys: Sequence[str],
    results_path: Union[str, Path],
    resume: bool = True,
    fabric: bool = False,
    workers: int = 1,
    lease_timeout_s: float = 30.0,
    chaos=None,
    interrupt=None,
    store: Union[str, Path, None] = None,
    store_verify_fraction: float = 0.05,
) -> List[dict]:
    """Run experiments with per-experiment crash isolation and resume.

    Mirrors :func:`run_circuit_sweep` at experiment granularity: each
    experiment's rendered table (or failure) is appended to
    ``results_path`` as one JSONL record as soon as it finishes, and with
    ``resume=True`` already-recorded experiments are not rerun.  With
    ``fabric=True`` the campaign runs on the sweep fabric instead
    (leased workers, exactly-once journal at ``results_path``, poison
    quarantine); fabric campaigns are always resumable, so ``resume`` is
    ignored there.  ``interrupt`` stops at the next experiment boundary
    by raising :class:`~repro.errors.SweepInterrupted`.
    """
    runners = experiment_runners()
    unknown = [k for k in keys if k not in runners]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown} (choose from {list(runners)})"
        )
    results_path = Path(results_path)
    if store is not None and not fabric:
        raise ValueError(
            "store= requires fabric=True (the result store is keyed by "
            "fabric job ids)"
        )
    if fabric:
        return _run_experiments_fabric(
            list(keys),
            results_path,
            workers=workers,
            lease_timeout_s=lease_timeout_s,
            chaos=chaos,
            interrupt=interrupt,
            store=store,
            store_verify_fraction=store_verify_fraction,
        )
    done: Dict[str, dict] = {}
    if resume and results_path.exists():
        for record in _read_checkpoint_lines(results_path):
            if "experiment" in record:
                done[record["experiment"]] = record

    records: List[dict] = []
    with results_path.open("a", encoding="utf-8") as sink:
        for key in keys:
            prior = done.get(key)
            if prior is not None:
                obs.count("experiments.skipped")
                records.append(prior)
                continue
            record = execute_experiment_job({"experiment": key})
            sink.write(json.dumps(record, sort_keys=True) + "\n")
            sink.flush()
            records.append(record)
            if interrupt is not None:
                interrupt.check(
                    completed=len(records),
                    remaining=len(keys) - len(records),
                )
    return records


def _run_experiments_fabric(
    keys: List[str],
    results_path: Path,
    *,
    workers: int,
    lease_timeout_s: float,
    chaos,
    interrupt,
    store: Union[str, Path, None] = None,
    store_verify_fraction: float = 0.05,
) -> List[dict]:
    """Experiment campaign on the fabric; records in ``keys`` order."""
    from ..fabric import FabricSupervisor, ResultJournal, ResultStore
    from ..fabric.jobs import Job

    if results_path.parent != Path(""):
        results_path.parent.mkdir(parents=True, exist_ok=True)
    config: Dict[str, object] = {"schema": "experiment-job/1"}
    journal = ResultJournal(results_path)
    try:
        campaign: List[Job] = []
        by_key: Dict[str, str] = {}
        for key in keys:
            if key in by_key:
                continue
            job = Job.build(
                "experiment",
                f"experiment:{key}",
                config,
                payload={"experiment": key},
                index=len(campaign),
            )
            by_key[key] = job.job_id
            campaign.append(job)
        supervisor = FabricSupervisor(
            journal,
            workers=workers,
            lease_timeout_s=lease_timeout_s,
            chaos=chaos,
            interrupt=interrupt,
            store=ResultStore(Path(store)) if store is not None else None,
            store_verify_fraction=store_verify_fraction,
        )
        results = supervisor.run(campaign)
        records: List[dict] = []
        for key in keys:
            job_id = by_key[key]
            result = results.get(job_id)
            if result is not None:
                records.append(dict(result))
                continue
            record = journal.quarantined.get(job_id)
            errors = (record or {}).get("errors") or []
            last = errors[-1] if errors else {}
            records.append(
                {
                    "experiment": key,
                    "status": "quarantined",
                    "error_type": last.get("type"),
                    "error": last.get("message"),
                }
            )
        return records
    finally:
        journal.close()
