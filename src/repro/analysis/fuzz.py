"""Differential fuzzing of the simulation and solver stack (``repro-tpi fuzz``).

The compiled kernels, the incremental evaluator, and the parallel fan-out
all exist to be *faster* than the interpreted reference while computing
the *same* answer.  The shadow guards (:mod:`repro.verify`) check that
equivalence opportunistically on production inputs; this module attacks
it deliberately: a time-budgeted loop draws seeded random circuits from
:mod:`repro.circuit.generators` and cross-checks every fast path against
its arbiter —

* compiled logic simulation vs the interpreter (full node-word map);
* compiled per-cone fault simulation vs the interpreter, fault by fault;
* fault dropping (:meth:`run_coverage`) vs the exact run it must match;
* compiled COP passes vs the interpreted passes;
* :class:`IncrementalEvaluator` deltas vs a from-scratch full pass;
* the DP's claimed optimum vs exhaustive search under the quantized
  objective, on small fanout-free instances (the paper's exactness
  regime);
* the chaos-hardened parallel fan-out vs a serial run.

A divergence is minimized with :func:`shrink_circuit` — greedy structural
reduction (drop to one output's cone, collapse gates to buffers, cut
fan-ins to fresh primary inputs) that keeps only reductions preserving
the failure — and then persisted as a replayable repro bundle
(``repro-tpi replay <dir>``).  Everything is derived from ``seed``, so a
failing fuzz run replays exactly.

The ``saboteur`` hook plants a bug (e.g.
:func:`repro.verify.plant_logic_bug`) into every circuit the fuzzer
builds — the self-test that proves the harness can actually find and
shrink a real miscompile.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..circuit.generators import random_dag, random_tree
from ..circuit.netlist import Circuit
from ..core.dp import quantized_tree_check, solve_tree
from ..core.exhaustive import solve_exhaustive
from ..core.incremental import IncrementalEvaluator
from ..core.problem import TestPoint, TPIProblem
from ..core.virtual import evaluate_placement
from ..errors import BudgetExceededError, SolverError
from ..resilience import Budget
from ..sim.compile import clear_registry, get_compiled
from ..sim.fault_sim import FaultSimulator
from ..sim.logic_sim import LogicSimulator
from ..sim.patterns import UniformRandomSource
from ..testability.cop import cop_measures
from ..verify.bundle import (
    fault_to_payload,
    point_to_payload,
    problem_to_payload,
    write_bundle,
)

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz", "shrink_circuit"]

#: Exhaustive-search subset cap for the DP-vs-exhaustive oracle.
_DP_MAX_SUBSET = 4
#: Gate-count ceiling for instances handed to the exhaustive oracle.
_DP_MAX_GATES = 8
#: Run the parallel fan-out cross-check on every Nth trial (it forks a
#: process pool, which dwarfs every other check).
_PARALLEL_EVERY = 8
_COST_TOLERANCE = 1e-9

Saboteur = Callable[[Circuit], object]


@dataclass
class _Divergence:
    """One observed fast-vs-arbiter mismatch, ready to bundle."""

    kind: str
    context: dict
    expected: object
    actual: object
    message: str
    sources: Dict[str, str] = field(default_factory=dict)


@dataclass
class FuzzFailure:
    """A confirmed, minimized, bundled divergence."""

    kind: str
    message: str
    bundle: str
    trial: int
    gates_found: int
    gates_shrunk: int

    def describe(self) -> str:
        return (
            f"{self.kind} (trial {self.trial}): shrunk "
            f"{self.gates_found} -> {self.gates_shrunk} gates — "
            f"{self.message} [{self.bundle}]"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    seed: int
    budget_ms: float
    elapsed_ms: float = 0.0
    trials: int = 0
    checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "clean" if self.clean else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"fuzz seed={self.seed}: {self.trials} trials, "
            f"{self.checks} checks in {self.elapsed_ms:.0f} ms — {verdict}"
        ]
        lines.extend("  " + f.describe() for f in self.failures)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Differential checks.  Each takes the circuit plus trial-local seeds and
# returns None (agreement) or a ready-to-bundle _Divergence.
# ---------------------------------------------------------------------------


def _kernel_sources(circuit: Circuit, kernel: str = "compiled") -> Dict[str, str]:
    """Snapshot the kernel sources the fast path actually executed.

    Only the compiled backend has per-circuit generated source; the numpy
    backend's plan is index arrays, so its bundles identify the backend
    via the ``kernel`` context field instead.
    """
    if kernel != "compiled":
        return {}
    return dict(get_compiled(circuit).sources)


def _stimulus(circuit: Circuit, seed: int, n_patterns: int) -> Dict[str, int]:
    return UniformRandomSource(seed).generate(circuit.inputs, n_patterns)


def _check_logic_sim(
    circuit: Circuit, seed: int, n_patterns: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    stimulus = _stimulus(circuit, seed, n_patterns)
    fast = LogicSimulator(circuit, kernel=kernel).run(stimulus, n_patterns)
    slow = LogicSimulator(circuit, kernel="interp").run(stimulus, n_patterns)
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.logic_sim",
        context={
            "stimulus": stimulus,
            "n_patterns": n_patterns,
            "kernel": kernel,
        },
        expected=slow,
        actual=dict(fast),
        message=f"{kernel} logic backend disagrees with interpreter",
        sources=_kernel_sources(circuit, kernel),
    )


def _check_fault_sim(
    circuit: Circuit, seed: int, n_patterns: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    stimulus = _stimulus(circuit, seed, n_patterns)
    fast = FaultSimulator(circuit, kernel=kernel).run(stimulus, n_patterns)
    slow = FaultSimulator(circuit, kernel="interp").run(stimulus, n_patterns)
    bad = next(
        (
            f
            for f in slow.faults
            if fast.detection_word.get(f) != slow.detection_word[f]
            or fast.first_detect.get(f) != slow.first_detect[f]
        ),
        None,
    )
    if bad is None:
        return None
    good_values = LogicSimulator(circuit, kernel="interp").run(
        stimulus, n_patterns
    )
    return _Divergence(
        kind="fuzz.fault_sim",
        context={
            "fault": fault_to_payload(bad),
            "n_patterns": n_patterns,
            "good_values": good_values,
            "variant": "detect",
            "kernel": kernel,
        },
        expected={str(f): w for f, w in slow.detection_word.items()},
        actual={str(f): w for f, w in fast.detection_word.items()},
        message=f"{kernel} cone propagation disagrees with interpreter on {bad}",
        sources=_kernel_sources(circuit, kernel),
    )


def _check_coverage(
    circuit: Circuit, seed: int, n_patterns: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    stimulus = _stimulus(circuit, seed, n_patterns)
    sim = FaultSimulator(circuit, kernel=kernel)
    exact = sim.run(stimulus, n_patterns)
    dropped = sim.run_coverage(stimulus, n_patterns, block=16)

    def summary(res):
        return {
            "coverage": res.coverage(),
            "first_detect": {str(f): i for f, i in res.first_detect.items()},
        }

    fast, slow = summary(dropped), summary(exact)
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.coverage",
        context={
            "stimulus": stimulus,
            "n_patterns": n_patterns,
            "block": 16,
            "kernel": kernel,
        },
        expected=slow,
        actual=fast,
        message="fault dropping changed coverage/first-detect vs exact run",
        sources=_kernel_sources(circuit, kernel),
    )


def _check_cop(
    circuit: Circuit, seed: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    def payload(res):
        return {
            "probability": res.probability,
            "observability": res.observability,
            "branch_observability": res.branch_observability,
        }

    fast = payload(cop_measures(circuit, kernel=kernel))
    slow = payload(cop_measures(circuit, kernel="interp"))
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.cop",
        context={
            "input_probabilities": None,
            "stem_combine": "or",
            "kernel": kernel,
        },
        expected=slow,
        actual=fast,
        message=f"{kernel} COP passes disagree with interpreter",
        sources=_kernel_sources(circuit, kernel),
    )


def _check_placement(
    circuit: Circuit, seed: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    rng = random.Random(f"fuzz-place:{seed}")
    problem = TPIProblem.from_test_length(circuit, n_patterns=64)
    points = _random_points(problem, rng, rng.randint(0, 3))
    fast = _evaluation_payload(
        evaluate_placement(problem, points, kernel=kernel)
    )
    slow = _evaluation_payload(
        evaluate_placement(problem, points, kernel="interp")
    )
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.placement",
        context={
            "problem": problem_to_payload(problem),
            "points": [point_to_payload(p) for p in points],
            "kernel": kernel,
        },
        expected=slow,
        actual=fast,
        message=f"{kernel} placement pass disagrees with interpreter",
        sources=_kernel_sources(circuit, kernel),
    )


def _random_points(
    problem: TPIProblem, rng: random.Random, n: int
) -> List[TestPoint]:
    sites = [g.name for g in problem.circuit.gates]
    if not sites:
        return []
    points = []
    for _ in range(n):
        points.append(
            TestPoint(
                node=rng.choice(sites),
                kind=rng.choice(list(problem.allowed_types)),
            )
        )
    # One control point per site at most; keep the first.
    seen = set()
    unique = []
    for tp in points:
        key = (tp.node, tp.kind.is_control)
        if key in seen:
            continue
        seen.add(key)
        unique.append(tp)
    return unique


def _evaluation_payload(evaluation) -> dict:
    return {
        "stem_pre": evaluation.stem_pre,
        "stem_post": evaluation.stem_post,
        "wire_obs": evaluation.wire_obs,
        "branch_pre": evaluation.branch_pre,
        "branch_post": evaluation.branch_post,
        "branch_obs": evaluation.branch_obs,
        "stem_post_obs": evaluation.stem_post_obs,
    }


def _check_incremental(
    circuit: Circuit, seed: int, kernel: Optional[str] = None
) -> Optional[_Divergence]:
    rng = random.Random(f"fuzz-inc:{seed}")
    problem = TPIProblem.from_test_length(circuit, n_patterns=64)
    points = _random_points(problem, rng, rng.randint(1, 3))
    base = points[: rng.randint(0, len(points))]
    if kernel == "numpy":
        # Fuzz-sized circuits are narrower than the vectorized delta
        # engine's adaptive cutoff; force it on so the lane actually
        # attacks PlacementDelta rather than the interpreted walk.
        import os

        prior = os.environ.get("REPRO_NP_DELTA_MIN_WIDTH")
        os.environ["REPRO_NP_DELTA_MIN_WIDTH"] = "0"
        try:
            inc = IncrementalEvaluator(problem, base, kernel=kernel)
            fast = _evaluation_payload(inc.evaluate(points))
        finally:
            if prior is None:
                del os.environ["REPRO_NP_DELTA_MIN_WIDTH"]
            else:
                os.environ["REPRO_NP_DELTA_MIN_WIDTH"] = prior
    else:
        inc = IncrementalEvaluator(problem, base, kernel=kernel)
        fast = _evaluation_payload(inc.evaluate(points))
    slow = _evaluation_payload(
        evaluate_placement(problem, points, kernel="interp")
    )
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.incremental",
        context={
            "problem": problem_to_payload(problem),
            "base_points": [point_to_payload(p) for p in base],
            "points": [point_to_payload(p) for p in points],
            "kernel": inc.kernel,
        },
        expected=slow,
        actual=fast,
        message="incremental delta disagrees with from-scratch full pass",
        sources=_kernel_sources(circuit),
    )


def _check_dp_vs_exhaustive(
    circuit: Circuit, seed: int, budget_ms: float = 10_000.0
) -> Optional[_Divergence]:
    problem = TPIProblem.from_test_length(
        circuit, n_patterns=32, escape_budget=0.05
    )
    try:
        dp = solve_tree(problem)
    except SolverError:
        return None  # not fanout-free (shrink surgery can introduce stems)
    if dp.feasible and len(dp.points) > _DP_MAX_SUBSET:
        return None  # exhaustive oracle cannot reach the DP's optimum
    try:
        # The subset search is combinatorial in the candidate count: an
        # unlucky instance can cost more than a whole fuzz campaign, so
        # the oracle gets a slice of wall clock and an over-budget trial
        # is skipped rather than blowing the deadline.
        exhaustive = solve_exhaustive(
            problem,
            feasibility=lambda pts: quantized_tree_check(problem, pts),
            max_subset_size=_DP_MAX_SUBSET,
            budget=Budget(wall_ms=budget_ms),
        )
    except BudgetExceededError:
        obs.count("fuzz.dp_oracle_skipped")
        return None
    agree = dp.feasible == exhaustive.feasible and (
        not dp.feasible or abs(dp.cost - exhaustive.cost) <= _COST_TOLERANCE
    )
    if agree:
        return None
    return _Divergence(
        kind="fuzz.dp_vs_exhaustive",
        context={
            "problem": problem_to_payload(problem),
            "max_subset_size": _DP_MAX_SUBSET,
        },
        expected={"cost": exhaustive.cost, "feasible": exhaustive.feasible},
        actual={"cost": dp.cost, "feasible": dp.feasible},
        message="DP optimum disagrees with exhaustive search "
        "under the quantized objective",
        sources={},
    )


def _check_tiled_batch(
    circuit: Circuit, seed: int, n_patterns: int
) -> Optional[_Divergence]:
    """numpy only: batched sweeps forced through word tiles and chunks.

    A deliberately tiny memory budget makes ``propagate_batch`` split
    the fault cube along both the word axis (tile seams) and the fault
    axis (chunk seams) on circuits where the default budget would run a
    single untiled sweep — the exact seam bookkeeping the wide-pattern
    coverage path relies on.
    """
    from ..sim import npsim
    from ..sim.fault_sim import BatchPolicy

    stimulus = _stimulus(circuit, seed, n_patterns)
    plan = npsim.get_plan(circuit)
    rows = plan.n_rows + npsim.batch_staging_rows(plan)
    policy = BatchPolicy(
        min_faults=1, min_capacity=1, chunk_bytes=8 * rows * 2 * 3
    )
    fast = FaultSimulator(circuit, kernel="numpy", batch_policy=policy).run(
        stimulus, n_patterns
    )
    slow = FaultSimulator(circuit, kernel="interp").run(stimulus, n_patterns)

    def summary(res):
        return {
            str(f): [res.detection_word[f], res.first_detect[f]]
            for f in res.detection_word
        }

    if summary(fast) == summary(slow):
        return None
    return _Divergence(
        kind="fuzz.tiled_batch",
        context={
            "stimulus": stimulus,
            "n_patterns": n_patterns,
            "chunk_bytes": policy.chunk_bytes,
            "kernel": "numpy",
        },
        expected=summary(slow),
        actual=summary(fast),
        message="word-tiled batched sweep disagrees with interpreter "
        "across tile/chunk seams",
        sources={},
    )


def _check_parallel(
    circuit: Circuit, seed: int, n_patterns: int, kernel: str = "compiled"
) -> Optional[_Divergence]:
    from ..sim.parallel import run_parallel

    stimulus = _stimulus(circuit, seed, n_patterns)
    parallel = run_parallel(
        circuit, stimulus, n_patterns, jobs=2, kernel=kernel
    )
    serial = FaultSimulator(circuit, kernel=kernel).run(
        stimulus, n_patterns
    )
    fast = {str(f): w for f, w in parallel.detection_word.items()}
    slow = {str(f): w for f, w in serial.detection_word.items()}
    if fast == slow:
        return None
    return _Divergence(
        kind="fuzz.parallel",
        context={
            "stimulus": stimulus,
            "n_patterns": n_patterns,
            "jobs": 2,
            "mode": "exact",
            "kernel": kernel,
        },
        expected=slow,
        actual=fast,
        message="parallel fan-out disagrees with serial fault simulation",
        sources=_kernel_sources(circuit, kernel),
    )


# ---------------------------------------------------------------------------
# Greedy circuit shrinking.
# ---------------------------------------------------------------------------


def _rebuild(
    circuit: Circuit,
    replace: Optional[Dict[str, Tuple]] = None,
    outputs: Optional[Sequence[str]] = None,
) -> Circuit:
    """Copy ``circuit`` applying gate surgeries, then garbage-collect.

    ``replace`` maps a gate name to ``("input",)`` (sever its cone: the
    gate becomes a fresh primary input) or ``("buf", driver)`` (collapse
    it to a buffer of one existing fan-in).  Nodes left outside every
    output's fan-in cone are dropped.
    """
    replace = replace or {}
    wanted = list(outputs if outputs is not None else circuit.outputs)
    staged = Circuit(name=circuit.name)
    for name in circuit.topological_order():
        node = circuit.node(name)
        action = replace.get(name)
        if node.is_input or (action is not None and action[0] == "input"):
            staged.add_input(name)
        elif action is not None and action[0] == "buf":
            from ..circuit.gates import GateType

            staged.add_gate(name, GateType.BUF, [action[1]])
        else:
            staged.add_gate(name, node.gate_type, list(node.fanins))
    keep = set()
    for out in wanted:
        keep |= staged.fanin_cone(out)
        keep.add(out)
    final = Circuit(name=circuit.name)
    for name in staged.topological_order():
        if name not in keep:
            continue
        node = staged.node(name)
        if node.is_input:
            final.add_input(name)
        else:
            final.add_gate(name, node.gate_type, list(node.fanins))
    for out in wanted:
        final.mark_output(out)
    return final


def _metric(circuit: Circuit) -> Tuple[int, int, int]:
    edges = sum(len(g.fanins) for g in circuit.gates)
    return (circuit.gate_count(), edges, len(circuit))


def _usable(circuit: Circuit) -> bool:
    if circuit.gate_count() < 1 or not circuit.inputs or not circuit.outputs:
        return False
    try:
        circuit.validate()
    except Exception:
        return False
    return True


def _candidates(circuit: Circuit):
    if len(circuit.outputs) > 1:
        for out in circuit.outputs:
            yield _rebuild(circuit, outputs=[out])
    for gate in circuit.gates:
        yield _rebuild(circuit, replace={gate.name: ("input",)})
        if gate.fanins and not (
            len(gate.fanins) == 1 and gate.gate_type.name == "BUF"
        ):
            yield _rebuild(circuit, replace={gate.name: ("buf", gate.fanins[0])})


def shrink_circuit(
    circuit: Circuit,
    still_fails: Callable[[Circuit], bool],
    max_probes: int = 400,
) -> Circuit:
    """Greedily minimize ``circuit`` while ``still_fails`` stays true.

    Reductions tried each round: restrict to a single output's fan-in
    cone, sever a gate into a fresh primary input, collapse a gate to a
    buffer of its first fan-in.  The first strictly-smaller candidate
    that still fails is adopted; rounds repeat to a fixpoint (or until
    ``max_probes`` failure-predicate evaluations are spent).
    """
    best = circuit
    probes = 0
    seen = {best.structural_hash()}
    improved = True
    while improved and probes < max_probes:
        improved = False
        for cand in _candidates(best):
            if probes >= max_probes:
                break
            if not _usable(cand) or _metric(cand) >= _metric(best):
                continue
            h = cand.structural_hash()
            if h in seen:
                continue
            seen.add(h)
            probes += 1
            if still_fails(cand):
                best = cand
                improved = True
                break
    return best


def _check_store(
    circuit: Circuit, seed: int, n_patterns: int
) -> Optional[_Divergence]:
    """Cached-vs-recomputed equality through the result store.

    Runs the real sweep executor on the circuit, publishes the result to
    a throwaway :class:`~repro.fabric.store.ResultStore`, reads it back
    through the full integrity envelope, recomputes, and requires all
    three (fresh, cached, recomputed) to be JSON-bit-identical.  Attacks
    both store round-tripping (digest over exactly what a reader
    re-parses) and executor determinism (a nondeterministic executor
    would poison any cache built on it).
    """
    import json
    import tempfile
    from pathlib import Path

    from ..circuit import write_bench_file
    from ..fabric.jobs import Job
    from ..fabric.store import ResultStore
    from .experiments import _sweep_content_key, execute_sweep_job

    def normal(result: dict) -> dict:
        return json.loads(json.dumps(result))

    with tempfile.TemporaryDirectory(prefix="fuzz-store-") as tmp:
        bench = Path(tmp) / "circuit.bench"
        write_bench_file(circuit, bench)
        config = {
            "schema": "sweep-job/1",
            "n_patterns": int(n_patterns),
            "escape_budget": 0.05,
            "budget": None,
            "solvers": ["greedy"],
            "measure_coverage": True,
        }
        payload = {
            **{k: v for k, v in config.items() if k != "schema"},
            "path": str(bench),
            "jobs": 1,
        }
        job = Job.build(
            "sweep_circuit", _sweep_content_key(bench), config, payload
        )
        context = {
            "job_id": job.job_id,
            "content_key": job.content_key,
            "n_patterns": n_patterns,
        }
        first = normal(execute_sweep_job(dict(payload)))
        store = ResultStore(Path(tmp) / "store")
        store.put(job, first)
        record = store.get(job.job_id)
        if record is None:
            return _Divergence(
                kind="fuzz.store",
                context=context,
                expected=first,
                actual=None,
                message=(
                    "store rejected (quarantined) the entry it just "
                    "published"
                ),
                sources={"store": "ResultStore.put/get round-trip"},
            )
        cached = record.get("result")
        second = normal(execute_sweep_job(dict(payload)))
        if first == cached == second:
            return None
        return _Divergence(
            kind="fuzz.store",
            context=context,
            expected=first,
            actual={"cached": cached, "recomputed": second},
            message=(
                "cached sweep result is not bit-identical to "
                "recomputation"
            ),
            sources={
                "expected": "execute_sweep_job (fresh)",
                "actual": "store round-trip + re-execution",
            },
        )


# ---------------------------------------------------------------------------
# The campaign loop.
# ---------------------------------------------------------------------------


def _build_circuit(trial: int, seed: int, max_gates: int) -> Circuit:
    rng = random.Random(f"fuzz:{seed}:{trial}")
    sub_seed = rng.randrange(2**31)
    if trial % 2 == 0:
        return random_tree(rng.randint(1, max(1, max_gates // 2)), seed=sub_seed)
    return random_dag(
        n_inputs=rng.randint(2, 6),
        n_gates=rng.randint(1, max_gates),
        seed=sub_seed,
    )


def run_fuzz(
    budget_ms: float,
    seed: int = 0,
    bundle_dir: str = "repro_bundles",
    max_gates: int = 40,
    n_patterns: int = 64,
    max_failures: int = 1,
    saboteur: Optional[Saboteur] = None,
    shrink: bool = True,
    kernel: str = "compiled",
    store: bool = False,
) -> FuzzReport:
    """Run a time-budgeted differential fuzzing campaign.

    Stops at the first ``max_failures`` confirmed divergences (each is
    shrunk and written as a repro bundle under ``bundle_dir``) or when
    ``budget_ms`` of wall clock is spent, whichever comes first.  Fully
    deterministic for a given ``seed`` (modulo the budget cutting the
    trial sequence short at a machine-dependent point — but any failure
    found is reproducible from its bundle regardless).

    ``kernel`` picks the fast backend under attack (``"compiled"`` or
    ``"numpy"``); every lane cross-checks it against the interpreted
    arbiter, and repro bundles record the backend name in their context.

    ``store=True`` adds the result-store lane: each circuit's sweep
    result is published to a throwaway content-addressed store, read
    back through the integrity envelope, and required to be
    bit-identical to a fresh recomputation.
    """
    from ..sim.compile import resolve_kernel

    kernel = resolve_kernel(kernel)
    if kernel == "interp":
        raise ValueError(
            "fuzz needs a fast backend to attack; kernel='interp' only "
            "names the arbiter"
        )
    report = FuzzReport(seed=seed, budget_ms=budget_ms)
    start = time.monotonic()
    deadline = start + budget_ms / 1000.0
    sabotaged = set()

    def sabotage(c: Circuit) -> None:
        # Plant at most once per structure: the planting swaps are not
        # idempotent, and the shrink predicate re-runs checks repeatedly.
        if saboteur is None:
            return
        h = c.structural_hash()
        if h not in sabotaged:
            sabotaged.add(h)
            saboteur(c)

    def run_check(check: Callable[[Circuit], Optional[_Divergence]], c: Circuit):
        sabotage(c)
        return check(c)

    try:
        trial = 0
        with obs.span("fuzz.campaign", seed=seed, budget_ms=budget_ms):
            while (
                time.monotonic() < deadline
                and len(report.failures) < max_failures
            ):
                circuit = _build_circuit(trial, seed, max_gates)
                stim_seed = trial * 7919 + seed
                checks: List[Callable[[Circuit], Optional[_Divergence]]] = [
                    lambda c: _check_logic_sim(
                        c, stim_seed, n_patterns, kernel
                    ),
                    lambda c: _check_fault_sim(
                        c, stim_seed, n_patterns, kernel
                    ),
                    lambda c: _check_coverage(
                        c, stim_seed, n_patterns, kernel
                    ),
                    lambda c: _check_cop(c, stim_seed, kernel),
                    lambda c: _check_placement(c, stim_seed, kernel),
                    lambda c: _check_incremental(c, stim_seed, kernel),
                ]
                if kernel == "numpy":
                    checks.append(
                        lambda c: _check_tiled_batch(
                            c, stim_seed, n_patterns
                        )
                    )
                if store:
                    checks.append(
                        lambda c: _check_store(c, stim_seed, n_patterns)
                    )
                if trial % 2 == 0 and circuit.gate_count() <= _DP_MAX_GATES:
                    checks.append(
                        lambda c: _check_dp_vs_exhaustive(
                            c,
                            stim_seed,
                            # Never hand the oracle more clock than the
                            # campaign has left.
                            budget_ms=min(
                                10_000.0,
                                max(
                                    100.0,
                                    (deadline - time.monotonic()) * 1000.0,
                                ),
                            ),
                        )
                    )
                if (
                    trial % _PARALLEL_EVERY == _PARALLEL_EVERY - 1
                    and deadline - time.monotonic() > 5.0
                ):
                    # Pool spawn costs seconds; skip it when the budget is
                    # nearly spent so the campaign lands near its deadline.
                    checks.append(
                        lambda c: _check_parallel(
                            c, stim_seed, n_patterns, kernel
                        )
                    )
                report.trials += 1
                obs.count("fuzz.trials")
                for check in checks:
                    if time.monotonic() >= deadline:
                        break
                    divergence = run_check(check, circuit)
                    report.checks += 1
                    obs.count("fuzz.checks")
                    if divergence is None:
                        continue
                    gates_found = circuit.gate_count()
                    minimized = circuit
                    if shrink:
                        minimized = shrink_circuit(
                            circuit,
                            lambda c: run_check(check, c) is not None,
                        )
                        final = run_check(check, minimized)
                        if final is None:  # pragma: no cover - paranoia
                            final, minimized = divergence, circuit
                        divergence = final
                    path = write_bundle(
                        divergence.kind,
                        circuit=minimized,
                        context=divergence.context,
                        expected=divergence.expected,
                        actual=divergence.actual,
                        message=divergence.message,
                        sources=divergence.sources,
                        bundle_dir=bundle_dir,
                    )
                    failure = FuzzFailure(
                        kind=divergence.kind,
                        message=divergence.message,
                        bundle=str(path),
                        trial=trial,
                        gates_found=gates_found,
                        gates_shrunk=minimized.gate_count(),
                    )
                    report.failures.append(failure)
                    obs.count("fuzz.failures")
                    obs.event(
                        "fuzz.divergence",
                        kind=divergence.kind,
                        trial=trial,
                        bundle=str(path),
                        gates_found=gates_found,
                        gates_shrunk=minimized.gate_count(),
                    )
                    break
                trial += 1
    finally:
        report.elapsed_ms = (time.monotonic() - start) * 1000.0
        if saboteur is not None:
            # Planted kernel corruption must not leak into later work in
            # this process; the bundles keep the corrupt sources.
            clear_registry()
    return report
