"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-style tables; this module owns the
formatting so every experiment renders consistently (fixed-width columns,
deterministic ordering, optional markdown flavor).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "format_value"]

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, None an em-dash."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["circuit", "cost"])
    >>> t.add_row(["c17", 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], precision: int = 3) -> None:
        self.headers = list(headers)
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row (cells are formatted immediately)."""
        row = [format_value(c, self.precision) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self, title: Optional[str] = None) -> str:
        """Render the table as aligned plain text."""
        widths = self._widths()
        lines: List[str] = []
        if title:
            lines.append(title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self, title: Optional[str] = None) -> str:
        """Render the table as GitHub-flavored markdown."""
        lines: List[str] = []
        if title:
            lines.append(f"### {title}")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
