"""Per-circuit testability profile reports.

:func:`testability_report` condenses everything an engineer asks about a
netlist before deciding on DFT insertion: structure, fault population,
COP/SCOAP extremes, the random-pattern-resistant fault list at a given
test length, and the fanout-free region decomposition the DP heuristic
will plan over.  Rendered by the CLI's ``report`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.analysis import fanout_free_regions, reconvergent_stems
from ..circuit.netlist import Circuit
from ..sim.faults import Fault, collapse_faults, testable_stuck_at_faults
from ..testability.cop import cop_measures
from ..testability.detection import detection_probabilities
from ..testability.scoap import scoap_measures
from ..testability.testlength import required_test_length, required_threshold
from .tables import Table

__all__ = ["TestabilityReport", "testability_report"]


@dataclass
class TestabilityReport:
    """Structured testability profile of one circuit.

    Attributes
    ----------
    circuit_name:
        Profiled netlist.
    stats:
        Structural statistics (gates, depth, stems, …).
    n_faults / n_collapsed:
        Full and equivalence-collapsed stuck-at counts.
    n_regions / largest_region / n_reconvergent_stems:
        Decomposition facts driving solver choice.
    threshold:
        θ implied by the profiled test length and escape budget.
    rpr_faults:
        Faults below θ, hardest first, with model detection probability.
    hardest_test_length:
        Patterns the hardest fault needs for 99.9% confidence.
    skewed_nodes:
        The most probability-skewed internal nodes (control-point bait).
    blind_nodes:
        The least observable nodes (observation-point bait).
    """

    circuit_name: str
    stats: Dict[str, int]
    n_faults: int
    n_collapsed: int
    n_regions: int
    largest_region: int
    n_reconvergent_stems: int
    threshold: float
    rpr_faults: List[Tuple[Fault, float]] = field(default_factory=list)
    hardest_test_length: float = 0.0
    skewed_nodes: List[Tuple[str, float]] = field(default_factory=list)
    blind_nodes: List[Tuple[str, float]] = field(default_factory=list)

    def render(self, max_rows: int = 10) -> str:
        """Human-readable multi-section report."""
        lines = [f"Testability report — {self.circuit_name}", ""]
        for key, value in self.stats.items():
            lines.append(f"  {key:12s} {value}")
        lines.append(f"  {'faults':12s} {self.n_faults} "
                     f"({self.n_collapsed} collapsed)")
        lines.append(
            f"  {'regions':12s} {self.n_regions} "
            f"(largest {self.largest_region} gates, "
            f"{self.n_reconvergent_stems} reconvergent stems)"
        )
        lines.append("")
        lines.append(
            f"Random-pattern-resistant faults at θ = {self.threshold:.6f}: "
            f"{len(self.rpr_faults)}"
        )
        if self.rpr_faults:
            t = Table(["fault", "detection prob", "patterns for 99.9%"], precision=6)
            for fault, d in self.rpr_faults[:max_rows]:
                t.add_row(
                    [
                        fault.describe(),
                        d,
                        required_test_length(d, 0.999)
                        if d > 0
                        else float("inf"),
                    ]
                )
            lines.append(t.render())
            if len(self.rpr_faults) > max_rows:
                lines.append(f"  … and {len(self.rpr_faults) - max_rows} more")
        lines.append("")
        if self.skewed_nodes:
            lines.append("Most probability-skewed nodes (control-point candidates):")
            for name, p in self.skewed_nodes[:max_rows]:
                lines.append(f"  {name:20s} P[1] = {p:.5f}")
        if self.blind_nodes:
            lines.append("Least observable nodes (observation-point candidates):")
            for name, obs in self.blind_nodes[:max_rows]:
                lines.append(f"  {name:20s} obs = {obs:.6f}")
        return "\n".join(lines)


def testability_report(
    circuit: Circuit,
    n_patterns: int = 4096,
    escape_budget: float = 0.001,
    top_k: int = 20,
) -> TestabilityReport:
    """Profile ``circuit`` for a given BIST budget."""
    circuit.validate()
    theta = required_threshold(n_patterns, escape_budget)
    faults = testable_stuck_at_faults(circuit)
    collapsed = collapse_faults(circuit)
    cop = cop_measures(circuit)
    probs = detection_probabilities(circuit, faults=faults, cop=cop)
    rpr = sorted(
        ((f, d) for f, d in probs.items() if d < theta),
        key=lambda fd: (fd[1], fd[0].sort_key()),
    )
    regions = fanout_free_regions(circuit)
    hardest = min(probs.values(), default=1.0)

    internal = [n.name for n in circuit.gates]
    skewed = sorted(
        ((n, cop.probability[n]) for n in internal),
        key=lambda np_: (-abs(np_[1] - 0.5), np_[0]),
    )[:top_k]
    blind = sorted(
        ((n, cop.observability[n]) for n in internal),
        key=lambda no: (no[1], no[0]),
    )[:top_k]

    # SCOAP is computed for its side effect of validating on the netlist
    # and to fail fast on unsupported structures.
    scoap_measures(circuit)

    return TestabilityReport(
        circuit_name=circuit.name,
        stats=circuit.stats(),
        n_faults=len(faults),
        n_collapsed=collapsed.size(),
        n_regions=len(regions),
        largest_region=max((r.size() for r in regions), default=0),
        n_reconvergent_stems=len(reconvergent_stems(circuit)),
        threshold=theta,
        rpr_faults=rpr,
        hardest_test_length=(
            required_test_length(hardest, 0.999) if hardest > 0 else float("inf")
        ),
        skewed_nodes=skewed,
        blind_nodes=blind,
    )
