"""Experiment harness and reporting for the reconstructed evaluation."""

from .experiments import (
    ExperimentResult,
    SweepOutcome,
    experiment_runners,
    run_circuit_sweep,
    run_experiments_checkpointed,
    run_e1_misr_aliasing,
    run_e2_margin_ablation,
    run_e3_strategy_comparison,
    run_e4_multiphase,
    run_e5_weighted_random,
    run_f1_points_curve,
    run_f2_runtime_scaling,
    run_f3_testlength_curves,
    run_f4_quantization_ablation,
    run_t1_circuit_characteristics,
    run_t2_dp_optimality,
    run_t3_tree_solver_comparison,
    run_t4_coverage_improvement,
)
from .report import TestabilityReport, testability_report
from .tables import Table, format_value

__all__ = [
    "Table",
    "format_value",
    "TestabilityReport",
    "testability_report",
    "ExperimentResult",
    "SweepOutcome",
    "experiment_runners",
    "run_circuit_sweep",
    "run_experiments_checkpointed",
    "run_t1_circuit_characteristics",
    "run_t2_dp_optimality",
    "run_t3_tree_solver_comparison",
    "run_t4_coverage_improvement",
    "run_f1_points_curve",
    "run_f2_runtime_scaling",
    "run_f3_testlength_curves",
    "run_f4_quantization_ablation",
    "run_e1_misr_aliasing",
    "run_e2_margin_ablation",
    "run_e3_strategy_comparison",
    "run_e4_multiphase",
    "run_e5_weighted_random",
]
