"""Gate primitives: types, Boolean semantics, and probability algebra.

This module is the single source of truth for what a gate *means*.  Every
other layer (simulation, testability analysis, the dynamic program) consumes
gate semantics through the functions defined here, so the three views of a
gate — bitwise evaluation on packed pattern vectors, signal-probability
propagation, and controlling/non-controlling value structure — can never
drift apart.

Packed evaluation convention: a *word* is an arbitrary-precision Python
integer whose bit ``i`` holds the value of the signal under pattern ``i``.
All patterns are therefore simulated in a single pass of Python-level
operations (the C bignum kernel does the per-bit work).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "GateType",
    "INVERTING_TYPES",
    "SYMMETRIC_TYPES",
    "evaluate_gate",
    "gate_function",
    "controlling_value",
    "controlled_response",
    "inversion_parity",
    "output_probability",
    "side_input_sensitization_probability",
    "is_monotone",
    "supported_fanin",
]


class GateType(enum.Enum):
    """Enumeration of supported combinational gate types.

    ``BUF`` and ``NOT`` are unary; ``CONST0``/``CONST1`` are nullary tie
    cells; all remaining types accept two or more inputs.
    """

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types whose output inverts the "base" (AND/OR/XOR/identity) function.
INVERTING_TYPES = frozenset(
    {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
)

#: Gate types invariant under input permutation.
SYMMETRIC_TYPES = frozenset(
    {
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    }
)

_MIN_FANIN: Dict[GateType, int] = {
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


def supported_fanin(gate_type: GateType) -> Tuple[int, Optional[int]]:
    """Return the inclusive ``(min, max)`` fan-in range for ``gate_type``.

    ``max`` is ``None`` for gates with unbounded fan-in (the symmetric
    types); unary and nullary gates have ``max == min``.
    """
    lo = _MIN_FANIN[gate_type]
    if gate_type in SYMMETRIC_TYPES:
        return lo, None
    return lo, lo


def evaluate_gate(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate ``gate_type`` on packed pattern words.

    ``inputs`` holds one packed word per fan-in; ``mask`` has a 1-bit for
    every valid pattern position and bounds the result (needed because
    inversion on Python ints would otherwise produce an infinite string of
    leading ones).
    """
    if gate_type is GateType.AND:
        acc = mask
        for word in inputs:
            acc &= word
        return acc
    if gate_type is GateType.OR:
        acc = 0
        for word in inputs:
            acc |= word
        return acc
    if gate_type is GateType.NAND:
        acc = mask
        for word in inputs:
            acc &= word
        return acc ^ mask
    if gate_type is GateType.NOR:
        acc = 0
        for word in inputs:
            acc |= word
        return acc ^ mask
    if gate_type is GateType.XOR:
        acc = 0
        for word in inputs:
            acc ^= word
        return acc & mask
    if gate_type is GateType.XNOR:
        acc = 0
        for word in inputs:
            acc ^= word
        return (acc ^ mask) & mask
    if gate_type is GateType.NOT:
        return inputs[0] ^ mask
    if gate_type is GateType.BUF:
        return inputs[0] & mask
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    raise ValueError(f"unknown gate type: {gate_type!r}")


def gate_function(gate_type: GateType) -> Callable[[Sequence[int]], int]:
    """Return the scalar Boolean function of ``gate_type`` on 0/1 ints."""

    def fn(bits: Sequence[int]) -> int:
        return evaluate_gate(gate_type, bits, 1)

    return fn


def controlling_value(gate_type: GateType) -> Optional[int]:
    """Return the controlling input value of ``gate_type``, if one exists.

    A controlling value on any single input fully determines the output.
    AND/NAND are controlled by 0, OR/NOR by 1; XOR/XNOR, BUF and NOT have
    no controlling value (``None``).
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return 0
    if gate_type in (GateType.OR, GateType.NOR):
        return 1
    return None


def controlled_response(gate_type: GateType) -> Optional[int]:
    """Return the output value produced when a controlling input is present."""
    cv = controlling_value(gate_type)
    if cv is None:
        return None
    base = cv  # AND outputs 0 on a 0; OR outputs 1 on a 1
    if gate_type in INVERTING_TYPES:
        return base ^ 1
    return base


def inversion_parity(gate_type: GateType) -> int:
    """Return 1 if the gate inverts the propagated fault polarity, else 0.

    For XOR/XNOR the parity of a single sensitized path depends on the side
    inputs; this function reports the *structural* inversion (XNOR and the
    inverting basic gates count as inverting).
    """
    return 1 if gate_type in INVERTING_TYPES else 0


def is_monotone(gate_type: GateType) -> bool:
    """Return True for gates monotone in every input (AND/OR/BUF/consts)."""
    return gate_type in (
        GateType.AND,
        GateType.OR,
        GateType.BUF,
        GateType.CONST0,
        GateType.CONST1,
    )


def output_probability(gate_type: GateType, probs: Sequence[float]) -> float:
    """Propagate independent signal probabilities through one gate.

    ``probs[i]`` is ``P[input_i = 1]``; the return value is ``P[output = 1]``
    under the assumption that the inputs are statistically independent (exact
    on fanout-free circuits — the COP assumption the DP relies on).
    """
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        p = 1.0
        for q in probs:
            p *= q
        return 1.0 - p if gate_type is GateType.NAND else p
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        p = 1.0
        for q in probs:
            p *= 1.0 - q
        return p if gate_type is GateType.NOR else 1.0 - p
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        # P[odd number of ones]; combine pairwise: p ⊕ q = p(1-q) + q(1-p).
        p = 0.0
        for q in probs:
            p = p * (1.0 - q) + q * (1.0 - p)
        return 1.0 - p if gate_type is GateType.XNOR else p
    if gate_type is GateType.NOT:
        return 1.0 - probs[0]
    if gate_type is GateType.BUF:
        return probs[0]
    if gate_type is GateType.CONST0:
        return 0.0
    if gate_type is GateType.CONST1:
        return 1.0
    raise ValueError(f"unknown gate type: {gate_type!r}")


def side_input_sensitization_probability(
    gate_type: GateType, side_probs: Sequence[float]
) -> float:
    """Probability that the side inputs let a change on one input through.

    For AND/NAND every side input must be 1; for OR/NOR every side input
    must be 0; XOR/XNOR always propagate (probability 1); unary gates have
    no side inputs (probability 1).  This is the COP observability transfer
    term for a single gate.
    """
    if gate_type in (GateType.AND, GateType.NAND):
        p = 1.0
        for q in side_probs:
            p *= q
        return p
    if gate_type in (GateType.OR, GateType.NOR):
        p = 1.0
        for q in side_probs:
            p *= 1.0 - q
        return p
    if gate_type in (GateType.XOR, GateType.XNOR):
        return 1.0
    if gate_type in (GateType.NOT, GateType.BUF):
        return 1.0
    raise ValueError(f"gate type {gate_type!r} has no observability transfer")
