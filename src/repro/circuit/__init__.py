"""Gate-level netlist substrate: model, construction, I/O, analysis.

Public surface:

* :class:`~repro.circuit.netlist.Circuit` / :class:`~repro.circuit.netlist.Node`
  — the netlist DAG;
* :class:`~repro.circuit.builder.CircuitBuilder` — fluent construction;
* :mod:`~repro.circuit.bench_io` — ISCAS ``.bench`` round-trip;
* :mod:`~repro.circuit.generators` / :mod:`~repro.circuit.library`
  — the benchmark workload suite;
* :mod:`~repro.circuit.transforms` — function-preserving rewrites;
* :mod:`~repro.circuit.analysis` — fanout-free regions and reconvergence.
"""

from .analysis import (
    FanoutFreeRegion,
    fanout_free_regions,
    has_reconvergent_fanout,
    is_fanout_free,
    reconvergent_stems,
)
from .bench_io import parse_bench, parse_bench_file, write_bench, write_bench_file
from .builder import CircuitBuilder
from .gates import GateType
from .library import BENCHMARKS, benchmark, benchmark_names, benchmark_suite
from .netlist import Circuit, CircuitError, Node
from .transforms import collapse_buffers, factorize_to_two_input, sweep_dead_logic
from .verify import EquivalenceResult, check_equivalence
from .verilog_io import (
    parse_verilog,
    parse_verilog_file,
    write_verilog,
    write_verilog_file,
)

__all__ = [
    "Circuit",
    "CircuitError",
    "Node",
    "GateType",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "factorize_to_two_input",
    "sweep_dead_logic",
    "collapse_buffers",
    "is_fanout_free",
    "has_reconvergent_fanout",
    "reconvergent_stems",
    "FanoutFreeRegion",
    "fanout_free_regions",
    "BENCHMARKS",
    "benchmark",
    "benchmark_names",
    "benchmark_suite",
    "EquivalenceResult",
    "check_equivalence",
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
]
