"""ISCAS-85 ``.bench`` netlist reader and writer.

``.bench`` was the interchange format of the 1985/1989 ISCAS benchmark
releases — the circuits a 1987 DAC paper would have been evaluated on.
Grammar (case-insensitive keywords, ``#`` comments)::

    # comment
    INPUT(a)
    OUTPUT(y)
    n1 = NAND(a, b)
    y  = NOT(n1)

Supported cell names map 1:1 onto :class:`~repro.circuit.gates.GateType`,
plus ``BUFF`` / ``DFF`` aliases (a DFF is treated as a pseudo input/output
pair boundary when ``scan=True``, matching the "full-scan version" treatment
of sequential benchmarks used throughout the TPI literature).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParseError
from .gates import GateType
from .netlist import Circuit

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "write_bench_file"]

_TYPE_ALIASES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(([^)]*)\)$")


def parse_bench(
    text: str,
    name: str = "bench",
    scan: bool = True,
    source: Optional[str] = None,
) -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name given to the resulting circuit.
    scan:
        When True, ``DFF`` cells are broken into a pseudo primary output
        (the D pin) and a pseudo primary input (the Q pin) — the standard
        full-scan abstraction.  When False, DFFs raise an error.
    source:
        Origin of ``text`` (usually the file name) for diagnostics; every
        :class:`~repro.errors.ParseError` raised here carries it together
        with the 1-based line number of the offending declaration.
    """
    inputs: List[Tuple[str, int]] = []
    outputs: List[Tuple[str, int]] = []
    gates: List[Tuple[str, str, List[str], int]] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        m = _IO_RE.match(line)
        if m:
            keyword, signal = m.group(1).upper(), m.group(2)
            target = inputs if keyword == "INPUT" else outputs
            target.append((signal, lineno))
            continue
        m = _GATE_RE.match(line)
        if m:
            out, cell, arg_text = m.group(1), m.group(2).upper(), m.group(3)
            fanins = [a.strip() for a in arg_text.split(",") if a.strip()]
            gates.append((out, cell, fanins, lineno))
            continue
        raise ParseError(
            f"unparseable .bench line: {raw_line!r}", path=source, line=lineno
        )

    # Declaration audit before touching the circuit: every signal defined
    # exactly once, every reference resolvable, every cell name known.
    defined: Dict[str, int] = {}

    def define(signal: str, lineno: int) -> None:
        prev = defined.get(signal)
        if prev is not None:
            raise ParseError(
                f"duplicate definition of signal {signal!r} "
                f"(first defined on line {prev})",
                path=source,
                line=lineno,
            )
        defined[signal] = lineno

    for pi, lineno in inputs:
        define(pi, lineno)
    for out, cell, fanins, lineno in gates:
        if cell == "DFF":
            if not scan:
                raise ParseError(
                    "sequential cell DFF found; pass scan=True for the "
                    "full-scan combinational abstraction",
                    path=source,
                    line=lineno,
                )
            if len(fanins) != 1:
                raise ParseError(
                    f"DFF {out!r} must have exactly one input",
                    path=source,
                    line=lineno,
                )
        elif cell not in _TYPE_ALIASES:
            raise ParseError(
                f"unknown .bench cell type {cell!r}", path=source, line=lineno
            )
        define(out, lineno)
    for out, _cell, fanins, lineno in gates:
        for fi in fanins:
            if fi not in defined:
                raise ParseError(
                    f"gate {out!r} references undefined signal {fi!r}",
                    path=source,
                    line=lineno,
                )
    for po, lineno in outputs:
        if po not in defined:
            raise ParseError(
                f"OUTPUT({po}) names an undefined signal",
                path=source,
                line=lineno,
            )

    circuit = Circuit(name)
    for pi, _lineno in inputs:
        circuit.add_input(pi)

    # DFFs under the scan abstraction: Q becomes a pseudo-PI, D a pseudo-PO.
    for out, cell, _fanins, _lineno in gates:
        if cell == "DFF":
            circuit.add_input(out)

    # Insert combinational gates in dependency order (bench files are
    # unordered, so iterate until fixpoint).  With undefined references
    # ruled out above, a stalled fixpoint can only mean a cycle.
    remaining = [(o, c, f, ln) for (o, c, f, ln) in gates if c != "DFF"]
    scan_pos = [f[0] for (_o, c, f, _ln) in gates if c == "DFF"]
    while remaining:
        progressed = False
        deferred: List[Tuple[str, str, List[str], int]] = []
        for out, cell, fanins, lineno in remaining:
            if all(fi in circuit for fi in fanins):
                circuit.add_gate(out, _TYPE_ALIASES[cell], fanins)
                progressed = True
            else:
                deferred.append((out, cell, fanins, lineno))
        if not progressed:
            cyclic = sorted(o for o, _c, _f, _ln in deferred)
            raise ParseError(
                f"combinational cycle through gates {cyclic[:5]}",
                path=source,
                line=deferred[0][3],
            )
        remaining = deferred

    for po in [s for s, _ln in outputs] + scan_pos:
        circuit.mark_output(po)
    circuit.validate()
    return circuit


def parse_bench_file(path: Union[str, Path], scan: bool = True) -> Circuit:
    """Read and parse a ``.bench`` file; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(
        path.read_text(), name=path.stem, scan=scan, source=str(path)
    )


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text (round-trips with the parser)."""
    lines = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            continue
        args = ", ".join(node.fanins)
        lines.append(f"{name} = {node.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write the circuit to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench(circuit))
