"""ISCAS-85 ``.bench`` netlist reader and writer.

``.bench`` was the interchange format of the 1985/1989 ISCAS benchmark
releases — the circuits a 1987 DAC paper would have been evaluated on.
Grammar (case-insensitive keywords, ``#`` comments)::

    # comment
    INPUT(a)
    OUTPUT(y)
    n1 = NAND(a, b)
    y  = NOT(n1)

Supported cell names map 1:1 onto :class:`~repro.circuit.gates.GateType`,
plus ``BUFF`` / ``DFF`` aliases (a DFF is treated as a pseudo input/output
pair boundary when ``scan=True``, matching the "full-scan version" treatment
of sequential benchmarks used throughout the TPI literature).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "write_bench_file"]

_TYPE_ALIASES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(([^)]*)\)$")


def parse_bench(text: str, name: str = "bench", scan: bool = True) -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name given to the resulting circuit.
    scan:
        When True, ``DFF`` cells are broken into a pseudo primary output
        (the D pin) and a pseudo primary input (the Q pin) — the standard
        full-scan abstraction.  When False, DFFs raise an error.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Tuple[str, str, List[str]]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        m = _IO_RE.match(line)
        if m:
            keyword, signal = m.group(1).upper(), m.group(2)
            (inputs if keyword == "INPUT" else outputs).append(signal)
            continue
        m = _GATE_RE.match(line)
        if m:
            out, cell, arg_text = m.group(1), m.group(2).upper(), m.group(3)
            fanins = [a.strip() for a in arg_text.split(",") if a.strip()]
            gates.append((out, cell, fanins))
            continue
        raise CircuitError(f"unparseable .bench line: {raw_line!r}")

    circuit = Circuit(name)
    for pi in inputs:
        circuit.add_input(pi)

    # DFFs under the scan abstraction: Q becomes a pseudo-PI, D a pseudo-PO.
    pending = list(gates)
    for out, cell, fanins in list(pending):
        if cell == "DFF":
            if not scan:
                raise CircuitError(
                    "sequential cell DFF found; pass scan=True for the "
                    "full-scan combinational abstraction"
                )
            if len(fanins) != 1:
                raise CircuitError(f"DFF {out!r} must have exactly one input")
            circuit.add_input(out)

    # Insert combinational gates in dependency order (bench files are
    # unordered, so iterate until fixpoint).
    remaining = [(o, c, f) for (o, c, f) in pending if c != "DFF"]
    scan_pos = [f[0] for (_o, c, f) in pending if c == "DFF"]
    while remaining:
        progressed = False
        deferred: List[Tuple[str, str, List[str]]] = []
        for out, cell, fanins in remaining:
            if all(fi in circuit for fi in fanins):
                gate_type = _TYPE_ALIASES.get(cell)
                if gate_type is None:
                    raise CircuitError(f"unknown .bench cell type {cell!r}")
                circuit.add_gate(out, gate_type, fanins)
                progressed = True
            else:
                deferred.append((out, cell, fanins))
        if not progressed:
            missing = sorted(
                {fi for _o, _c, fs in deferred for fi in fs if fi not in circuit}
            )
            raise CircuitError(
                f"undriven signals or combinational cycle: {missing[:5]}"
            )
        remaining = deferred

    for po in outputs + scan_pos:
        circuit.mark_output(po)
    circuit.validate()
    return circuit


def parse_bench_file(path: Union[str, Path], scan: bool = True) -> Circuit:
    """Read and parse a ``.bench`` file; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem, scan=scan)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text (round-trips with the parser)."""
    lines = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            continue
        args = ", ".join(node.fanins)
        lines.append(f"{name} = {node.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write the circuit to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench(circuit))
