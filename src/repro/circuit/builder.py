"""Fluent programmatic netlist construction.

:class:`CircuitBuilder` wraps :class:`~repro.circuit.netlist.Circuit` with
auto-named gate helpers so tests, generators and examples can express logic
as nested expressions::

    b = CircuitBuilder("demo")
    a, c = b.inputs("a", "c")
    y = b.and_(a, b.not_(c))
    b.output(y)
    circuit = b.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .gates import GateType
from .netlist import Circuit

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Incremental builder with automatic gate naming.

    Gate names are generated as ``<type><counter>`` (e.g. ``and3``) unless an
    explicit ``name=`` is given; primary inputs always use caller names.
    """

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)
        self._counter = 0

    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare one primary input."""
        return self._circuit.add_input(name)

    def inputs(self, *names: str) -> List[str]:
        """Declare several primary inputs at once."""
        return [self._circuit.add_input(n) for n in names]

    def output(self, *names: str) -> None:
        """Mark nodes as primary outputs."""
        for n in names:
            self._circuit.mark_output(n)

    def gate(
        self, gate_type: GateType, fanins: Sequence[str], name: Optional[str] = None
    ) -> str:
        """Add a gate of arbitrary type; returns the new node name."""
        if name is None:
            self._counter += 1
            name = self._circuit.fresh_name(
                f"{gate_type.value.lower()}{self._counter}"
            )
        return self._circuit.add_gate(name, gate_type, fanins)

    # Typed helpers -----------------------------------------------------
    def and_(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add an AND gate."""
        return self.gate(GateType.AND, fanins, name)

    def or_(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add an OR gate."""
        return self.gate(GateType.OR, fanins, name)

    def nand(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add a NAND gate."""
        return self.gate(GateType.NAND, fanins, name)

    def nor(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add a NOR gate."""
        return self.gate(GateType.NOR, fanins, name)

    def xor(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add an XOR gate."""
        return self.gate(GateType.XOR, fanins, name)

    def xnor(self, *fanins: str, name: Optional[str] = None) -> str:
        """Add an XNOR gate."""
        return self.gate(GateType.XNOR, fanins, name)

    def not_(self, fanin: str, name: Optional[str] = None) -> str:
        """Add an inverter."""
        return self.gate(GateType.NOT, [fanin], name)

    def buf(self, fanin: str, name: Optional[str] = None) -> str:
        """Add a buffer."""
        return self.gate(GateType.BUF, [fanin], name)

    def const0(self, name: Optional[str] = None) -> str:
        """Add a constant-0 tie cell."""
        return self.gate(GateType.CONST0, [], name)

    def const1(self, name: Optional[str] = None) -> str:
        """Add a constant-1 tie cell."""
        return self.gate(GateType.CONST1, [], name)

    # ------------------------------------------------------------------
    @property
    def circuit(self) -> Circuit:
        """The circuit under construction (not yet validated)."""
        return self._circuit

    def build(self, validate: bool = True) -> Circuit:
        """Finish construction, optionally validating, and return the circuit."""
        if validate:
            self._circuit.validate()
        return self._circuit
