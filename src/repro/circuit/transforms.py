"""Structural netlist transforms.

These rewrites preserve the Boolean function at every primary output while
normalizing structure for downstream algorithms:

* :func:`factorize_to_two_input` — decompose wide symmetric gates into
  balanced trees of two-input gates (the dynamic program and the
  probabilistic analyses operate on ≤2-input gates);
* :func:`sweep_dead_logic` — remove nodes that reach no primary output;
* :func:`collapse_buffers` — splice out BUF gates.
"""

from __future__ import annotations

from typing import Dict, List

from .gates import GateType
from .netlist import Circuit

__all__ = [
    "factorize_to_two_input",
    "sweep_dead_logic",
    "collapse_buffers",
]

_BASE_OF_INVERTING = {
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
}


def factorize_to_two_input(circuit: Circuit) -> Circuit:
    """Return a functionally equivalent circuit with only ≤2-input gates.

    A wide symmetric gate becomes a balanced binary tree; inverting types
    (NAND/NOR/XNOR) build the tree in the non-inverting base function and
    invert only at the final stage, so intermediate nodes keep the natural
    AND/OR/XOR semantics the testability models expect.
    """
    out = Circuit(circuit.name)
    for pi in circuit.inputs:
        out.add_input(pi)
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            continue
        fanins = list(node.fanins)
        gate_type = node.gate_type
        if len(fanins) <= 2:
            out.add_gate(name, gate_type, fanins)
            continue
        base = _BASE_OF_INVERTING.get(gate_type, gate_type)
        # Balanced reduction of the fan-in list down to two operands.
        layer: List[str] = fanins
        tier = 0
        while len(layer) > 2:
            nxt: List[str] = []
            for i in range(0, len(layer) - 1, 2):
                mid = out.fresh_name(f"{name}__f{tier}_{i // 2}")
                out.add_gate(mid, base, [layer[i], layer[i + 1]])
                nxt.append(mid)
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
            tier += 1
        out.add_gate(name, gate_type, layer)
    for po in circuit.outputs:
        out.mark_output(po)
    out.validate()
    return out


def sweep_dead_logic(circuit: Circuit) -> Circuit:
    """Return a copy containing only logic in some primary output cone.

    Primary inputs are always retained (removing a PI changes the test
    interface even if the input is unused).
    """
    live = set()
    for po in circuit.outputs:
        live |= circuit.fanin_cone(po)
    out = Circuit(circuit.name)
    for pi in circuit.inputs:
        out.add_input(pi)
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_gate and name in live:
            out.add_gate(name, node.gate_type, node.fanins)
    for po in circuit.outputs:
        out.mark_output(po)
    out.validate()
    return out


def collapse_buffers(circuit: Circuit) -> Circuit:
    """Return a copy with every BUF gate spliced out.

    A BUF that is itself a primary output is kept (removing it would rename
    the output), as is a BUF fed directly by another kept BUF output.
    """
    out_set = set(circuit.outputs)
    alias: Dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    out = Circuit(circuit.name)
    for pi in circuit.inputs:
        out.add_input(pi)
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            continue
        fanins = [resolve(fi) for fi in node.fanins]
        if node.gate_type is GateType.BUF and name not in out_set:
            alias[name] = fanins[0]
            continue
        out.add_gate(name, node.gate_type, fanins)
    for po in circuit.outputs:
        out.mark_output(po)
    out.validate()
    return out
