"""Parameterized benchmark circuit generators.

The original 1987 evaluation ran on early benchmark netlists that are not
redistributable here, so this module provides the substituted workload suite
(see DESIGN.md §4): classic textbook structures (adders, multipliers, parity
trees, multiplexers, decoders, comparators, a small ALU), seeded random
trees/DAGs with controlled shape, and deliberately **random-pattern
resistant** stress circuits (wide AND/OR cones and deep corridors) whose
faults have vanishing detection probabilities — exactly the inputs test
point insertion exists to fix.

All generators are deterministic: identical arguments (including ``seed``)
produce identical netlists.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .builder import CircuitBuilder
from .gates import GateType
from .netlist import Circuit

__all__ = [
    "c17",
    "parity_tree",
    "ripple_carry_adder",
    "array_multiplier",
    "equality_comparator",
    "magnitude_comparator",
    "mux_tree",
    "decoder",
    "alu_slice",
    "random_tree",
    "random_dag",
    "wide_and_cone",
    "wide_or_cone",
    "rpr_corridor",
    "rpr_mixed",
    "barrel_shifter",
    "priority_encoder",
    "popcount_tree",
    "gray_to_binary",
]

_TREE_GATE_TYPES = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def c17() -> Circuit:
    """The ISCAS-85 c17 circuit: 6 NAND gates, 5 inputs, 2 outputs."""
    b = CircuitBuilder("c17")
    g1, g2, g3, g6, g7 = b.inputs("G1", "G2", "G3", "G6", "G7")
    g10 = b.nand(g1, g3, name="G10")
    g11 = b.nand(g3, g6, name="G11")
    g16 = b.nand(g2, g11, name="G16")
    g19 = b.nand(g11, g7, name="G19")
    g22 = b.nand(g10, g16, name="G22")
    g23 = b.nand(g16, g19, name="G23")
    b.output(g22, g23)
    return b.build()


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    if width < 2:
        raise ValueError("parity tree needs at least 2 inputs")
    b = CircuitBuilder(name or f"parity{width}")
    layer = b.inputs(*[f"x{i}" for i in range(width)])
    while len(layer) > 1:
        nxt: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.xor(layer[i], layer[i + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    b.output(layer[0])
    return b.build()


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit ripple-carry adder (full adders from 2-input gates)."""
    if width < 1:
        raise ValueError("adder width must be positive")
    b = CircuitBuilder(name or f"rca{width}")
    a = b.inputs(*[f"a{i}" for i in range(width)])
    c = b.inputs(*[f"b{i}" for i in range(width)])
    carry = b.input("cin")
    for i in range(width):
        axb = b.xor(a[i], c[i], name=f"axb{i}")
        s = b.xor(axb, carry, name=f"sum{i}")
        t1 = b.and_(a[i], c[i], name=f"gen{i}")
        t2 = b.and_(axb, carry, name=f"prop{i}")
        carry = b.or_(t1, t2, name=f"carry{i}")
        b.output(s)
    b.output(carry)
    return b.build()


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """``width``×``width`` unsigned array multiplier (AND matrix + adders)."""
    if width < 2:
        raise ValueError("multiplier width must be ≥ 2")
    b = CircuitBuilder(name or f"mult{width}")
    a = b.inputs(*[f"a{i}" for i in range(width)])
    x = b.inputs(*[f"b{i}" for i in range(width)])
    # Partial product matrix.
    pp = [[b.and_(a[i], x[j], name=f"pp{i}_{j}") for j in range(width)] for i in range(width)]
    # Column-wise carry-save reduction.
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(pp[i][j])
    adder_idx = 0
    for col in range(2 * width - 1):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                p, q, r = columns[col][:3]
                del columns[col][:3]
                pxq = b.xor(p, q, name=f"fa{adder_idx}_x")
                s = b.xor(pxq, r, name=f"fa{adder_idx}_s")
                m1 = b.and_(p, q, name=f"fa{adder_idx}_m1")
                m2 = b.and_(pxq, r, name=f"fa{adder_idx}_m2")
                co = b.or_(m1, m2, name=f"fa{adder_idx}_c")
            else:
                p, q = columns[col][:2]
                del columns[col][:2]
                s = b.xor(p, q, name=f"ha{adder_idx}_s")
                co = b.and_(p, q, name=f"ha{adder_idx}_c")
            adder_idx += 1
            columns[col].append(s)
            columns[col + 1].append(co)
    for col in range(2 * width):
        if columns[col]:
            b.output(columns[col][0])
    return b.build()


def equality_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit equality comparator: output 1 iff a == b.

    The wide final AND makes the output stuck-at-0 fault random-pattern
    resistant (detection probability 2^-width), a canonical TPI target.
    """
    if width < 1:
        raise ValueError("comparator width must be positive")
    b = CircuitBuilder(name or f"eqcmp{width}")
    a = b.inputs(*[f"a{i}" for i in range(width)])
    c = b.inputs(*[f"b{i}" for i in range(width)])
    eqs = [b.xnor(a[i], c[i], name=f"eq{i}") for i in range(width)]
    out = eqs[0] if width == 1 else b.and_(*eqs, name="all_eq")
    b.output(out)
    return b.build()


def magnitude_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit magnitude comparator producing a ``gt`` output (a > b)."""
    if width < 1:
        raise ValueError("comparator width must be positive")
    b = CircuitBuilder(name or f"magcmp{width}")
    a = b.inputs(*[f"a{i}" for i in range(width)])
    c = b.inputs(*[f"b{i}" for i in range(width)])
    gt: Optional[str] = None
    # MSB-first prefix structure: gt = a_i > b_i AND all higher bits equal.
    eq_prefix: Optional[str] = None
    for i in reversed(range(width)):
        nb = b.not_(c[i], name=f"nb{i}")
        here_gt = b.and_(a[i], nb, name=f"gtbit{i}")
        if eq_prefix is not None:
            here_gt = b.and_(here_gt, eq_prefix, name=f"gtmask{i}")
        gt = here_gt if gt is None else b.or_(gt, here_gt, name=f"gtacc{i}")
        here_eq = b.xnor(a[i], c[i], name=f"eqbit{i}")
        eq_prefix = (
            here_eq if eq_prefix is None else b.and_(eq_prefix, here_eq, name=f"eqpre{i}")
        )
    b.output(gt)
    return b.build()


def mux_tree(select_bits: int, name: Optional[str] = None) -> Circuit:
    """A ``2**select_bits``-to-1 multiplexer built as a tree of 2:1 muxes."""
    if select_bits < 1:
        raise ValueError("need at least one select bit")
    b = CircuitBuilder(name or f"mux{2 ** select_bits}")
    data = b.inputs(*[f"d{i}" for i in range(2**select_bits)])
    sels = b.inputs(*[f"s{i}" for i in range(select_bits)])
    layer = data
    for lvl, sel in enumerate(sels):
        nsel = b.not_(sel, name=f"ns{lvl}")
        nxt: List[str] = []
        for i in range(0, len(layer), 2):
            lo = b.and_(layer[i], nsel, name=f"m{lvl}_{i}_lo")
            hi = b.and_(layer[i + 1], sel, name=f"m{lvl}_{i}_hi")
            nxt.append(b.or_(lo, hi, name=f"m{lvl}_{i}"))
        layer = nxt
    b.output(layer[0])
    return b.build()


def decoder(select_bits: int, name: Optional[str] = None) -> Circuit:
    """``select_bits``-to-``2**select_bits`` one-hot decoder with enable."""
    if select_bits < 1:
        raise ValueError("need at least one select bit")
    b = CircuitBuilder(name or f"dec{select_bits}")
    sels = b.inputs(*[f"s{i}" for i in range(select_bits)])
    en = b.input("en")
    nsels = [b.not_(s, name=f"ns{i}") for i, s in enumerate(sels)]
    for code in range(2**select_bits):
        terms = [sels[i] if (code >> i) & 1 else nsels[i] for i in range(select_bits)]
        b.output(b.and_(*terms, en, name=f"y{code}"))
    return b.build()


def alu_slice(width: int, name: Optional[str] = None) -> Circuit:
    """Small ALU: op-select between AND / OR / XOR / ADD of two operands.

    The shared operand fanout and the output muxes create heavy reconvergence
    — a stress input for the general-circuit (NP-hard) side of TPI.
    """
    if width < 1:
        raise ValueError("ALU width must be positive")
    b = CircuitBuilder(name or f"alu{width}")
    a = b.inputs(*[f"a{i}" for i in range(width)])
    c = b.inputs(*[f"b{i}" for i in range(width)])
    s0, s1 = b.inputs("op0", "op1")
    ns0 = b.not_(s0, name="nop0")
    ns1 = b.not_(s1, name="nop1")
    sel_and = b.and_(ns1, ns0, name="sel_and")  # op=00
    sel_or = b.and_(ns1, s0, name="sel_or")  # op=01
    sel_xor = b.and_(s1, ns0, name="sel_xor")  # op=10
    sel_add = b.and_(s1, s0, name="sel_add")  # op=11
    carry = b.const0(name="c_in")
    for i in range(width):
        f_and = b.and_(a[i], c[i], name=f"f_and{i}")
        f_or = b.or_(a[i], c[i], name=f"f_or{i}")
        f_xor = b.xor(a[i], c[i], name=f"f_xor{i}")
        f_sum = b.xor(f_xor, carry, name=f"f_sum{i}")
        m1 = b.and_(a[i], c[i], name=f"cg{i}")
        m2 = b.and_(f_xor, carry, name=f"cp{i}")
        carry = b.or_(m1, m2, name=f"cout{i}")
        t_and = b.and_(f_and, sel_and, name=f"t_and{i}")
        t_or = b.and_(f_or, sel_or, name=f"t_or{i}")
        t_xor = b.and_(f_xor, sel_xor, name=f"t_xor{i}")
        t_add = b.and_(f_sum, sel_add, name=f"t_add{i}")
        y = b.or_(t_and, t_or, t_xor, t_add, name=f"y{i}")
        b.output(y)
    b.output(carry)
    return b.build()


def random_tree(
    n_gates: int,
    seed: int = 0,
    gate_types: Sequence[GateType] = _TREE_GATE_TYPES,
    include_inverters: bool = True,
    name: Optional[str] = None,
) -> Circuit:
    """Seeded random fanout-free circuit with ``n_gates`` 2-input gates.

    Construction grows a single tree from the output downward: maintain a
    frontier of unfilled leaf slots; each step either expands a slot into a
    gate (two fresh slots) or terminates it as a primary input.  Every node
    drives exactly one pin, so the result is fanout-free by construction —
    the regime in which the paper's DP is exact.
    """
    if n_gates < 1:
        raise ValueError("need at least one gate")
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"rtree{n_gates}_s{seed}")

    # Decide the tree shape first: a full binary tree with n_gates internal
    # nodes has n_gates + 1 leaves.
    gate_kinds = [rng.choice(list(gate_types)) for _ in range(n_gates)]

    leaf_idx = 0

    def grow(remaining: int) -> str:
        """Build a subtree containing exactly ``remaining`` gates."""
        nonlocal leaf_idx
        if remaining == 0:
            nm = f"x{leaf_idx}"
            leaf_idx += 1
            b.input(nm)
            if include_inverters and rng.random() < 0.2:
                return b.not_(nm)
            return nm
        left = rng.randint(0, remaining - 1)
        lhs = grow(left)
        rhs = grow(remaining - 1 - left)
        return b.gate(gate_kinds[remaining - 1], [lhs, rhs])

    root = grow(n_gates)
    b.output(root)
    return b.build()


def random_dag(
    n_inputs: int,
    n_gates: int,
    seed: int = 0,
    fanin_span: int = 12,
    n_outputs: Optional[int] = None,
    gate_types: Sequence[GateType] = _TREE_GATE_TYPES,
    name: Optional[str] = None,
) -> Circuit:
    """Seeded random DAG with reconvergent fanout.

    Gates pick two distinct drivers uniformly from the most recent
    ``fanin_span`` already-created nodes, which yields realistic locality
    and plenty of shared fanout.  Nodes left driving nothing become primary
    outputs (plus ``n_outputs`` random internal taps when requested).
    """
    if n_inputs < 2 or n_gates < 1:
        raise ValueError("need ≥2 inputs and ≥1 gate")
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"rdag{n_gates}_s{seed}")
    pool = b.inputs(*[f"x{i}" for i in range(n_inputs)])
    for _ in range(n_gates):
        gt = rng.choice(list(gate_types))
        window = pool[-fanin_span:]
        lhs = rng.choice(window)
        rhs = rng.choice(window)
        if rhs == lhs and len(window) > 1:
            while rhs == lhs:
                rhs = rng.choice(window)
        pool.append(b.gate(gt, [lhs, rhs]))
    circuit = b.circuit  # inspect fanouts before validation
    sinks = [n for n in circuit.node_names if circuit.fanout_count(n) == 0]
    for s in sinks:
        circuit.mark_output(s)
    if n_outputs is not None and n_outputs > len(sinks):
        extra = [n for n in pool if n not in sinks]
        rng.shuffle(extra)
        for s in extra[: n_outputs - len(sinks)]:
            circuit.mark_output(s)
    circuit.validate()
    return circuit


def wide_and_cone(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced AND tree over ``width`` inputs: 1-controllability 2^-width.

    Output stuck-at-0 and every "all the rest at 1" excitation make this the
    canonical random-pattern-resistant structure for control points.
    """
    if width < 2:
        raise ValueError("cone width must be ≥ 2")
    b = CircuitBuilder(name or f"wand{width}")
    layer = b.inputs(*[f"x{i}" for i in range(width)])
    tier = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.and_(layer[i], layer[i + 1], name=f"a{tier}_{i // 2}"))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        tier += 1
    b.output(layer[0])
    return b.build()


def wide_or_cone(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced OR tree over ``width`` inputs: 0-controllability 2^-width."""
    if width < 2:
        raise ValueError("cone width must be ≥ 2")
    b = CircuitBuilder(name or f"wor{width}")
    layer = b.inputs(*[f"x{i}" for i in range(width)])
    tier = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.or_(layer[i], layer[i + 1], name=f"o{tier}_{i // 2}"))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        tier += 1
    b.output(layer[0])
    return b.build()


def rpr_corridor(length: int, name: Optional[str] = None) -> Circuit:
    """A low-observability corridor: a chain of ANDs gated by side inputs.

    A fault entering the head of the chain only propagates when *every*
    side input is 1 (probability 2^-length) — the canonical observation
    point target.
    """
    if length < 1:
        raise ValueError("corridor length must be positive")
    b = CircuitBuilder(name or f"corridor{length}")
    head = b.input("head")
    cur = head
    for i in range(length):
        side = b.input(f"g{i}")
        cur = b.and_(cur, side, name=f"c{i}")
    b.output(cur)
    return b.build()


def rpr_mixed(
    cone_width: int = 8,
    corridor_length: int = 6,
    n_blocks: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> Circuit:
    """Composite random-pattern-resistant benchmark.

    Each block ANDs a wide cone into a low-observability corridor and the
    blocks are XOR-combined, so both controllability *and* observability
    deficiencies are present, distributed across the netlist.  This is the
    headline workload for the coverage experiments (T4/F1/F3).
    """
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"rprmix_w{cone_width}_l{corridor_length}_n{n_blocks}")
    block_outs: List[str] = []
    for blk in range(n_blocks):
        layer = b.inputs(*[f"p{blk}_{i}" for i in range(cone_width)])
        tier = 0
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                gt = GateType.AND if rng.random() < 0.8 else GateType.NAND
                nxt.append(b.gate(gt, [layer[i], layer[i + 1]], name=f"b{blk}_t{tier}_{i // 2}"))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
            tier += 1
        cur = layer[0]
        for i in range(corridor_length):
            side = b.input(f"q{blk}_{i}")
            cur = b.and_(cur, side, name=f"b{blk}_c{i}")
        block_outs.append(cur)
    out = block_outs[0]
    for i, nxt_block in enumerate(block_outs[1:]):
        out = b.xor(out, nxt_block, name=f"mix{i}")
    b.output(out)
    # A couple of directly observable escapes keep baseline coverage nonzero.
    easy = b.or_(f"p0_0", f"p0_1", name="easy_or")
    b.output(easy)
    return b.build()


def barrel_shifter(width_log2: int, name: Optional[str] = None) -> Circuit:
    """Logarithmic barrel shifter: ``2**width_log2`` data bits, left-rotate.

    Each stage conditionally rotates by ``2**stage`` under one select bit;
    the layered mux structure creates long reconvergent select fanout —
    a classic controllability stress for TPI.
    """
    if width_log2 < 1:
        raise ValueError("need at least one shift stage")
    width = 1 << width_log2
    b = CircuitBuilder(name or f"bshift{width}")
    data = b.inputs(*[f"d{i}" for i in range(width)])
    sels = b.inputs(*[f"s{i}" for i in range(width_log2)])
    layer = data
    for stage, sel in enumerate(sels):
        nsel = b.not_(sel, name=f"ns{stage}")
        shift = 1 << stage
        nxt: List[str] = []
        for i in range(width):
            keep = b.and_(layer[i], nsel, name=f"k{stage}_{i}")
            take = b.and_(layer[(i - shift) % width], sel, name=f"t{stage}_{i}")
            nxt.append(b.or_(keep, take, name=f"m{stage}_{i}"))
        layer = nxt
    for i, sig in enumerate(layer):
        b.output(sig)
    return b.build()


def priority_encoder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-input priority encoder: one-hot grant to the lowest index.

    ``grant_i = req_i AND NOT(req_0 OR … OR req_{i-1})``; the request
    prefix chain gives low-observability deep requests — observation-point
    bait in the TPI experiments.
    """
    if width < 2:
        raise ValueError("need at least two request lines")
    b = CircuitBuilder(name or f"prio{width}")
    reqs = b.inputs(*[f"r{i}" for i in range(width)])
    b.output(b.buf(reqs[0], name="g0"))
    blocked = reqs[0]
    for i in range(1, width):
        nb = b.not_(blocked, name=f"nb{i}")
        b.output(b.and_(reqs[i], nb, name=f"g{i}"))
        if i < width - 1:
            blocked = b.or_(blocked, reqs[i], name=f"pre{i}")
    return b.build()


def popcount_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Population counter: sum of ``width`` input bits as a binary number.

    Built from full/half adders in a carry-save tree — an arithmetic
    workload with heavy XOR content (no controlling values to exploit).
    """
    if width < 2:
        raise ValueError("need at least two bits to count")
    b = CircuitBuilder(name or f"popcnt{width}")
    ins = b.inputs(*[f"x{i}" for i in range(width)])
    columns: List[List[str]] = [list(ins)]
    idx = 0
    col = 0
    while col < len(columns):
        while len(columns[col]) > 1:
            if len(columns) == col + 1:
                columns.append([])
            if len(columns[col]) >= 3:
                p, q, r = columns[col][:3]
                del columns[col][:3]
                pxq = b.xor(p, q, name=f"pc{idx}_x")
                s = b.xor(pxq, r, name=f"pc{idx}_s")
                m1 = b.and_(p, q, name=f"pc{idx}_m1")
                m2 = b.and_(pxq, r, name=f"pc{idx}_m2")
                carry = b.or_(m1, m2, name=f"pc{idx}_c")
            else:
                p, q = columns[col][:2]
                del columns[col][:2]
                s = b.xor(p, q, name=f"pc{idx}_s")
                carry = b.and_(p, q, name=f"pc{idx}_c")
            idx += 1
            columns[col].append(s)
            columns[col + 1].append(carry)
        col += 1
    for col_bits in columns:
        if col_bits:
            b.output(col_bits[0])
    return b.build()


def gray_to_binary(width: int, name: Optional[str] = None) -> Circuit:
    """Gray-code to binary converter: ``b_i = g_i XOR b_{i+1}``.

    A pure XOR chain — every fault is random-pattern easy, making it the
    control group for the RPR experiments.
    """
    if width < 2:
        raise ValueError("need at least two bits")
    b = CircuitBuilder(name or f"gray{width}")
    grays = b.inputs(*[f"g{i}" for i in range(width)])
    prev = grays[width - 1]
    b.output(b.buf(prev, name=f"b{width - 1}"))
    for i in reversed(range(width - 1)):
        prev = b.xor(grays[i], prev, name=f"b{i}")
        b.output(prev)
    return b.build()
