"""Topological analyses: fanout-free regions, reconvergence, tree checks.

The dynamic program of the paper is exact on *fanout-free* circuits — those
in which every node drives at most one gate pin, so each primary output cone
is a tree.  General circuits are handled by decomposing them into
**fanout-free regions** (FFRs): maximal subgraphs whose internal nodes have
fanout 1, rooted at *stems* (nodes with fanout > 1) or primary outputs.
These analyses provide that decomposition plus the reconvergence statistics
reported in the evaluation tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .netlist import Circuit

__all__ = [
    "is_fanout_free",
    "has_reconvergent_fanout",
    "reconvergent_stems",
    "FanoutFreeRegion",
    "fanout_free_regions",
]


def is_fanout_free(circuit: Circuit) -> bool:
    """True when no node drives more than one pin (every PO cone is a tree).

    A node that is a primary output *and* drives one gate pin counts as
    fanout-free here; a node driving two pins, or driving a pin while also
    being observed twice, does not arise in this representation.
    """
    return all(circuit.fanout_count(name) <= 1 for name in circuit.node_names)


def has_reconvergent_fanout(circuit: Circuit) -> bool:
    """True when some stem's branches reconverge at a downstream node."""
    return bool(reconvergent_stems(circuit))


def reconvergent_stems(circuit: Circuit) -> List[str]:
    """Return stems whose fanout branches reconverge.

    A stem ``s`` is reconvergent when two *distinct* immediate fanout
    branches reach a common node downstream.  Detection walks the fanout
    cone of each branch and intersects the reach sets — quadratic in the
    worst case but fast on benchmark-scale circuits.
    """
    result: List[str] = []
    for name in circuit.topological_order():
        sinks = circuit.fanouts(name)
        if len(sinks) <= 1:
            continue
        reaches: List[Set[str]] = []
        reconverges = False
        seen_union: Set[str] = set()
        for sink, _pin in sinks:
            reach = circuit.fanout_cone(sink)
            if reach & seen_union:
                reconverges = True
                break
            seen_union |= reach
            reaches.append(reach)
        if reconverges:
            result.append(name)
    return result


@dataclass
class FanoutFreeRegion:
    """One maximal fanout-free region of a circuit.

    Attributes
    ----------
    root:
        The stem or primary output at the head of the region.
    members:
        All node names inside the region (including ``root``, excluding the
        leaf boundary).
    leaves:
        Boundary signals feeding the region from outside: primary inputs,
        or stems belonging to other regions.
    """

    root: str
    members: Set[str] = field(default_factory=set)
    leaves: Set[str] = field(default_factory=set)

    def size(self) -> int:
        """Number of gates inside the region."""
        return len(self.members)


def fanout_free_regions(circuit: Circuit) -> List[FanoutFreeRegion]:
    """Decompose the circuit into maximal fanout-free regions.

    Region roots are primary outputs and fanout stems.  Walking fan-in from
    each root, the region absorbs every gate whose fanout count is exactly 1
    and which is not itself a root; primary inputs and other roots become
    region leaves.  Every gate belongs to exactly one region.
    """
    out_set = set(circuit.outputs)
    roots: List[str] = []
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            continue
        if name in out_set or circuit.fanout_count(name) != 1:
            roots.append(name)
    root_set = set(roots)

    regions: List[FanoutFreeRegion] = []
    for root in roots:
        region = FanoutFreeRegion(root=root)
        stack = [root]
        while stack:
            cur = stack.pop()
            if cur in region.members:
                continue
            region.members.add(cur)
            for fi in circuit.node(cur).fanins:
                fi_node = circuit.node(fi)
                if fi_node.is_input or fi in root_set:
                    region.leaves.add(fi)
                else:
                    stack.append(fi)
        regions.append(region)
    return regions
