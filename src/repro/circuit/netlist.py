"""Gate-level netlist: a named DAG of gates with primary inputs and outputs.

The :class:`Circuit` is the central data structure of the library.  It is a
mutable directed acyclic graph whose nodes are primary inputs or gates and
whose edges are the fan-in connections.  Any node may additionally be marked
as a primary output (an *observed* node).

Design notes
------------
* Nodes are addressed by string name; insertion order is preserved, which
  keeps file round-trips and test expectations deterministic.
* Derived structures (fan-out lists, topological order, levels) are computed
  lazily and invalidated on mutation, so analysis code can call them freely.
* Multi-input symmetric gates are allowed; :mod:`repro.circuit.transforms`
  factorizes them to two-input form when an algorithm requires it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import CircuitError
from .gates import GateType, supported_fanin

__all__ = ["Node", "Circuit", "CircuitError"]


@dataclass(frozen=True)
class Node:
    """One vertex of the netlist DAG.

    A node with ``gate_type is None`` is a primary input; otherwise it is a
    gate whose inputs are the nodes named in ``fanins`` (pin order is
    significant for fault bookkeeping even on symmetric gates).
    """

    name: str
    gate_type: Optional[GateType]
    fanins: Tuple[str, ...] = field(default=())

    @property
    def is_input(self) -> bool:
        """True when this node is a primary input."""
        return self.gate_type is None

    @property
    def is_gate(self) -> bool:
        """True when this node is a logic gate (including tie cells)."""
        return self.gate_type is not None


class Circuit:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable circuit identifier (used in reports and file I/O).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._outputs: List[str] = []
        self._dirty = True
        self._topo: List[str] = []
        self._levels: Dict[str, int] = {}
        self._fanouts: Dict[str, List[Tuple[str, int]]] = {}
        self._revision = 0
        self._hash_revision = -1
        self._hash = ""

    @property
    def revision(self) -> int:
        """Structural revision counter, bumped by every mutating call.

        Long-lived consumers (simulators, the compiled-kernel cache)
        record the revision they were built against and refuse to serve
        results for a circuit that has since been rewritten — silently
        stale answers become a :class:`~repro.errors.SimulationError`.
        """
        return self._revision

    def _mutated(self) -> None:
        self._dirty = True
        self._revision += 1

    def structural_hash(self) -> str:
        """Stable content hash of the netlist structure.

        Covers node insertion order, gate types, fan-in wiring, and the
        primary-output list — everything that determines simulation and
        testability semantics — but not the circuit ``name``.  The digest
        is cached per :attr:`revision`, is identical across processes
        (no dependence on ``PYTHONHASHSEED``), and keys the compiled
        simulation-kernel registry (:mod:`repro.sim.compile`): two
        structurally identical circuits share compiled kernels.
        """
        if self._hash_revision == self._revision:
            return self._hash
        h = hashlib.sha256()
        for node in self._nodes.values():
            gt = node.gate_type.value if node.gate_type is not None else ""
            h.update(node.name.encode())
            h.update(b"\x00")
            h.update(gt.encode())
            for fi in node.fanins:
                h.update(b"\x01")
                h.update(fi.encode())
            h.update(b"\x02")
        for out in self._outputs:
            h.update(b"\x03")
            h.update(out.encode())
        self._hash = h.hexdigest()
        self._hash_revision = self._revision
        return self._hash

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Create a primary input node and return its name."""
        self._check_fresh_name(name)
        self._nodes[name] = Node(name, None)
        self._mutated()
        return name

    def add_gate(self, name: str, gate_type: GateType, fanins: Sequence[str]) -> str:
        """Create a gate node driven by existing nodes and return its name."""
        self._check_fresh_name(name)
        lo, hi = supported_fanin(gate_type)
        if len(fanins) < lo or (hi is not None and len(fanins) > hi):
            raise CircuitError(
                f"{gate_type} gate {name!r} has {len(fanins)} inputs; "
                f"expected between {lo} and {hi if hi is not None else 'inf'}"
            )
        for fi in fanins:
            if fi not in self._nodes:
                raise CircuitError(f"gate {name!r} references unknown node {fi!r}")
        self._nodes[name] = Node(name, gate_type, tuple(fanins))
        self._mutated()
        return name

    def mark_output(self, name: str) -> None:
        """Mark an existing node as a primary output (idempotent)."""
        if name not in self._nodes:
            raise CircuitError(f"cannot mark unknown node {name!r} as output")
        if name not in self._outputs:
            self._outputs.append(name)
            self._mutated()

    def unmark_output(self, name: str) -> None:
        """Remove a node from the primary output list."""
        try:
            self._outputs.remove(name)
        except ValueError:
            raise CircuitError(f"node {name!r} is not an output") from None
        self._mutated()

    def replace_fanin(self, gate_name: str, pin: int, new_driver: str) -> None:
        """Reconnect pin ``pin`` of ``gate_name`` to ``new_driver``.

        This is the primitive used by test-point insertion: the new driver
        must already exist and the rewiring must keep the graph acyclic
        (checked lazily on the next analysis call).
        """
        node = self._nodes.get(gate_name)
        if node is None or node.is_input:
            raise CircuitError(f"{gate_name!r} is not a gate")
        if not 0 <= pin < len(node.fanins):
            raise CircuitError(f"gate {gate_name!r} has no pin {pin}")
        if new_driver not in self._nodes:
            raise CircuitError(f"unknown driver node {new_driver!r}")
        fanins = list(node.fanins)
        fanins[pin] = new_driver
        self._nodes[gate_name] = Node(gate_name, node.gate_type, tuple(fanins))
        self._mutated()

    def _check_fresh_name(self, name: str) -> None:
        if not name:
            raise CircuitError("node name must be a non-empty string")
        if name in self._nodes:
            raise CircuitError(f"duplicate node name {name!r}")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Return the node named ``name`` (KeyError if absent)."""
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in insertion order."""
        return iter(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        """All node names in insertion order."""
        return list(self._nodes)

    @property
    def inputs(self) -> List[str]:
        """Names of primary inputs, in insertion order."""
        return [n.name for n in self._nodes.values() if n.is_input]

    @property
    def outputs(self) -> List[str]:
        """Names of primary outputs, in marking order."""
        return list(self._outputs)

    @property
    def gates(self) -> List[Node]:
        """All gate nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_gate]

    def gate_count(self) -> int:
        """Number of gate nodes (tie cells included, inputs excluded)."""
        return sum(1 for n in self._nodes.values() if n.is_gate)

    # ------------------------------------------------------------------
    # Derived structure (lazily rebuilt)
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        fanouts: Dict[str, List[Tuple[str, int]]] = {name: [] for name in self._nodes}
        indegree: Dict[str, int] = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            indegree[node.name] = len(node.fanins)
            for pin, fi in enumerate(node.fanins):
                fanouts[fi].append((node.name, pin))
        # Kahn's algorithm, seeded in insertion order for determinism.
        ready = [name for name, deg in indegree.items() if deg == 0]
        topo: List[str] = []
        levels: Dict[str, int] = {}
        head = 0
        while head < len(ready):
            name = ready[head]
            head += 1
            topo.append(name)
            node = self._nodes[name]
            levels[name] = (
                0
                if not node.fanins
                else 1 + max(levels[fi] for fi in node.fanins)
            )
            for sink, _pin in fanouts[name]:
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    ready.append(sink)
        if len(topo) != len(self._nodes):
            cyclic = sorted(set(self._nodes) - set(topo))
            raise CircuitError(f"netlist contains a combinational cycle near {cyclic[:5]}")
        self._topo = topo
        self._levels = levels
        self._fanouts = fanouts
        self._dirty = False

    def topological_order(self) -> List[str]:
        """Node names sorted so every driver precedes its sinks."""
        if self._dirty:
            self._rebuild()
        return list(self._topo)

    def levels(self) -> Dict[str, int]:
        """Map node name → logic level (inputs are level 0)."""
        if self._dirty:
            self._rebuild()
        return dict(self._levels)

    def depth(self) -> int:
        """Maximum logic level in the circuit (0 for input-only netlists)."""
        if self._dirty:
            self._rebuild()
        return max(self._levels.values(), default=0)

    def fanouts(self, name: str) -> List[Tuple[str, int]]:
        """Return ``(sink_gate, pin_index)`` pairs fed by node ``name``."""
        if self._dirty:
            self._rebuild()
        return list(self._fanouts[name])

    def fanout_count(self, name: str) -> int:
        """Number of gate pins driven by node ``name``."""
        if self._dirty:
            self._rebuild()
        return len(self._fanouts[name])

    def is_stem(self, name: str) -> bool:
        """True when node ``name`` drives more than one pin (a fanout stem)."""
        return self.fanout_count(name) > 1

    # ------------------------------------------------------------------
    # Cones
    # ------------------------------------------------------------------
    def fanin_cone(self, name: str) -> Set[str]:
        """All nodes (inclusive) in the transitive fan-in of ``name``."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._nodes[cur].fanins)
        return seen

    def fanin_cone_union(self, names: Iterable[str]) -> Set[str]:
        """The union of the fan-in cones of ``names`` in one traversal.

        Equivalent to ``set().union(*(self.fanin_cone(n) for n in names))``
        but visits each node at most once, so proposing candidates against
        hundreds of overlapping failing-fault cones stays linear in circuit
        size instead of quadratic.
        """
        seen: Set[str] = set()
        stack = [name for name in names]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._nodes[cur].fanins)
        return seen

    def fanout_cone(self, name: str) -> Set[str]:
        """All nodes (inclusive) in the transitive fan-out of ``name``."""
        if self._dirty:
            self._rebuild()
        seen: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(sink for sink, _pin in self._fanouts[cur])
        return seen

    # ------------------------------------------------------------------
    # Validation and utility
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`CircuitError` on dangling refs, cycles, or no outputs."""
        if self._dirty:
            self._rebuild()  # raises on cycles
        if not self._outputs:
            raise CircuitError(f"circuit {self.name!r} has no primary outputs")
        for out in self._outputs:
            if out not in self._nodes:
                raise CircuitError(f"output {out!r} does not name a node")

    def floating_nodes(self) -> List[str]:
        """Nodes that drive nothing and are not outputs (dead logic)."""
        if self._dirty:
            self._rebuild()
        out_set = set(self._outputs)
        return [
            name
            for name in self._nodes
            if not self._fanouts[name] and name not in out_set
        ]

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-copy the netlist (nodes are immutable so sharing is safe)."""
        dup = Circuit(name or self.name)
        dup._nodes = dict(self._nodes)
        dup._outputs = list(self._outputs)
        dup._dirty = True
        return dup

    def fresh_name(self, prefix: str) -> str:
        """Return a node name starting with ``prefix`` not yet in use."""
        if prefix not in self._nodes:
            return prefix
        i = 1
        while f"{prefix}_{i}" in self._nodes:
            i += 1
        return f"{prefix}_{i}"

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by reports and Table 1 of the evaluation."""
        if self._dirty:
            self._rebuild()
        n_stems = sum(1 for n in self._nodes if len(self._fanouts[n]) > 1)
        return {
            "inputs": len(self.inputs),
            "outputs": len(self._outputs),
            "gates": self.gate_count(),
            "nodes": len(self._nodes),
            "depth": self.depth(),
            "stems": n_stems,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"gates={self.gate_count()}, outputs={len(self._outputs)})"
        )
