"""Structural Verilog (gate-primitive subset) reader and writer.

Many gate-level netlists circulate as structural Verilog rather than
``.bench``.  This module round-trips the primitive subset every synthesis
tool can emit::

    module c17 (G1, G2, G3, G6, G7, G22, G23);
      input G1, G2, G3, G6, G7;
      output G22, G23;
      wire G10, G11, G16, G19;
      nand g0 (G10, G1, G3);
      nand g1 (G11, G3, G6);
      ...
    endmodule

Supported primitives: ``and or nand nor xor xnor not buf`` (output port
first, as in the Verilog standard).  One module per file; no behavioral
constructs, parameters, or vectors — this is a netlist interchange path,
not a Verilog front end.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParseError
from .gates import GateType
from .netlist import Circuit

__all__ = [
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
]

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_MODULE_RE = re.compile(
    r"module\s+([A-Za-z_][\w$]*)\s*\(([^)]*)\)\s*;", re.DOTALL
)
_DECL_RE = re.compile(r"\b(input|output|wire)\b([^;]*);", re.DOTALL)
_INSTANCE_RE = re.compile(
    r"\b(and|or|nand|nor|xor|xnor|not|buf)\b\s*"
    r"([A-Za-z_][\w$]*)?\s*\(([^)]*)\)\s*;",
    re.DOTALL,
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    # Keep the newlines of block comments so that character offsets still
    # map to the original 1-based line numbers for diagnostics.
    return re.sub(
        r"/\*.*?\*/",
        lambda m: "\n" * m.group(0).count("\n"),
        text,
        flags=re.DOTALL,
    )


def _split_names(blob: str) -> List[str]:
    return [n.strip() for n in blob.split(",") if n.strip()]


def parse_verilog(
    text: str, name: str = "", source: Optional[str] = None
) -> Circuit:
    """Parse one structural Verilog module into a :class:`Circuit`.

    ``source`` names the origin of ``text`` (usually the file) so that
    :class:`~repro.errors.ParseError` diagnostics carry ``file:line``.
    """
    text = _strip_comments(text)

    def line_of(pos: int) -> int:
        return text.count("\n", 0, pos) + 1

    module = _MODULE_RE.search(text)
    if module is None:
        raise ParseError("no module declaration found", path=source)
    module_name = name or module.group(1)
    body_start = module.end()
    body = text[body_start:]
    end = body.find("endmodule")
    if end < 0:
        raise ParseError(
            "missing endmodule",
            path=source,
            line=line_of(module.start()),
        )
    body = body[:end]

    inputs: List[Tuple[str, int]] = []
    outputs: List[Tuple[str, int]] = []
    for m in _DECL_RE.finditer(body):
        kind, blob = m.group(1), m.group(2)
        lineno = line_of(body_start + m.start())
        names = _split_names(blob)
        if kind == "input":
            inputs.extend((n, lineno) for n in names)
        elif kind == "output":
            outputs.extend((n, lineno) for n in names)
        # wires need no declaration in our netlist model

    instances: List[Tuple[GateType, str, List[str], int]] = []
    for m in _INSTANCE_RE.finditer(body):
        prim, _label, ports_blob = m.group(1), m.group(2), m.group(3)
        lineno = line_of(body_start + m.start())
        ports = _split_names(ports_blob)
        if len(ports) < 2:
            raise ParseError(
                f"primitive {prim} needs an output and inputs",
                path=source,
                line=lineno,
            )
        instances.append((_PRIMITIVES[prim], ports[0], ports[1:], lineno))

    # Driver audit before touching the circuit: each net driven at most
    # once, every referenced net driven somewhere (literals aside).
    driven: Dict[str, int] = {}
    for pi, lineno in inputs:
        if pi in driven:
            raise ParseError(
                f"duplicate input declaration of {pi!r}",
                path=source,
                line=lineno,
            )
        driven[pi] = lineno
    for _gate_type, out, _fanins, lineno in instances:
        prev = driven.get(out)
        if prev is not None:
            raise ParseError(
                f"net {out!r} has multiple drivers "
                f"(first driven on line {prev})",
                path=source,
                line=lineno,
            )
        driven[out] = lineno
    for _gate_type, out, fanins, lineno in instances:
        for fi in fanins:
            if fi in ("1'b0", "1'b1") or fi in driven:
                continue
            raise ParseError(
                f"instance driving {out!r} references undriven net {fi!r}",
                path=source,
                line=lineno,
            )
    for po, lineno in outputs:
        if po not in driven:
            raise ParseError(
                f"output {po!r} is not driven by any instance",
                path=source,
                line=lineno,
            )

    circuit = Circuit(module_name)
    for pi, _lineno in inputs:
        circuit.add_input(pi)

    # Constant literals: `buf (y, 1'b0)` becomes a tie cell directly;
    # a literal feeding any other gate goes through a shared tie node.
    const_nodes: Dict[str, str] = {}

    def resolve_literal(net: str) -> str:
        if net not in ("1'b0", "1'b1"):
            return net
        if net not in const_nodes:
            bit = net[-1]
            tie = circuit.fresh_name(f"__const{bit}")
            circuit.add_gate(
                tie, GateType.CONST0 if bit == "0" else GateType.CONST1, []
            )
            const_nodes[net] = tie
        return const_nodes[net]

    translated: List[Tuple[GateType, str, List[str], int]] = []
    for gate_type, out, fanins, lineno in instances:
        if gate_type is GateType.BUF and fanins in (["1'b0"], ["1'b1"]):
            tie = GateType.CONST0 if fanins == ["1'b0"] else GateType.CONST1
            circuit.add_gate(out, tie, [])
            continue
        translated.append(
            (gate_type, out, [resolve_literal(fi) for fi in fanins], lineno)
        )
    # Insert in dependency order until fixpoint; with undriven references
    # ruled out above, a stalled fixpoint can only mean a cycle.
    remaining = translated
    while remaining:
        progressed = False
        deferred: List[Tuple[GateType, str, List[str], int]] = []
        for gate_type, out, fanins, lineno in remaining:
            if all(fi in circuit for fi in fanins):
                circuit.add_gate(out, gate_type, fanins)
                progressed = True
            else:
                deferred.append((gate_type, out, fanins, lineno))
        if not progressed:
            cyclic = sorted(o for _g, o, _f, _ln in deferred)
            raise ParseError(
                f"combinational cycle through nets {cyclic[:5]}",
                path=source,
                line=deferred[0][3],
            )
        remaining = deferred

    for po, _lineno in outputs:
        circuit.mark_output(po)
    circuit.validate()
    return circuit


def parse_verilog_file(path: Union[str, Path]) -> Circuit:
    """Read and parse a structural Verilog file."""
    path = Path(path)
    return parse_verilog(path.read_text(), source=str(path))


def write_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as a structural Verilog module.

    Tie cells (which have no Verilog gate primitive) are emitted as
    ``buf`` instances driven by literal constants ``1'b0`` / ``1'b1``.
    """
    ports = circuit.inputs + circuit.outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    out_set = set(circuit.outputs)
    wires = [
        g.name
        for g in circuit.gates
        if g.name not in out_set
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for idx, name in enumerate(circuit.topological_order()):
        node = circuit.node(name)
        if node.is_input:
            continue
        if node.gate_type is GateType.CONST0:
            lines.append(f"  buf g{idx} ({name}, 1'b0);")
        elif node.gate_type is GateType.CONST1:
            lines.append(f"  buf g{idx} ({name}, 1'b1);")
        else:
            prim = node.gate_type.value.lower()
            ports_text = ", ".join((name,) + node.fanins)
            lines.append(f"  {prim} g{idx} ({ports_text});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write the circuit to ``path`` as structural Verilog."""
    Path(path).write_text(write_verilog(circuit))
