"""Structural Verilog (gate-primitive subset) reader and writer.

Many gate-level netlists circulate as structural Verilog rather than
``.bench``.  This module round-trips the primitive subset every synthesis
tool can emit::

    module c17 (G1, G2, G3, G6, G7, G22, G23);
      input G1, G2, G3, G6, G7;
      output G22, G23;
      wire G10, G11, G16, G19;
      nand g0 (G10, G1, G3);
      nand g1 (G11, G3, G6);
      ...
    endmodule

Supported primitives: ``and or nand nor xor xnor not buf`` (output port
first, as in the Verilog standard).  One module per file; no behavioral
constructs, parameters, or vectors — this is a netlist interchange path,
not a Verilog front end.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = [
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
]

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_MODULE_RE = re.compile(
    r"module\s+([A-Za-z_][\w$]*)\s*\(([^)]*)\)\s*;", re.DOTALL
)
_DECL_RE = re.compile(r"\b(input|output|wire)\b([^;]*);", re.DOTALL)
_INSTANCE_RE = re.compile(
    r"\b(and|or|nand|nor|xor|xnor|not|buf)\b\s*"
    r"([A-Za-z_][\w$]*)?\s*\(([^)]*)\)\s*;",
    re.DOTALL,
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def _split_names(blob: str) -> List[str]:
    return [n.strip() for n in blob.split(",") if n.strip()]


def parse_verilog(text: str, name: str = "") -> Circuit:
    """Parse one structural Verilog module into a :class:`Circuit`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise CircuitError("no module declaration found")
    module_name = name or module.group(1)
    body = text[module.end() : ]
    end = body.find("endmodule")
    if end < 0:
        raise CircuitError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    for kind, blob in _DECL_RE.findall(body):
        names = _split_names(blob)
        if kind == "input":
            inputs.extend(names)
        elif kind == "output":
            outputs.extend(names)
        # wires need no declaration in our netlist model

    instances: List[Tuple[GateType, str, List[str]]] = []
    for prim, _label, ports_blob in _INSTANCE_RE.findall(body):
        ports = _split_names(ports_blob)
        if len(ports) < 2:
            raise CircuitError(f"primitive {prim} needs an output and inputs")
        instances.append((_PRIMITIVES[prim], ports[0], ports[1:]))

    circuit = Circuit(module_name)
    for pi in inputs:
        circuit.add_input(pi)

    # Constant literals: `buf (y, 1'b0)` becomes a tie cell directly;
    # a literal feeding any other gate goes through a shared tie node.
    const_nodes: Dict[str, str] = {}

    def resolve_literal(net: str) -> str:
        if net not in ("1'b0", "1'b1"):
            return net
        if net not in const_nodes:
            bit = net[-1]
            tie = circuit.fresh_name(f"__const{bit}")
            circuit.add_gate(
                tie, GateType.CONST0 if bit == "0" else GateType.CONST1, []
            )
            const_nodes[net] = tie
        return const_nodes[net]

    translated: List[Tuple[GateType, str, List[str]]] = []
    for gate_type, out, fanins in instances:
        if gate_type is GateType.BUF and fanins in (["1'b0"], ["1'b1"]):
            tie = GateType.CONST0 if fanins == ["1'b0"] else GateType.CONST1
            circuit.add_gate(out, tie, [])
            continue
        translated.append(
            (gate_type, out, [resolve_literal(fi) for fi in fanins])
        )
    instances = translated
    remaining = list(instances)
    while remaining:
        progressed = False
        deferred: List[Tuple[GateType, str, List[str]]] = []
        for gate_type, out, fanins in remaining:
            if all(fi in circuit for fi in fanins):
                circuit.add_gate(out, gate_type, fanins)
                progressed = True
            else:
                deferred.append((gate_type, out, fanins))
        if not progressed:
            missing = sorted(
                {
                    fi
                    for _g, _o, fs in deferred
                    for fi in fs
                    if fi not in circuit
                }
            )
            raise CircuitError(
                f"undriven nets or combinational cycle: {missing[:5]}"
            )
        remaining = deferred

    for po in outputs:
        circuit.mark_output(po)
    circuit.validate()
    return circuit


def parse_verilog_file(path: Union[str, Path]) -> Circuit:
    """Read and parse a structural Verilog file."""
    path = Path(path)
    return parse_verilog(path.read_text())


def write_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as a structural Verilog module.

    Tie cells (which have no Verilog gate primitive) are emitted as
    ``buf`` instances driven by literal constants ``1'b0`` / ``1'b1``.
    """
    ports = circuit.inputs + circuit.outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    out_set = set(circuit.outputs)
    wires = [
        g.name
        for g in circuit.gates
        if g.name not in out_set
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for idx, name in enumerate(circuit.topological_order()):
        node = circuit.node(name)
        if node.is_input:
            continue
        if node.gate_type is GateType.CONST0:
            lines.append(f"  buf g{idx} ({name}, 1'b0);")
        elif node.gate_type is GateType.CONST1:
            lines.append(f"  buf g{idx} ({name}, 1'b1);")
        else:
            prim = node.gate_type.value.lower()
            ports_text = ", ".join((name,) + node.fanins)
            lines.append(f"  {prim} g{idx} ({ports_text});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write the circuit to ``path`` as structural Verilog."""
    Path(path).write_text(write_verilog(circuit))
