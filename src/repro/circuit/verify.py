"""Functional equivalence checking between two netlists.

Used by the transform tests and available to users validating their own
rewrites (factorization, buffer cleanup, externally edited ``.bench``
files).  Two strategies:

* **exhaustive** for small input counts — a proof;
* **random vectors** beyond that — a strong probabilistic check (any
  detected mismatch comes with a counterexample pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.logic_sim import LogicSimulator
from ..sim.patterns import ExhaustiveSource, UniformRandomSource
from .netlist import Circuit

__all__ = ["EquivalenceResult", "check_equivalence"]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check.

    Attributes
    ----------
    equivalent:
        Verdict under the executed strategy.
    exhaustive:
        True when every input combination was simulated (a proof).
    n_patterns:
        Patterns compared.
    counterexample:
        For mismatches: an input assignment and the first differing output.
    """

    equivalent: bool
    exhaustive: bool
    n_patterns: int
    counterexample: Optional[Tuple[Dict[str, int], str]] = None


def check_equivalence(
    left: Circuit,
    right: Circuit,
    exhaustive_limit: int = 14,
    n_random: int = 4096,
    seed: int = 0,
) -> EquivalenceResult:
    """Compare two circuits with identical input/output interfaces.

    Raises ``ValueError`` when the interfaces differ (that is a design
    mismatch, not a functional one).
    """
    if left.inputs != right.inputs:
        raise ValueError("input interfaces differ")
    if left.outputs != right.outputs:
        raise ValueError("output interfaces differ")

    n_inputs = len(left.inputs)
    exhaustive = n_inputs <= exhaustive_limit
    if exhaustive:
        n_patterns = 1 << n_inputs
        stimulus = ExhaustiveSource().generate(left.inputs, n_patterns)
    else:
        n_patterns = n_random
        stimulus = UniformRandomSource(seed=seed).generate(
            left.inputs, n_patterns
        )

    values_left = LogicSimulator(left).run(stimulus, n_patterns)
    values_right = LogicSimulator(right).run(stimulus, n_patterns)
    for po in left.outputs:
        diff = values_left[po] ^ values_right[po]
        if diff:
            p = (diff & -diff).bit_length() - 1
            assignment = {
                pi: (stimulus[pi] >> p) & 1 for pi in left.inputs
            }
            return EquivalenceResult(
                equivalent=False,
                exhaustive=exhaustive,
                n_patterns=n_patterns,
                counterexample=(assignment, po),
            )
    return EquivalenceResult(
        equivalent=True, exhaustive=exhaustive, n_patterns=n_patterns
    )
