"""Named benchmark suite used throughout the evaluation.

:func:`benchmark_suite` returns the fixed, seeded circuit set referenced by
the experiment tables (T1–T4).  Each entry is generated on demand so the
repository ships no binary netlists; real ISCAS ``.bench`` files, when
available, can be loaded with :func:`repro.circuit.bench_io.parse_bench_file`
and dropped into the same pipelines.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from . import generators as g
from .netlist import Circuit

__all__ = ["BENCHMARKS", "benchmark", "benchmark_suite", "benchmark_names"]

#: Registry: name → zero-argument constructor.
BENCHMARKS: Dict[str, Callable[[], Circuit]] = {
    "c17": g.c17,
    "parity16": lambda: g.parity_tree(16),
    "rca8": lambda: g.ripple_carry_adder(8),
    "mult4": lambda: g.array_multiplier(4),
    "eqcmp12": lambda: g.equality_comparator(12),
    "magcmp8": lambda: g.magnitude_comparator(8),
    "mux16": lambda: g.mux_tree(4),
    "dec4": lambda: g.decoder(4),
    "alu4": lambda: g.alu_slice(4),
    "wand16": lambda: g.wide_and_cone(16),
    "wor16": lambda: g.wide_or_cone(16),
    "corridor8": lambda: g.rpr_corridor(8),
    "corridor12": lambda: g.rpr_corridor(12),
    "wand20": lambda: g.wide_and_cone(20),
    "rprmix": lambda: g.rpr_mixed(cone_width=8, corridor_length=6, n_blocks=2),
    "rprmix_big": lambda: g.rpr_mixed(cone_width=12, corridor_length=8, n_blocks=3),
    "rdag200": lambda: g.random_dag(24, 200, seed=7),
    "rdag500": lambda: g.random_dag(32, 500, seed=11),
    "rtree60": lambda: g.random_tree(60, seed=3),
    "bshift8": lambda: g.barrel_shifter(3),
    "prio8": lambda: g.priority_encoder(8),
    "popcnt8": lambda: g.popcount_tree(8),
    "gray8": lambda: g.gray_to_binary(8),
}


def benchmark_names() -> List[str]:
    """Names of all registered benchmark circuits, in table order."""
    return list(BENCHMARKS)


def benchmark(name: str) -> Circuit:
    """Construct the benchmark circuit registered under ``name``."""
    try:
        ctor = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None
    return ctor()


def benchmark_suite(names: List[str] = None) -> Dict[str, Circuit]:
    """Construct several benchmarks (default: the full registry)."""
    if names is None:
        names = benchmark_names()
    return {n: benchmark(n) for n in names}
