"""Cooperative SIGTERM/SIGINT handling for long campaigns.

A sweep or experiment campaign can run for hours; the operator (or the
CI runner, or a preempting scheduler) stopping it must not cost the work
already done.  The checkpoint/journal writers already make every
completed item durable, so the only thing a signal needs to do is stop
the loop *at the next item boundary* — no item is ever torn, and a rerun
with the same results file resumes exactly where the stop landed.

:class:`GracefulInterrupt` implements that: it swaps in handlers that
set a flag (first signal) and restore default behavior (second signal —
the escape hatch when the current item itself hangs), and the campaign
loops call :meth:`check` between items, which raises
:class:`~repro.errors.SweepInterrupted`.  The CLI maps that error to its
own exit code (``5``) so wrappers can tell "killed but resumable" apart
from failure.

Signal handlers are process-global and only installable from the main
thread; off the main thread (a fabric worker, a test harness thread)
the context manager degrades to a no-op flag that only
:meth:`request` can set — the campaign still works, it just cannot be
signalled.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Optional

from ..errors import SweepInterrupted

__all__ = ["GracefulInterrupt"]

#: The signals a campaign treats as "stop soon, resumably".
_HANDLED = (signal.SIGTERM, signal.SIGINT)


class GracefulInterrupt:
    """Context manager turning SIGTERM/SIGINT into a checked flag.

    Usage::

        with GracefulInterrupt() as stop:
            for item in items:
                run(item)            # item result flushed durably
                stop.check(done, remaining)   # raises SweepInterrupted

    The first signal sets the flag; the second restores the previous
    handlers and re-raises immediately (so a stuck item can still be
    killed the ordinary way).  On exit the previous handlers are always
    restored.
    """

    def __init__(self, install: bool = True) -> None:
        self._flag = threading.Event()
        self._signal_name: Optional[str] = None
        self._previous: dict = {}
        self._installed = False
        self._want_install = install

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "GracefulInterrupt":
        if (
            self._want_install
            and threading.current_thread() is threading.main_thread()
        ):
            try:
                for sig in _HANDLED:
                    self._previous[sig] = signal.signal(sig, self._handle)
                self._installed = True
            except (ValueError, OSError):
                # Another harness owns signal dispatch here; degrade to
                # the request()-only flag.
                self._restore()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._restore()
        return False

    def _restore(self) -> None:
        for sig, handler in self._previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        self._installed = False

    # -- signal side ----------------------------------------------------
    def _handle(self, signum: int, _frame: Optional[FrameType]) -> None:
        if self._flag.is_set():
            # Second signal: the operator means it.  Restore the old
            # handlers and re-deliver so default disposition applies.
            self._restore()
            signal.raise_signal(signum)
            return
        self._signal_name = signal.Signals(signum).name
        self._flag.set()

    # -- campaign side --------------------------------------------------
    @property
    def requested(self) -> bool:
        """True once a stop has been requested (signal or :meth:`request`)."""
        return self._flag.is_set()

    @property
    def signal_name(self) -> str:
        return self._signal_name or "SIGTERM"

    def request(self, signal_name: str = "SIGTERM") -> None:
        """Programmatic stop request (tests, embedding harnesses)."""
        self._signal_name = signal_name
        self._flag.set()

    def check(self, completed: int = 0, remaining: int = 0) -> None:
        """Raise :class:`SweepInterrupted` if a stop was requested.

        Call at item boundaries only — after the in-flight item's record
        has been flushed — so the raise is always resumable.
        """
        if self._flag.is_set():
            raise SweepInterrupted(self.signal_name, completed, remaining)
