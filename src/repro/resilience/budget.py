"""Cooperative solve budgets: wall clock and state-space limits.

General TPI is NP-complete (the point of the paper's tree restriction), so
every solve on a non-tree instance is inherently budget-bound.  A
:class:`Budget` makes that bound explicit and *cooperative*: the solvers,
ATPG, and fault simulator call :meth:`Budget.tick` / :meth:`Budget.charge`
at their loop boundaries, and the budget raises
:class:`~repro.errors.BudgetExceededError` the moment any dimension runs
out.  Nothing is interrupted mid-datastructure — callers always unwind
through ordinary exception propagation, which is what lets the solver
cascade (:mod:`repro.core.cascade`) catch the error and degrade to a
cheaper method.

Dimensions (all optional; an unset limit is unbounded):

* ``wall_ms`` — wall-clock milliseconds, tracked by a :class:`Deadline`;
* ``max_dp_cells`` — DP table cells materialized (state-space size);
* ``max_backtracks`` — PODEM backtracks across the budgeted extent;
* ``max_patterns`` — pattern-fault simulations (``n_patterns`` is charged
  once per fault propagated).

A budget instance is single-use: its clock starts at construction.  The
solver cascade gives each fallback stage a fresh clock via
:meth:`Budget.renewed`, so a stage that times out does not starve the
cheaper stages behind it.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, Optional

from ..errors import BudgetExceededError

__all__ = ["Budget", "Deadline"]

_MS_TO_NS = 1_000_000


class Deadline:
    """A wall-clock expiry point (monotonic, nanosecond resolution)."""

    __slots__ = ("expires_ns", "started_ns")

    def __init__(self, expires_ns: Optional[int] = None) -> None:
        self.started_ns = perf_counter_ns()
        self.expires_ns = expires_ns

    @classmethod
    def after_ms(cls, ms: float) -> "Deadline":
        """A deadline ``ms`` milliseconds from now."""
        if ms < 0:
            raise ValueError("deadline must be non-negative")
        deadline = cls(None)
        deadline.expires_ns = deadline.started_ns + int(ms * _MS_TO_NS)
        return deadline

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    @property
    def bounded(self) -> bool:
        return self.expires_ns is not None

    def elapsed_ns(self) -> int:
        """Nanoseconds since the deadline was armed."""
        return perf_counter_ns() - self.started_ns

    def remaining_ns(self) -> Optional[int]:
        """Nanoseconds left (may be negative), or ``None`` when unbounded."""
        if self.expires_ns is None:
            return None
        return self.expires_ns - perf_counter_ns()

    def expired(self) -> bool:
        return (
            self.expires_ns is not None
            and perf_counter_ns() >= self.expires_ns
        )

    def check(self, where: str = "") -> None:
        """Raise :class:`BudgetExceededError` when the deadline has passed."""
        if self.expired():
            limit_ms = (self.expires_ns - self.started_ns) / _MS_TO_NS
            spent_ms = self.elapsed_ns() / _MS_TO_NS
            raise BudgetExceededError(
                "wall_clock", limit_ms, spent_ms, where=where
            )


class Budget:
    """A bundle of cooperative limits shared across one solve attempt.

    Parameters
    ----------
    wall_ms:
        Wall-clock limit in milliseconds (``None`` = unbounded).
    max_dp_cells:
        Limit on DP table cells materialized.
    max_backtracks:
        Limit on PODEM backtracks.
    max_patterns:
        Limit on pattern-fault simulations.
    """

    #: Countable resources (wall clock is handled by the deadline).
    RESOURCES = ("dp_cells", "backtracks", "patterns")

    def __init__(
        self,
        wall_ms: Optional[float] = None,
        max_dp_cells: Optional[int] = None,
        max_backtracks: Optional[int] = None,
        max_patterns: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("wall_ms", wall_ms),
            ("max_dp_cells", max_dp_cells),
            ("max_backtracks", max_backtracks),
            ("max_patterns", max_patterns),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.wall_ms = wall_ms
        self.deadline = (
            Deadline.after_ms(wall_ms)
            if wall_ms is not None
            else Deadline.unbounded()
        )
        self.limits: Dict[str, Optional[int]] = {
            "dp_cells": max_dp_cells,
            "backtracks": max_backtracks,
            "patterns": max_patterns,
        }
        self.spent: Dict[str, int] = {r: 0 for r in self.RESOURCES}

    # ------------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        """True when at least one dimension carries a limit."""
        return self.deadline.bounded or any(
            v is not None for v in self.limits.values()
        )

    def tick(self, where: str = "") -> None:
        """Check the wall clock (call at every loop boundary)."""
        self.deadline.check(where)

    def charge(self, resource: str, n: int = 1, where: str = "") -> None:
        """Consume ``n`` units of ``resource``; raise once over the limit.

        Also checks the wall clock, so hot loops only need one call.
        """
        spent = self.spent[resource] + n
        self.spent[resource] = spent
        limit = self.limits[resource]
        if limit is not None and spent > limit:
            raise BudgetExceededError(resource, limit, spent, where=where)
        self.deadline.check(where)

    def renewed(self) -> "Budget":
        """A fresh budget with the same limits and a restarted clock."""
        return Budget(
            wall_ms=self.wall_ms,
            max_dp_cells=self.limits["dp_cells"],
            max_backtracks=self.limits["backtracks"],
            max_patterns=self.limits["patterns"],
        )

    def describe(self) -> Dict[str, Optional[float]]:
        """JSON-able snapshot of limits and consumption (for run records)."""
        out: Dict[str, Optional[float]] = {"wall_ms": self.wall_ms}
        for resource in self.RESOURCES:
            out[f"max_{resource}"] = self.limits[resource]
            out[f"spent_{resource}"] = self.spent[resource]
        out["elapsed_ms"] = self.deadline.elapsed_ns() / _MS_TO_NS
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        limits = ", ".join(
            f"{k}={v}" for k, v in self.limits.items() if v is not None
        )
        wall = f"wall_ms={self.wall_ms}" if self.wall_ms is not None else ""
        inner = ", ".join(x for x in (wall, limits) if x)
        return f"Budget({inner or 'unbounded'})"
