"""Shared retry/backoff policy for every fan-out that re-dispatches work.

Two subsystems retry failed work units: the parallel fault-sim fan-out
(:mod:`repro.sim.parallel`, retrying crashed/corrupt/timed-out chunks)
and the sweep fabric (:mod:`repro.fabric`, re-dispatching expired leases
and failed jobs).  Both used to hand-roll the same capped exponential
backoff; :class:`RetryPolicy` is that logic extracted once, with one
addition the fabric needs — **deterministic seeded jitter**, so many
supervisors retrying against the same contended resource (a shared
filesystem, one overloaded host) de-synchronize without sacrificing
replayability: the delay for a given ``(seed, key, attempt)`` is a pure
function, so a chaos campaign that failed replays with the exact same
timing decisions.

The default policy (``base 0.05 s, doubling, cap 0.5 s, no jitter``) is
bit-for-bit the schedule the parallel fan-out always used; the existing
chaos tests pin it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with optional deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per work unit (first attempt + retries).  An
        ``attempt`` counter of ``max_attempts`` means the unit is out of
        chances (:meth:`should_retry` returns False) and the caller
        degrades — the parallel fan-out computes the chunk in-parent,
        the fabric quarantines the job.
    backoff_base_s / backoff_cap_s:
        Delay before retry ``k`` (1-based) is
        ``min(base * 2**(k-1), cap)`` seconds.
    jitter:
        Fraction of extra delay added on top, drawn deterministically
        from ``(seed, key, attempt)``: the final delay is
        ``delay * (1 + jitter * u)`` with ``u`` uniform in ``[0, 1)``.
        Zero (default) reproduces the historical fixed schedule.
    seed:
        Seeds the jitter stream; irrelevant when ``jitter == 0``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 0.5
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """True while ``attempt`` (count of tries already made) leaves
        at least one more try within :attr:`max_attempts`."""
        return attempt < self.max_attempts

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds.

        Pure and deterministic: the same ``(policy, attempt, key)``
        always yields the same delay, in any process.
        """
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        delay = min(
            self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s
        )
        if self.jitter:
            u = random.Random(
                f"retry:{self.seed}:{key}:{attempt}"
            ).random()
            delay *= 1.0 + self.jitter * u
        return delay

    def sleep(self, attempt: int, key: str = "") -> float:
        """Sleep the backoff for retry ``attempt``; returns the delay."""
        delay = self.delay_s(attempt, key)
        if delay > 0.0:
            time.sleep(delay)
        return delay

    def replaced(self, **changes) -> "RetryPolicy":
        """A copy with the given fields replaced (frozen-dataclass sugar)."""
        from dataclasses import replace

        return replace(self, **changes)


#: The schedule the parallel fan-out has always used; the fabric layers
#: jitter on top via ``DEFAULT_RETRY_POLICY.replaced(jitter=...)``.
DEFAULT_RETRY_POLICY = RetryPolicy()
