"""repro.resilience — budgets, degradation, and failure isolation.

The resilience layer has three parts, threaded through the whole pipeline:

* the exception taxonomy in :mod:`repro.errors` (re-exported here), which
  turns "anything might raise anything" into a small set of catchable,
  structured failures;
* cooperative :class:`Budget` / :class:`Deadline` objects (this package),
  checked at loop boundaries inside the DP, the exhaustive search, the
  regional heuristic, greedy, PODEM, and the fault simulator;
* the solver cascade (:mod:`repro.core.cascade`) and the crash-isolated
  experiment runner (:mod:`repro.analysis.experiments`), which *consume*
  budget failures: the cascade degrades to a cheaper solver, the runner
  records the failure and moves on to the next circuit;
* deterministic chaos hooks (:class:`ChaosSpec`) that inject worker
  crashes / hangs / corrupted payloads into the parallel fault-sim
  fan-out, so the hardened retry/respawn/degrade machinery in
  :mod:`repro.sim.parallel` is provable rather than hopeful.

DESIGN.md §8 describes the degradation cascade and why NP-completeness
makes budgets first-class here; §11 covers the chaos hook contract.
"""

from ..errors import (
    ArtifactWriteError,
    BudgetExceededError,
    CircuitError,
    DivergenceError,
    ExperimentError,
    ParseError,
    ReproError,
    SimulationError,
    SolverError,
    SweepInterrupted,
)
from .budget import Budget, Deadline
from .chaos import (
    CHAOS_ACTIONS,
    FABRIC_CHAOS_ACTIONS,
    ChaosSpec,
    FabricChaosSpec,
)
from .interrupt import GracefulInterrupt
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "Budget",
    "CHAOS_ACTIONS",
    "ChaosSpec",
    "FABRIC_CHAOS_ACTIONS",
    "FabricChaosSpec",
    "Deadline",
    "DEFAULT_RETRY_POLICY",
    "GracefulInterrupt",
    "RetryPolicy",
    "ArtifactWriteError",
    "BudgetExceededError",
    "DivergenceError",
    "CircuitError",
    "ExperimentError",
    "ParseError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "SweepInterrupted",
]
