"""Deterministic fault injection for the parallel fan-out (chaos hooks).

The hardened :func:`repro.sim.parallel.run_parallel` promises that worker
crashes, hangs, corrupted chunk payloads, and spurious worker exceptions
never change the *result* — only the wall clock.  That promise is worth
nothing untested, and real crashes are not reproducible; a
:class:`ChaosSpec` makes them so.  It is carried into every worker and
consulted once per ``(chunk, attempt)``:

* ``crash`` — the worker process dies hard (``os._exit``), breaking the
  pool mid-flight (exercises pool respawn + chunk re-dispatch);
* ``hang`` — the worker sleeps ``hang_seconds`` before computing
  (exercises the per-chunk deadline and stale-result handling);
* ``corrupt`` — the worker returns a truncated payload (exercises the
  parent's shape validation + retry);
* ``spurious`` — the worker raises a ``RuntimeError`` (exercises plain
  per-chunk retry).

Injection is **seeded and deterministic**: the decision for a chunk is a
pure function of ``(seed, chunk_index, attempt)``, so a failing run
replays exactly.  ``forced`` pins specific chunks to specific actions for
targeted tests.  By default (``first_attempt_only=True``) chaos applies
only to a chunk's first attempt, so every hardened run must converge to
the serial result — which is exactly the property the chaos tests
assert.

The sweep fabric (:mod:`repro.fabric`) has its own, wider fault surface —
besides worker-process mayhem it must survive *supervisor-side* failures
(journal writes hitting ENOSPC, duplicate completions racing the commit
point).  :class:`FabricChaosSpec` covers it with the same contract:
seeded, deterministic per ``(job_index, attempt)``, and off by default.

Nothing here ever fires in production: ``run_parallel(chaos=None)`` /
``FabricSupervisor(chaos=None)`` (the defaults) skip every hook.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosSpec",
    "FABRIC_CHAOS_ACTIONS",
    "FabricChaosSpec",
]

#: Everything a chaos hook can do to a chunk attempt.
CHAOS_ACTIONS = ("crash", "hang", "corrupt", "spurious")


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded fault-injection plan for one ``run_parallel`` call.

    ``crash``/``hang``/``corrupt``/``spurious`` are per-chunk
    probabilities (bands of one uniform draw, so they must sum to at most
    1).  ``forced`` overrides the draw for specific chunk indices:
    ``((0, "crash"), (1, "hang"))`` crashes chunk 0's worker and hangs
    chunk 1's.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    spurious: float = 0.0
    #: How long a "hang" sleeps before computing (keep well above the
    #: caller's ``chunk_timeout`` so the deadline actually fires).
    hang_seconds: float = 30.0
    #: With True (default) chaos only strikes a chunk's first attempt, so
    #: retries converge; False re-rolls per attempt (torture mode).
    first_attempt_only: bool = True
    forced: Tuple[Tuple[int, str], ...] = field(default=())

    def __post_init__(self) -> None:
        total = self.crash + self.hang + self.corrupt + self.spurious
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"chaos probabilities sum to {total:g} > 1"
            )
        for _idx, act in self.forced:
            if act not in CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {act!r} "
                    f"(choose from {CHAOS_ACTIONS})"
                )

    def action(self, chunk_index: int, attempt: int) -> Optional[str]:
        """The action (if any) to inflict on this chunk attempt.

        Pure and deterministic: same spec + same ``(chunk_index,
        attempt)`` always returns the same answer, in the parent and in
        any worker.
        """
        if attempt > 0 and self.first_attempt_only:
            return None
        for idx, act in self.forced:
            if idx == chunk_index:
                return act
        bands = (
            ("crash", self.crash),
            ("hang", self.hang),
            ("corrupt", self.corrupt),
            ("spurious", self.spurious),
        )
        return _banded_roll(
            f"chaos:{self.seed}:{chunk_index}:{attempt}", bands
        )


def _banded_roll(
    seed_key: str, bands: Sequence[Tuple[str, float]]
) -> Optional[str]:
    """One uniform draw partitioned into probability bands.

    The draw is keyed by ``seed_key`` alone, so the same key always
    lands in the same band — in the parent, in any worker, on any host.
    """
    if not any(p for _name, p in bands):
        return None
    roll = random.Random(seed_key).random()
    edge = 0.0
    for name, p in bands:
        edge += p
        if roll < edge:
            return name
    return None


#: Everything fabric chaos can do to a job attempt.  The first four are
#: inflicted inside the worker process; ``enospc`` and ``duplicate``
#: strike the *supervisor* side (journal append failure, double commit).
FABRIC_CHAOS_ACTIONS = (
    "crash",      # worker process dies hard mid-lease (os._exit)
    "stall",      # worker stops heartbeating and sleeps past lease expiry
    "corrupt",    # worker returns a malformed result payload
    "spurious",   # worker raises an unexpected exception
    "enospc",     # the journal append for this job's commit fails once
    "duplicate",  # a second completion for the job races the commit
    # Result-store faults (strike the published store entry after the
    # journal commit; workers ignore them — they check actions by name):
    "store_torn",     # the entry file is truncated mid-record
    "store_bitflip",  # one bit of the entry payload is flipped
    "store_stale",    # the entry is rewritten under an old schema tag
    "store_double",   # a concurrent second publish races the first
)


@dataclass(frozen=True)
class FabricChaosSpec:
    """Seeded fault-injection plan for one fabric campaign.

    Mirrors :class:`ChaosSpec` (banded probabilities over one uniform
    draw per ``(job_index, attempt)``, ``forced`` pins, first-attempt-
    only by default) over the fabric's fault surface:

    * ``crash`` — the worker leasing the job dies hard, breaking the
      pool (exercises pool respawn, lease bookkeeping, the breaker);
    * ``stall`` — the worker suppresses its heartbeat and sleeps
      ``stall_seconds`` (exercises heartbeat-based lease expiry and
      re-dispatch; the stalled attempt's late result must lose to the
      exactly-once commit);
    * ``corrupt`` — the worker returns a malformed payload (exercises
      supervisor-side shape validation + retry);
    * ``spurious`` — the worker raises (plain retry path);
    * ``enospc`` — the journal append committing this job fails once
      with ``ENOSPC`` (exercises commit retry; the job must still
      commit exactly once);
    * ``duplicate`` — a duplicate completion for the job is offered to
      the journal after the real commit (must be rejected, not
      double-counted);
    * ``store_torn`` — the result-store entry published for this job is
      truncated mid-record (a torn write; the next read must quarantine
      it and recompute, never serve a partial record);
    * ``store_bitflip`` — one bit of the published entry is flipped
      (silent media corruption; the payload sha256 must catch it);
    * ``store_stale`` — the published entry is rewritten under an
      outdated schema tag (a leftover from an older store format; it
      must be quarantined, not parsed on faith);
    * ``store_double`` — a second publish for the job races the first
      (must be a no-op: first write wins, entry content unchanged).

    The ``store_*`` faults only fire when the campaign runs with a
    result store attached; without one the supervisor has nothing to
    corrupt and ignores them.
    """

    seed: int = 0
    crash: float = 0.0
    stall: float = 0.0
    corrupt: float = 0.0
    spurious: float = 0.0
    enospc: float = 0.0
    duplicate: float = 0.0
    store_torn: float = 0.0
    store_bitflip: float = 0.0
    store_stale: float = 0.0
    store_double: float = 0.0
    #: How long a stalled worker sleeps (keep well above the
    #: supervisor's ``lease_timeout_s`` so the lease actually expires).
    stall_seconds: float = 30.0
    #: With True (default) chaos only strikes a job's first attempt, so
    #: retries converge; False re-rolls per attempt (torture mode).
    first_attempt_only: bool = True
    forced: Tuple[Tuple[int, str], ...] = field(default=())

    def __post_init__(self) -> None:
        total = (
            self.crash + self.stall + self.corrupt
            + self.spurious + self.enospc + self.duplicate
            + self.store_torn + self.store_bitflip
            + self.store_stale + self.store_double
        )
        if total > 1.0 + 1e-12:
            raise ValueError(f"chaos probabilities sum to {total:g} > 1")
        for _idx, act in self.forced:
            if act not in FABRIC_CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown fabric chaos action {act!r} "
                    f"(choose from {FABRIC_CHAOS_ACTIONS})"
                )

    def action(self, job_index: int, attempt: int) -> Optional[str]:
        """The action (if any) to inflict on this job attempt.

        Pure and deterministic — the supervisor and the worker agree on
        the answer without communicating, which is what lets worker-side
        and supervisor-side faults share one spec.
        """
        if attempt > 0 and self.first_attempt_only:
            return None
        for idx, act in self.forced:
            if idx == job_index:
                return act
        bands = (
            ("crash", self.crash),
            ("stall", self.stall),
            ("corrupt", self.corrupt),
            ("spurious", self.spurious),
            ("enospc", self.enospc),
            ("duplicate", self.duplicate),
            ("store_torn", self.store_torn),
            ("store_bitflip", self.store_bitflip),
            ("store_stale", self.store_stale),
            ("store_double", self.store_double),
        )
        return _banded_roll(
            f"fabric-chaos:{self.seed}:{job_index}:{attempt}", bands
        )
