"""Deterministic fault injection for the parallel fan-out (chaos hooks).

The hardened :func:`repro.sim.parallel.run_parallel` promises that worker
crashes, hangs, corrupted chunk payloads, and spurious worker exceptions
never change the *result* — only the wall clock.  That promise is worth
nothing untested, and real crashes are not reproducible; a
:class:`ChaosSpec` makes them so.  It is carried into every worker and
consulted once per ``(chunk, attempt)``:

* ``crash`` — the worker process dies hard (``os._exit``), breaking the
  pool mid-flight (exercises pool respawn + chunk re-dispatch);
* ``hang`` — the worker sleeps ``hang_seconds`` before computing
  (exercises the per-chunk deadline and stale-result handling);
* ``corrupt`` — the worker returns a truncated payload (exercises the
  parent's shape validation + retry);
* ``spurious`` — the worker raises a ``RuntimeError`` (exercises plain
  per-chunk retry).

Injection is **seeded and deterministic**: the decision for a chunk is a
pure function of ``(seed, chunk_index, attempt)``, so a failing run
replays exactly.  ``forced`` pins specific chunks to specific actions for
targeted tests.  By default (``first_attempt_only=True``) chaos applies
only to a chunk's first attempt, so every hardened run must converge to
the serial result — which is exactly the property the chaos tests
assert.

Nothing here ever fires in production: ``run_parallel(chaos=None)`` (the
default) skips every hook.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["CHAOS_ACTIONS", "ChaosSpec"]

#: Everything a chaos hook can do to a chunk attempt.
CHAOS_ACTIONS = ("crash", "hang", "corrupt", "spurious")


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded fault-injection plan for one ``run_parallel`` call.

    ``crash``/``hang``/``corrupt``/``spurious`` are per-chunk
    probabilities (bands of one uniform draw, so they must sum to at most
    1).  ``forced`` overrides the draw for specific chunk indices:
    ``((0, "crash"), (1, "hang"))`` crashes chunk 0's worker and hangs
    chunk 1's.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    spurious: float = 0.0
    #: How long a "hang" sleeps before computing (keep well above the
    #: caller's ``chunk_timeout`` so the deadline actually fires).
    hang_seconds: float = 30.0
    #: With True (default) chaos only strikes a chunk's first attempt, so
    #: retries converge; False re-rolls per attempt (torture mode).
    first_attempt_only: bool = True
    forced: Tuple[Tuple[int, str], ...] = field(default=())

    def __post_init__(self) -> None:
        total = self.crash + self.hang + self.corrupt + self.spurious
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"chaos probabilities sum to {total:g} > 1"
            )
        for _idx, act in self.forced:
            if act not in CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {act!r} "
                    f"(choose from {CHAOS_ACTIONS})"
                )

    def action(self, chunk_index: int, attempt: int) -> Optional[str]:
        """The action (if any) to inflict on this chunk attempt.

        Pure and deterministic: same spec + same ``(chunk_index,
        attempt)`` always returns the same answer, in the parent and in
        any worker.
        """
        if attempt > 0 and self.first_attempt_only:
            return None
        for idx, act in self.forced:
            if idx == chunk_index:
                return act
        if not (self.crash or self.hang or self.corrupt or self.spurious):
            return None
        roll = random.Random(
            f"chaos:{self.seed}:{chunk_index}:{attempt}"
        ).random()
        edge = self.crash
        if roll < edge:
            return "crash"
        edge += self.hang
        if roll < edge:
            return "hang"
        edge += self.corrupt
        if roll < edge:
            return "corrupt"
        edge += self.spurious
        if roll < edge:
            return "spurious"
        return None
