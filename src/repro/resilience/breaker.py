"""Circuit breaker: stop trusting a failing substrate, degrade instead.

The fabric's process pool can fail in ways retry cannot fix — a fork
bomb of dying workers, a poisoned interpreter state, a sandbox that
kills children on sight.  Retrying individual jobs against a substrate
that is *systematically* broken burns the whole campaign's wall clock
discovering the same fact over and over.  A :class:`CircuitBreaker`
watches the failure stream and **trips** when it sees cascade shape:

* too many *consecutive* job-attempt failures with no success between
  them (isolated flakes reset the streak; cascades don't), or
* the process pool breaking more times than a respawn is worth.

Once tripped it stays tripped for the campaign (no half-open probing —
a campaign is finite; the caller degrades to in-process serial
execution, which cannot cascade, and the next campaign starts with a
fresh breaker).  Purely supervisor-side bookkeeping: deterministic,
lock-free, and trivially testable.
"""

from __future__ import annotations

from typing import Optional

from .. import obs

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Trip on cascading failures; stay tripped until discarded.

    Parameters
    ----------
    failure_threshold:
        Consecutive failed job attempts (across all jobs, any success
        resets) that trip the breaker.
    pool_break_threshold:
        :class:`BrokenProcessPool` events that trip it (2 by default:
        one break earns a respawn, a second proves the respawn didn't
        help — the same policy the parallel fan-out hardcodes).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        pool_break_threshold: int = 2,
    ) -> None:
        if failure_threshold < 1 or pool_break_threshold < 1:
            raise ValueError("breaker thresholds must be at least 1")
        self.failure_threshold = failure_threshold
        self.pool_break_threshold = pool_break_threshold
        self.consecutive_failures = 0
        self.pool_breaks = 0
        self.total_failures = 0
        self._tripped = False
        self.trip_reason: Optional[str] = None

    @property
    def tripped(self) -> bool:
        return self._tripped

    def _trip(self, reason: str) -> None:
        if self._tripped:
            return
        self._tripped = True
        self.trip_reason = reason
        obs.count("fabric.breaker_trips")
        obs.event(
            "fabric.breaker_open",
            reason=reason,
            consecutive_failures=self.consecutive_failures,
            pool_breaks=self.pool_breaks,
        )

    def record_success(self) -> None:
        """A job attempt succeeded; an isolated flake is not a cascade."""
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """A job attempt failed; returns True when this trips the breaker."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip(
                f"{self.consecutive_failures} consecutive job failures"
            )
        return self._tripped

    def record_pool_break(self) -> bool:
        """The process pool broke; returns True when this trips the breaker."""
        self.pool_breaks += 1
        if self.pool_breaks >= self.pool_break_threshold:
            self._trip(f"process pool broke {self.pool_breaks} times")
        return self._tripped

    def describe(self) -> str:
        state = f"OPEN ({self.trip_reason})" if self._tripped else "closed"
        return (
            f"breaker {state}: {self.total_failures} failures "
            f"({self.consecutive_failures} consecutive), "
            f"{self.pool_breaks} pool breaks"
        )
