"""Command-line interface: ``repro-tpi`` / ``python -m repro``.

Subcommands:

* ``stats <bench|name>`` — circuit statistics and baseline coverage;
* ``insert <bench|name>`` — plan test points and report the placement;
* ``coverage <bench|name>`` — plan, insert, fault simulate, report;
* ``report <bench|name|trace.jsonl>`` — testability profile of a
  circuit, or a human-readable summary of a recorded trace;
* ``experiments`` — run the reconstructed evaluation suite (T1–T4, F1–F4);
* ``sweep`` — plan test points over many netlist files with per-circuit
  crash isolation and a resumable JSONL results file; ``--fabric
  --workers N`` runs it as a supervised fabric campaign (leased worker
  processes, content-addressed dedup, exactly-once journal commits,
  poison-job quarantine) with bit-identical results;
* ``fabric-status <journal>`` — inspect a fabric journal: commits,
  quarantined jobs, crash evidence (torn lines); ``--store DIR`` adds
  result-store statistics (entries, bytes, hits/misses/corrupt);
* ``pack <journal> --out DIR`` — export an evidence pack (journal,
  verified store entries, quarantine artifacts, ``--include`` extras)
  under a SHA-256 manifest; ``pack <dir> --verify`` re-hashes a pack
  and exits 1 on any mismatch, missing, or unlisted file;
* ``store-gc <store>`` — prune least-recently-used result-store entries
  under ``--max-bytes`` / ``--max-age-days`` caps (leased entries are
  never deleted);
* ``fuzz`` — time-budgeted differential fuzzer over random circuits,
  cross-checking interp vs compiled vs parallel vs incremental engines
  and DP vs exhaustive solvers; failures are shrunk and written as
  repro bundles;
* ``replay`` — deterministically re-run a divergence repro bundle and
  report whether it still reproduces;
* ``bench-compare <BENCH_PERF.json>`` — regression-gate fresh benchmark
  numbers against the rolling ``benchmarks/history/`` baseline;
* ``list`` — list built-in benchmark circuits.

A circuit argument is either the name of a built-in benchmark (see
``list``) or a path to an ISCAS-85 ``.bench`` file.

Observability: ``--trace-out FILE`` records a structured JSONL trace of
the run (spans, counters, run metadata — see :mod:`repro.obs`), and
``--metrics`` prints the metrics snapshot after the command finishes.
``repro-tpi report run.jsonl`` renders a recorded trace; ``--self-time``
/ ``--critical-path`` print trace analytics and ``--chrome-out`` exports
Chrome trace-event JSON for Perfetto.  ``--profile-out`` profiles the
command (sampling profiler by default, folded stacks; ``--profile-mode
cprofile`` with optional ``--profile-span``, pstats).  ``bench-compare``
gates a fresh ``BENCH_PERF.json`` against the benchmark history with a
noise-aware tolerance (exit 1 on regression).

Resilience: ``--budget-ms`` / ``--max-cells`` / ``--max-backtracks`` /
``--max-patterns`` impose a cooperative solve budget; the solver then runs
as a degradation cascade (``dp → greedy → random``) that records every
fallback as a ``solver_fallback`` trace event.  Long campaigns handle
SIGTERM/SIGINT gracefully: the in-flight item finishes, its record is
flushed, and the run stops resumably (a second signal kills
immediately).  Exit codes are stable: 0 success, 1 infeasible result,
2 usage/parse error, 3 budget exceeded with no fallback left, 4 other
internal library error, 5 interrupted by signal but resumable (rerun
the same command to continue).

Self-checking: ``--guard [FRACTION]`` (default 0.01 when given) runs the
command inside a :class:`repro.verify.GuardedSession` — a seeded sample
of compiled/incremental results is shadow re-executed on the interpreter
arbiters, and every solver answer is independently certified.  A
mismatch aborts with a replayable repro bundle (exit 4) under
``--bundle-dir`` (default ``repro_bundles/``); ``--guard-seed`` fixes
which results are sampled.  ``repro-tpi replay <bundle>`` exits 0 when
the divergence still reproduces, 1 when it does not.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Iterator, List, Optional

from . import obs
from .analysis import experiments as exps
from .circuit.bench_io import parse_bench_file
from .circuit.verilog_io import parse_verilog_file
from .circuit.library import BENCHMARKS, benchmark, benchmark_names
from .circuit.netlist import Circuit, CircuitError
from .core.cascade import DEFAULT_CASCADE, SOLVER_CASCADE, solve_with_fallback
from .core.evaluate import evaluate_solution
from .core.prepare import prepare_for_tpi
from .core.greedy import solve_greedy
from .core.heuristic import solve_dp_heuristic
from .core.problem import TPIProblem, TPISolution
from .errors import BudgetExceededError, ParseError, ReproError, SweepInterrupted
from .resilience import Budget
from .resilience.interrupt import GracefulInterrupt
from .sim.compile import DEFAULT_KERNEL, KERNEL_MODES
from .sim.fault_sim import FaultSimulator
from .sim.faults import collapse_faults
from .sim.parallel import run_parallel
from .sim.patterns import UniformRandomSource
from .verify import GuardedSession, maybe_certify, replay_bundle

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_INFEASIBLE",
    "EXIT_USAGE",
    "EXIT_BUDGET",
    "EXIT_INTERNAL",
    "EXIT_INTERRUPTED",
]

EXIT_OK = 0
EXIT_INFEASIBLE = 1
EXIT_USAGE = 2
EXIT_BUDGET = 3
EXIT_INTERNAL = 4
#: Stopped by SIGTERM/SIGINT at an item boundary with all completed work
#: flushed durably — rerunning the same command resumes where it stopped.
EXIT_INTERRUPTED = 5


def _usage_exit(message: str) -> SystemExit:
    """A usage error: one stderr line, exit code 2 (argparse's convention)."""
    print(f"repro-tpi: {message}", file=sys.stderr)
    return SystemExit(EXIT_USAGE)


def _load_circuit(spec: str) -> Circuit:
    """Resolve a circuit spec (built-in name or netlist file).

    Malformed files raise :class:`~repro.errors.ParseError` (with
    ``file:line`` where known), which ``main`` maps to exit code 2.
    """
    if spec in BENCHMARKS:
        return benchmark(spec)
    path = Path(spec)
    if not path.exists():
        raise _usage_exit(
            f"unknown circuit {spec!r}: not a built-in benchmark and not a "
            f"file (built-ins: {', '.join(benchmark_names())})"
        )
    try:
        if path.suffix in (".v", ".sv"):
            return parse_verilog_file(path)
        return parse_bench_file(path)
    except ParseError:
        raise
    except CircuitError as exc:
        # Structural errors found after parsing (e.g. validate()) still
        # mean the input file is bad: present them as parse failures.
        raise ParseError(f"failed to parse: {exc}", path=str(path)) from exc


def _load_prepared(args: argparse.Namespace) -> Circuit:
    """Load + TPI-prepare a circuit under the ``prepare`` pipeline span."""
    with obs.span("prepare", circuit=args.circuit):
        return prepare_for_tpi(_load_circuit(args.circuit))


def _budget_from_args(args: argparse.Namespace) -> Optional[Budget]:
    """Build a cooperative :class:`Budget` from the CLI flags (or None)."""
    wall = getattr(args, "budget_ms", None)
    cells = getattr(args, "max_cells", None)
    backtracks = getattr(args, "max_backtracks", None)
    patterns = getattr(args, "max_patterns", None)
    if wall is None and cells is None and backtracks is None and patterns is None:
        return None
    return Budget(
        wall_ms=wall,
        max_dp_cells=cells,
        max_backtracks=backtracks,
        max_patterns=patterns,
    )


def _solve(problem: TPIProblem, args: argparse.Namespace) -> TPISolution:
    """Run the selected solver under the ``solve`` pipeline span.

    With any budget flag set (or ``--solver cascade``), solving goes
    through the degradation cascade so budget exhaustion downgrades to a
    cheaper solver instead of failing the command.
    """
    budget = _budget_from_args(args)
    with obs.span(
        "solve", solver=args.solver, circuit=problem.circuit.name
    ) as sp:
        if budget is not None or args.solver == "cascade":
            start = args.solver if args.solver in DEFAULT_CASCADE else "dp"
            stages = DEFAULT_CASCADE[DEFAULT_CASCADE.index(start):]
            solution = solve_with_fallback(problem, solvers=stages, budget=budget)
        elif args.solver == "greedy":
            solution = maybe_certify(problem, solve_greedy(problem))
        else:
            solution = maybe_certify(problem, solve_dp_heuristic(problem))
        sp.set(
            cost=solution.cost,
            points=len(solution.points),
            feasible=solution.feasible,
        )
    return solution


@contextlib.contextmanager
def _guarded(args: argparse.Namespace) -> Iterator[None]:
    """Install an ambient GuardedSession for ``--guard`` runs."""
    fraction = getattr(args, "guard", None)
    if fraction is None:
        yield
        return
    with GuardedSession(
        fraction=fraction,
        seed=getattr(args, "guard_seed", 0),
        bundle_dir=getattr(args, "bundle_dir", None),
    ) as guard:
        yield
    print(
        f"guard: {guard.checks} shadow checks, "
        f"{guard.divergences} divergences",
        file=sys.stderr,
    )


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .analysis.fuzz import run_fuzz

    report = run_fuzz(
        budget_ms=args.budget_ms,
        seed=args.seed,
        bundle_dir=args.bundle_dir,
        max_gates=args.max_gates,
        n_patterns=args.patterns,
        kernel=args.kernel,
        store=args.store,
    )
    print(report.describe())
    if report.failures:
        for failure in report.failures:
            print(f"repro-tpi: divergence: {failure}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_OK


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        result = replay_bundle(args.bundle)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro-tpi: cannot replay {args.bundle!r}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(result.describe())
    return EXIT_OK if result.reproduced else EXIT_INFEASIBLE


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in benchmark_names():
        circuit = benchmark(name)
        stats = circuit.stats()
        print(
            f"{name:14s} inputs={stats['inputs']:4d} gates={stats['gates']:5d} "
            f"depth={stats['depth']:3d} outputs={stats['outputs']:3d}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with obs.span("prepare", circuit=args.circuit):
        circuit = _load_circuit(args.circuit)
        stats = circuit.stats()
        collapsed = collapse_faults(circuit)
    for key, value in stats.items():
        print(f"{key:10s} {value}")
    print(f"{'faults':10s} {collapsed.size()} (collapsed)")
    stim = UniformRandomSource(seed=args.seed).generate(
        circuit.inputs, args.patterns
    )
    jobs = getattr(args, "jobs", 1)
    mode = "coverage" if getattr(args, "drop", False) else "exact"
    kernel = getattr(args, "kernel", None)
    if jobs > 1 or mode != "exact":
        res = run_parallel(
            circuit, stim, args.patterns, jobs=jobs, mode=mode, kernel=kernel
        )
    else:
        res = FaultSimulator(circuit, kernel=kernel).run(stim, args.patterns)
    print(f"{'coverage':10s} {100 * res.coverage():.2f}% @ {args.patterns} patterns")
    return 0


def _make_problem(circuit: Circuit, args: argparse.Namespace) -> TPIProblem:
    return TPIProblem.from_test_length(
        circuit, n_patterns=args.patterns, escape_budget=args.escape
    )


def _cmd_insert(args: argparse.Namespace) -> int:
    circuit = _load_prepared(args)
    problem = _make_problem(circuit, args)
    solution = _solve(problem, args)
    print(f"threshold θ = {problem.threshold:.6f}")
    print(solution.describe())
    return 0 if solution.feasible else 1


def _cmd_coverage(args: argparse.Namespace) -> int:
    circuit = _load_prepared(args)
    problem = _make_problem(circuit, args)
    solution = _solve(problem, args)
    report = evaluate_solution(
        problem,
        solution,
        args.patterns,
        jobs=getattr(args, "jobs", 1),
        mode="coverage" if getattr(args, "drop", False) else "exact",
        kernel=getattr(args, "kernel", None),
    )
    print(f"circuit        {report.circuit_name}")
    print(f"faults         {report.n_faults}")
    print(f"test points    {report.n_control} CP + {report.n_observation} OP")
    print(f"coverage       {100 * report.baseline_coverage:.2f}% -> "
          f"{100 * report.modified_coverage:.2f}%  (+{100 * report.coverage_gain:.2f})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = args.circuit
    trace_flags = (
        getattr(args, "self_time", False)
        or getattr(args, "critical_path", False)
        or getattr(args, "chrome_out", None) is not None
    )
    if Path(spec).suffix == ".jsonl":
        # A recorded trace, not a circuit: render its summary/analytics.
        if not Path(spec).exists():
            raise SystemExit(f"no such trace file: {spec!r}")
        trace = obs.load_trace(spec)
        sections: List[str] = []
        if args.self_time:
            sections.append(obs.render_self_time(trace.spans))
        if args.critical_path:
            sections.append(obs.render_critical_path(trace.spans))
        if not sections:
            sections.append(obs.render_trace(spec))
        print("\n\n".join(sections))
        if args.chrome_out is not None:
            obs.write_chrome_trace(trace, args.chrome_out)
            print(
                f"chrome trace written to {args.chrome_out} "
                f"(open in Perfetto or chrome://tracing)",
                file=sys.stderr,
            )
        return 0
    if trace_flags:
        raise _usage_exit(
            "--self-time/--critical-path/--chrome-out need a recorded "
            f"trace (.jsonl), not a circuit ({spec!r})"
        )

    from .analysis import testability_report

    circuit = _load_circuit(spec)
    report = testability_report(
        circuit, n_patterns=args.patterns, escape_budget=args.escape
    )
    print(report.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    runners = exps.experiment_runners()
    selected = args.only or list(runners)
    for key in selected:
        if key not in runners:
            raise _usage_exit(
                f"unknown experiment {key!r} (choose from {list(runners)})"
            )
    if args.fabric and args.results is None:
        raise _usage_exit("--fabric needs --results (the fabric journal)")
    if args.fabric and args.no_resume:
        raise _usage_exit(
            "--no-resume is meaningless with --fabric: the journal is "
            "content-addressed (delete the journal file to start over)"
        )
    if args.store is not None and not args.fabric:
        raise _usage_exit(
            "--store needs --fabric (the result store is keyed by "
            "fabric job ids)"
        )
    if args.results is not None:
        # Checkpointed mode: crash-isolated, resumable per experiment.
        with GracefulInterrupt() as stop:
            records = exps.run_experiments_checkpointed(
                selected,
                args.results,
                resume=not args.no_resume,
                fabric=args.fabric,
                workers=args.workers,
                interrupt=stop,
                store=args.store,
                store_verify_fraction=args.store_verify,
            )
        failures = 0
        for record in records:
            if record["status"] == "ok":
                print(record["rendered"])
            else:
                failures += 1
                print(
                    f"[{record['experiment']}] FAILED "
                    f"({record['error_type']}): {record['error']}",
                    file=sys.stderr,
                )
            print()
        print(
            f"results written to {args.results} "
            f"({len(records) - failures} ok, {failures} failed)",
            file=sys.stderr,
        )
        return EXIT_OK if failures == 0 else EXIT_INFEASIBLE
    for key in selected:
        with obs.span(f"experiment.{key}"):
            rendered = runners[key]().render()
        print(rendered)
        print()
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    paths: List[Path] = []
    for spec in args.paths:
        p = Path(spec)
        if p.is_dir():
            paths.extend(
                sorted(
                    q
                    for q in p.iterdir()
                    if q.suffix in (".bench", ".v", ".sv")
                )
            )
        elif p.exists():
            paths.append(p)
        else:
            raise _usage_exit(f"no such file or directory: {spec!r}")
    if not paths:
        raise _usage_exit("no netlist files (.bench/.v/.sv) to sweep")
    if args.no_resume and args.fabric:
        raise _usage_exit(
            "--no-resume is meaningless with --fabric: the journal is "
            "content-addressed (delete the journal file to start over)"
        )
    if args.store is not None and not args.fabric:
        raise _usage_exit(
            "--store needs --fabric (the result store is keyed by "
            "fabric job ids)"
        )
    with GracefulInterrupt() as stop:
        outcomes = exps.run_circuit_sweep(
            paths,
            args.results,
            n_patterns=args.patterns,
            escape_budget=args.escape,
            budget=_budget_from_args(args),
            solvers=tuple(args.solvers),
            resume=not args.no_resume,
            max_circuits=args.max_circuits,
            measure_coverage=args.measure_coverage,
            jobs=args.jobs,
            fabric=args.fabric,
            workers=args.workers,
            lease_timeout_s=args.lease_timeout,
            interrupt=stop,
            store=args.store,
            store_verify_fraction=args.store_verify,
        )
    for outcome in outcomes:
        print(outcome.describe())
    n_failed = sum(1 for o in outcomes if not o.ok)
    remaining = len(paths) - len(outcomes)
    summary = (
        f"swept {len(outcomes)}/{len(paths)} circuits: "
        f"{len(outcomes) - n_failed} ok, {n_failed} failed"
    )
    if remaining:
        summary += f", {remaining} not yet run"
    print(f"{summary} (results: {args.results})", file=sys.stderr)
    return EXIT_OK


def _cmd_fabric_status(args: argparse.Namespace) -> int:
    from .fabric import format_status, journal_status

    try:
        status = journal_status(args.journal, store=args.store)
    except FileNotFoundError as exc:
        raise _usage_exit(str(exc))
    if args.json:
        import json

        print(json.dumps(status, sort_keys=True, indent=2))
    else:
        print(format_status(status))
    return EXIT_OK


def _cmd_pack(args: argparse.Namespace) -> int:
    import json

    from .fabric.pack import build_pack, pack_status_line, verify_pack

    if args.verify:
        if args.out or args.store or args.include:
            raise _usage_exit(
                "--verify takes only a pack directory (build options "
                "--out/--store/--include do not apply)"
            )
        report = verify_pack(args.target)
        if args.json:
            print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        else:
            print(report.describe())
        return EXIT_OK if report.ok else EXIT_INFEASIBLE
    if not args.out:
        raise _usage_exit("pack needs --out DIR (or --verify on a pack)")
    try:
        manifest = build_pack(
            args.target,
            args.out,
            store=args.store,
            include=args.include or (),
        )
    except (FileNotFoundError, FileExistsError) as exc:
        raise _usage_exit(str(exc))
    if args.json:
        print(json.dumps(manifest, sort_keys=True, indent=2))
    else:
        print(f"evidence pack   {args.out}")
        print(f"  {pack_status_line(manifest)}")
        print(f"  manifest      {Path(args.out) / 'MANIFEST.json'}")
    return EXIT_OK


def _cmd_store_gc(args: argparse.Namespace) -> int:
    import json

    from .fabric import ResultStore

    if args.max_bytes is None and args.max_age_days is None:
        raise _usage_exit(
            "store-gc needs at least one cap: --max-bytes and/or "
            "--max-age-days"
        )
    store_dir = Path(args.store)
    if not store_dir.is_dir():
        raise _usage_exit(f"no result store at {store_dir}")
    report = ResultStore(store_dir).gc(
        max_bytes=args.max_bytes, max_age_days=args.max_age_days
    )
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(
            f"store-gc {store_dir}: deleted {report['deleted']} of "
            f"{report['scanned']} entries ({report['freed_bytes']} bytes "
            f"freed, {report['protected']} lease-protected, "
            f"{report['kept']} kept / {report['kept_bytes']} bytes)"
        )
    return EXIT_OK


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------
def _run_metadata(args: argparse.Namespace) -> dict:
    meta = {"command": args.command, "argv": sys.argv[1:]}
    for key in (
        "circuit",
        "seed",
        "patterns",
        "escape",
        "solver",
        "kernel",
        "only",
        "results",
        "budget_ms",
        "max_cells",
        "max_backtracks",
        "max_patterns",
    ):
        value = getattr(args, key, None)
        if value is not None:
            meta[key] = value
    return obs.run_metadata(**meta)


@contextlib.contextmanager
def _observability(args: argparse.Namespace) -> Iterator[None]:
    """Install a recorder for ``--trace-out`` / ``--metrics`` runs."""
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_out is None and not want_metrics:
        yield
        return
    recorder = obs.RunRecorder(trace_out, metadata=_run_metadata(args))
    previous = obs.set_recorder(recorder)
    try:
        yield
    finally:
        obs.set_recorder(previous)
        snapshot = recorder.metrics.snapshot()
        recorder.close()
        if want_metrics:
            print("\n" + obs.render_metrics(snapshot), file=sys.stderr)
        if trace_out is not None:
            print(
                f"trace written to {trace_out} "
                f"({recorder.n_spans} spans)",
                file=sys.stderr,
            )


@contextlib.contextmanager
def _profiled(args: argparse.Namespace) -> Iterator[None]:
    """Run the command under ``--profile-out`` profiling, if requested.

    ``--profile-mode sample`` (default) runs the sampling profiler and
    writes folded stacks; ``cprofile`` runs deterministic cProfile,
    optionally scoped to ``--profile-span NAME`` spans, and writes a
    pstats dump.
    """
    out = getattr(args, "profile_out", None)
    if out is None:
        yield
        return
    mode = getattr(args, "profile_mode", "sample")
    if mode == "sample":
        span_name = getattr(args, "profile_span", None)
        if span_name is not None:
            raise _usage_exit(
                "--profile-span needs --profile-mode cprofile "
                "(the sampler profiles the whole command)"
            )
        interval_ms = getattr(args, "profile_interval_ms", 5.0)
        try:
            sampler = obs.SamplingProfiler(interval_s=interval_ms / 1000.0)
        except ValueError as exc:
            raise _usage_exit(f"--profile-interval-ms: {exc}")
        with sampler:
            yield
        sampler.write_folded(out)
        print(
            f"profile: {sampler.samples} samples over "
            f"{sampler.elapsed_s:.2f}s -> {out} "
            f"(folded stacks; render with flamegraph.pl or speedscope)",
            file=sys.stderr,
        )
        return
    profile = obs.SpanScopedProfile(span_name=getattr(args, "profile_span", None))
    with contextlib.ExitStack() as stack:
        if profile.span_name is not None and not obs.enabled():
            # Span scoping needs real spans; without --trace-out/--metrics
            # the hot path hands out NULL_SPANs, so install a metrics-only
            # recorder for the profiled extent.
            stack.enter_context(obs.recording(obs.RunRecorder(None)))
        stack.enter_context(profile)
        yield
    profile.write_stats(out)
    scope = (
        f"spans named {profile.span_name!r}"
        if profile.span_name is not None
        else "the whole command"
    )
    print(
        f"profile: cProfile of {scope} -> {out} "
        f"(inspect with python -m pstats)",
        file=sys.stderr,
    )


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from .obs import history as hist

    try:
        payload = json.loads(Path(args.current).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise _usage_exit(f"cannot read benchmark payload {args.current!r}: {exc}")
    if not isinstance(payload, dict):
        raise _usage_exit(f"not a BENCH_PERF payload: {args.current!r}")
    current = hist.entries_from_bench_perf(payload, git_rev=obs.git_revision())
    if not current:
        raise _usage_exit(f"no benchmarks in payload {args.current!r}")
    history = hist.load_history(args.history)
    report = hist.compare_to_history(
        history,
        current,
        tolerance=args.tolerance,
        window=args.window,
        same_host_only=args.same_host_only,
        relative_only=args.relative_only,
    )
    print(hist.render_comparison(report, verbose=args.verbose))
    if args.record:
        hist.append_history(args.history, current)
        print(
            f"recorded {len(current)} entries to {args.history}",
            file=sys.stderr,
        )
    return EXIT_OK if report.ok else EXIT_INFEASIBLE


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tpi",
        description="Dynamic-programming test point insertion (DAC 1987 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in benchmark circuits").set_defaults(
        fn=_cmd_list
    )

    def add_observability(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="record a structured JSONL trace of the run",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the metrics snapshot after the command",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="benchmark name, .bench file, or structural .v file")
        p.add_argument("--patterns", type=int, default=4096, help="pattern budget")
        p.add_argument("--escape", type=float, default=0.001, help="escape budget ε")
        p.add_argument("--seed", type=int, default=1, help="pattern source seed")

    def add_profile(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "profiling",
            "opt-in profiler around the whole command; zero cost when "
            "--profile-out is not given",
        )
        g.add_argument(
            "--profile-out", metavar="FILE",
            help="write a profile of the run: folded stacks "
            "(--profile-mode sample) or a pstats dump (cprofile)",
        )
        g.add_argument(
            "--profile-mode", choices=["sample", "cprofile"],
            default="sample",
            help="sampling profiler (flamegraph-ready folded stacks, "
            "default) or deterministic cProfile",
        )
        g.add_argument(
            "--profile-span", metavar="NAME", default=None,
            help="with cprofile: only profile while a span of this name "
            "is open (e.g. solve, fault_sim.run)",
        )
        g.add_argument(
            "--profile-interval-ms", type=float, default=5.0, metavar="MS",
            help="sampling interval (default 5 ms)",
        )

    def add_simflags(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "fault simulation",
            "performance knobs; coverage numbers are bit-identical "
            "for every setting",
        )
        g.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan the fault list out over N worker processes",
        )
        g.add_argument(
            "--drop", action="store_true",
            help="coverage-only fault dropping (skips full detection words)",
        )
        g.add_argument(
            "--kernel", choices=list(KERNEL_MODES), default=DEFAULT_KERNEL,
            help="per-circuit compiled simulation kernels (default) or the "
            "interpreted ground-truth gate walk",
        )

    def add_guard(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "self-checking",
            "shadow-verify a sampled fraction of fast-path results "
            "against the interpreted arbiter and certify solver output; "
            "a mismatch aborts with a replayable repro bundle (exit 4)",
        )
        g.add_argument(
            "--guard", type=float, nargs="?", const=0.01, default=None,
            metavar="FRACTION",
            help="enable guard mode, checking FRACTION of results "
            "(default 0.01 when the flag is given bare)",
        )
        g.add_argument(
            "--guard-seed", type=int, default=0, metavar="N",
            help="seed of the guard's sampling stream",
        )
        g.add_argument(
            "--bundle-dir", default=None, metavar="DIR",
            help="where divergence repro bundles are written "
            "(default: repro_bundles/)",
        )

    def add_store(g) -> None:
        g.add_argument(
            "--store", metavar="DIR", default=None,
            help="cross-campaign result store: verified cache hits skip "
            "recomputation, fresh commits are published back "
            "(requires --fabric)",
        )
        g.add_argument(
            "--store-verify", type=float, default=0.05, metavar="FRACTION",
            help="seeded fraction of store hits re-executed and compared "
            "bit-exact against the cache (default 0.05; a mismatch "
            "aborts with a repro bundle)",
        )

    def add_budget(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "solve budget",
            "cooperative limits; when any is set the solver degrades "
            "dp → greedy → random instead of failing (exit 3 only when "
            "the whole cascade runs out)",
        )
        g.add_argument(
            "--budget-ms", type=float, metavar="MS",
            help="wall-clock budget per solve stage (milliseconds)",
        )
        g.add_argument(
            "--max-cells", type=int, metavar="N",
            help="max DP table cells per solve stage",
        )
        g.add_argument(
            "--max-backtracks", type=int, metavar="N",
            help="max cumulative PODEM backtracks",
        )
        g.add_argument(
            "--max-patterns", type=int, metavar="N",
            help="max simulated pattern-fault pairs",
        )

    p = sub.add_parser("stats", help="circuit statistics and baseline coverage")
    add_common(p)
    add_observability(p)
    add_profile(p)
    add_simflags(p)
    add_guard(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("insert", help="plan test points and print the placement")
    add_common(p)
    add_observability(p)
    add_profile(p)
    add_budget(p)
    add_guard(p)
    p.add_argument("--solver", choices=["dp", "greedy", "cascade"], default="dp")
    p.set_defaults(fn=_cmd_insert)

    p = sub.add_parser("coverage", help="plan, insert, fault simulate, report")
    add_common(p)
    add_observability(p)
    add_profile(p)
    add_budget(p)
    add_simflags(p)
    add_guard(p)
    p.add_argument("--solver", choices=["dp", "greedy", "cascade"], default="dp")
    p.set_defaults(fn=_cmd_coverage)

    p = sub.add_parser(
        "sweep",
        help="plan test points over many netlist files; crash-isolated, "
        "checkpointed to --results, resumable",
    )
    p.add_argument(
        "paths", nargs="+",
        help="netlist files and/or directories of .bench/.v/.sv files",
    )
    p.add_argument(
        "--results", required=True, metavar="FILE",
        help="JSONL results/checkpoint file (appended; enables resume)",
    )
    p.add_argument("--patterns", type=int, default=1024, help="pattern budget")
    p.add_argument("--escape", type=float, default=0.001, help="escape budget ε")
    p.add_argument(
        "--solvers", nargs="+", choices=list(SOLVER_CASCADE),
        default=list(DEFAULT_CASCADE), metavar="SOLVER",
        help=f"cascade stages, most precise first (default: {' '.join(DEFAULT_CASCADE)})",
    )
    p.add_argument(
        "--no-resume", action="store_true",
        help="re-run circuits already recorded in --results",
    )
    p.add_argument(
        "--max-circuits", type=int, metavar="N",
        help="stop after N new circuits (for staged / interrupted runs)",
    )
    p.add_argument(
        "--measure-coverage", action="store_true",
        help="insert each solution and record measured before/after "
        "coverage (fault-dropping simulation)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for coverage fault simulation",
    )
    g = p.add_argument_group(
        "fabric",
        "supervised campaign execution: leased worker processes, "
        "content-addressed dedup, exactly-once journal commits, "
        "poison-job quarantine; results are bit-identical to serial",
    )
    g.add_argument(
        "--fabric", action="store_true",
        help="run the sweep on the fabric (--results becomes the "
        "fabric journal)",
    )
    g.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="fabric pool width (default 2; 1 = in-process serial fabric)",
    )
    g.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="liveness window per leased job: a worker that stops "
        "heartbeating this long is declared dead and its job "
        "re-dispatched (default 30)",
    )
    add_store(g)
    add_observability(p)
    add_profile(p)
    add_budget(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "fabric-status",
        help="inspect a fabric journal: commits, quarantined jobs, "
        "crash evidence",
    )
    p.add_argument("journal", help="fabric journal file (sweep --fabric --results)")
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="also report this result store's statistics (entries, "
        "bytes, hits/misses/corrupt-quarantined)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the human summary",
    )
    p.set_defaults(fn=_cmd_fabric_status)

    p = sub.add_parser(
        "pack",
        help="export a campaign evidence pack under a SHA-256 manifest, "
        "or --verify an existing pack (exit 1 on any mismatch)",
    )
    p.add_argument(
        "target",
        help="fabric journal to pack, or (with --verify) a pack directory",
    )
    p.add_argument(
        "--out", metavar="DIR", default=None,
        help="target directory for the new pack (must be empty)",
    )
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="result store whose verified entries back the journal's "
        "commits (corrupt entries are skipped, never vouched for)",
    )
    p.add_argument(
        "--include", nargs="*", metavar="PATH", default=None,
        help="extra files/directories (traces, BENCH artifacts) copied "
        "under extra/",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="re-hash an existing pack against its manifest instead of "
        "building one (exit 0 clean, 1 on mismatch/missing/unlisted)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON (manifest or verification report)",
    )
    p.set_defaults(fn=_cmd_pack)

    p = sub.add_parser(
        "store-gc",
        help="prune least-recently-used result-store entries under "
        "--max-bytes/--max-age-days caps (leased entries survive)",
    )
    p.add_argument("store", help="result store directory (sweep --store)")
    p.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="prune oldest-recency entries until the store fits N bytes",
    )
    p.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="prune entries not read or written in DAYS days",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON report",
    )
    p.set_defaults(fn=_cmd_store_gc)

    p = sub.add_parser(
        "report",
        help="testability profile of a circuit, or summary/analytics of a "
        ".jsonl trace",
    )
    add_common(p)
    g = p.add_argument_group(
        "trace analytics", "only valid when the argument is a .jsonl trace"
    )
    g.add_argument(
        "--self-time", action="store_true",
        help="per-span-name table of cumulative vs self time",
    )
    g.add_argument(
        "--critical-path", action="store_true",
        help="longest root-to-leaf span chain with per-step self time",
    )
    g.add_argument(
        "--chrome-out", metavar="FILE",
        help="export the trace as Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "bench-compare",
        help="gate a BENCH_PERF.json against the benchmark history "
        "(exit 0: within tolerance, 1: regression, 2: unreadable)",
    )
    p.add_argument("current", help="BENCH_PERF.json produced by run_perf.py")
    p.add_argument(
        "--history", default="benchmarks/history/history.jsonl",
        metavar="FILE", help="JSONL benchmark history to compare against",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.15, metavar="FRACTION",
        help="minimum fractional regression gate (default 0.15; the "
        "gate widens automatically on noisy baselines)",
    )
    p.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trailing history records feeding the baseline median",
    )
    p.add_argument(
        "--record", action="store_true",
        help="append this run to the history after comparing",
    )
    p.add_argument(
        "--same-host-only", action="store_true",
        help="only compare against history from this host fingerprint",
    )
    p.add_argument(
        "--relative-only", action="store_true",
        help="gate only machine-relative metrics (speedup*/overhead*); "
        "use for cross-host CI",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="also print passing metrics and skip reasons",
    )
    p.set_defaults(fn=_cmd_bench_compare)

    p = sub.add_parser("experiments", help="run the evaluation suite")
    p.add_argument(
        "--only",
        nargs="*",
        help="subset of experiment ids (t1..t4, f1..f4, e1..e5)",
    )
    p.add_argument(
        "--results", metavar="FILE",
        help="JSONL checkpoint file: isolate experiment failures and "
        "resume completed experiments from it",
    )
    p.add_argument(
        "--no-resume", action="store_true",
        help="with --results: re-run experiments already recorded",
    )
    g = p.add_argument_group(
        "fabric", "supervised campaign over a worker pool (with --results)"
    )
    g.add_argument(
        "--fabric", action="store_true",
        help="run as a fabric campaign: leased workers, exactly-once "
        "journal at --results, poison-job quarantine",
    )
    g.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fabric pool width (default 1: serial in-process)",
    )
    add_store(g)
    add_observability(p)
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzer: cross-check interp/compiled/parallel/"
        "incremental kernels and DP vs exhaustive on random circuits",
    )
    p.add_argument(
        "--budget-ms", type=float, default=60_000.0, metavar="MS",
        help="wall-clock fuzz budget (default 60000)",
    )
    p.add_argument("--seed", type=int, default=0, help="fuzzer seed")
    p.add_argument(
        "--max-gates", type=int, default=40, metavar="N",
        help="largest random circuit to generate",
    )
    p.add_argument(
        "--patterns", type=int, default=64, metavar="N",
        help="patterns per simulation lane (default 64; >64 drives the "
        "numpy kernel's word-tiled batch seams)",
    )
    p.add_argument(
        "--bundle-dir", default="repro_bundles", metavar="DIR",
        help="where failure repro bundles are written",
    )
    p.add_argument(
        "--kernel",
        choices=[k for k in KERNEL_MODES if k != "interp"],
        default="compiled",
        help="fast backend under attack; every lane cross-checks it "
        "against the interpreted arbiter (default: compiled)",
    )
    p.add_argument(
        "--store", action="store_true",
        help="add the result-store lane: publish each circuit's sweep "
        "result to a throwaway store, read it back through the "
        "integrity envelope, and assert cached == recomputed",
    )
    add_observability(p)
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "replay",
        help="re-run a divergence repro bundle deterministically "
        "(exit 0: reproduced, 1: not reproduced, 2: unreadable)",
    )
    p.add_argument("bundle", help="bundle directory or its manifest.json")
    p.set_defaults(fn=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Every deliberate library error (:class:`~repro.errors.ReproError`) is
    caught here and rendered as one stderr line with a stable exit code:
    2 usage/parse, 3 budget exceeded, 5 signal-interrupted but
    resumable, 4 anything else.
    """
    args = build_parser().parse_args(argv)
    try:
        with _observability(args), _profiled(args), _guarded(args):
            return args.fn(args)
    except SweepInterrupted as exc:
        print(
            f"repro-tpi: {exc} — completed work is flushed; rerun the "
            f"same command to resume",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except BudgetExceededError as exc:
        print(f"repro-tpi: budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ParseError as exc:
        print(f"repro-tpi: parse error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        print(f"repro-tpi: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
